"""Setuptools entry point.

Carries the full package metadata (no ``pyproject.toml`` in this repo) so
``pip install -e .`` works and installs the ``repro-serve`` console script
for the service daemon.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro-streaminggs",
    version=_VERSION,
    description=(
        "Reproduction of STREAMINGGS: voxel-based streaming 3D Gaussian "
        "splatting, with a batched render engine, experiment harness and "
        "an always-on render service daemon"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve = repro.service.cli:main",
            "repro-run = repro.analysis.runner:main",
        ]
    },
)
