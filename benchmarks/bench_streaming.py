#!/usr/bin/env python
"""Streaming render-path micro-benchmark.

Times the memory-centric streaming render of a seeded synthetic scene under
the voxel-at-a-time reference loop and the batched/vectorized fast path
(``StreamingConfig.streaming_kernel``), verifies the images agree within
1e-9 and the workload statistics are exactly equal, and appends the result
to the ``BENCH_streaming.json`` trajectory next to this script::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --check   # assert >= 3x

``--check`` exits non-zero when the vectorized streaming path is less than
the required speedup over the reference loop, the images disagree, or any
statistic differs, which makes the script usable as a CI gate.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.api.store import append_trajectory
from repro.engine.bench import run_streaming_benchmark

#: Acceptance bar: vectorized streaming-path speedup over the reference loop.
REQUIRED_SPEEDUP = 3.0

#: Acceptance bar: maximum image deviation between the paths.
REQUIRED_ATOL = 1e-9

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--gaussians", type=int, default=6000)
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=120)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--voxel-size",
        type=float,
        default=0.5,
        help="streaming voxel size of the benchmark scene",
    )
    parser.add_argument(
        "--tile-workers",
        type=int,
        default=0,
        help="additionally time the vectorized path with this many parallel "
        "tile workers (reported in the trajectory, not gated)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless speedup >= --min-speedup, images agree and "
        "statistics are exactly equal",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=REQUIRED_SPEEDUP,
        help=f"speedup bar for --check (default {REQUIRED_SPEEDUP}x; use a "
        "looser bar on noisy shared runners)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=TRAJECTORY_PATH,
        help="trajectory file to append the result to",
    )
    args = parser.parse_args(argv)

    result = run_streaming_benchmark(
        num_gaussians=args.gaussians,
        width=args.width,
        height=args.height,
        repeats=args.repeats,
        seed=args.seed,
        voxel_size=args.voxel_size,
        tile_workers=args.tile_workers,
    )
    print(result.format())

    entry = result.as_dict()
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    # Atomic write-temp-then-rename append: concurrent or interrupted CI
    # jobs cannot truncate the trajectory.
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if args.check:
        if not result.stats_equal:
            print(
                f"FAIL: streaming statistics differ ({result.stats_detail})",
                file=sys.stderr,
            )
            return 1
        if result.max_image_delta > REQUIRED_ATOL:
            print(
                f"FAIL: render paths disagree (max delta {result.max_image_delta:.3g} "
                f"> {REQUIRED_ATOL})",
                file=sys.stderr,
            )
            return 1
        if result.speedup < args.min_speedup:
            print(
                f"FAIL: speedup {result.speedup:.2f}x < {args.min_speedup}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: speedup {result.speedup:.2f}x >= {args.min_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
