#!/usr/bin/env python
"""Streaming render-path micro-benchmark.

Times the memory-centric streaming render of a seeded synthetic scene under
the voxel-at-a-time reference loop and the batched/vectorized fast path
(``StreamingConfig.streaming_kernel``), verifies the images agree within
1e-9 and the workload statistics are exactly equal, and appends the result
to the ``BENCH_streaming.json`` trajectory next to this script::

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --check   # assert >= 3x

``--check`` exits non-zero when the vectorized streaming path is less than
the required speedup over the reference loop, the images disagree, or any
statistic differs, which makes the script usable as a CI gate.  With
``--tile-workers N`` (N > 1) the vectorized path is additionally timed
with process-parallel tile rendering over shared memory: parallel/serial
parity (images within 1e-9, statistics exactly equal) is always gated,
and the parallel speedup bar (``--min-parallel-speedup``) is enforced on
multi-core hosts and recorded-but-skipped on single-CPU ones.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.api.store import append_trajectory
from repro.engine.bench import run_streaming_benchmark

#: Acceptance bar: vectorized streaming-path speedup over the reference loop.
REQUIRED_SPEEDUP = 3.0

#: Acceptance bar: maximum image deviation between the paths.
REQUIRED_ATOL = 1e-9

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--gaussians", type=int, default=6000)
    parser.add_argument("--width", type=int, default=160)
    parser.add_argument("--height", type=int, default=120)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--voxel-size",
        type=float,
        default=0.5,
        help="streaming voxel size of the benchmark scene",
    )
    parser.add_argument(
        "--tile-workers",
        type=int,
        default=0,
        help="additionally time the vectorized path with this many parallel "
        "tile workers (parity always gated under --check; the parallel "
        "speedup is gated on multi-core hosts and recorded otherwise)",
    )
    parser.add_argument(
        "--tile-mode",
        choices=("auto", "process", "thread"),
        default="auto",
        help="parallel tile path: process-based over shared memory "
        "(default; degrades to threads when unavailable) or threads",
    )
    parser.add_argument(
        "--min-parallel-speedup",
        type=float,
        default=1.0,
        help="parallel-over-serial-tiles bar for --check with "
        "--tile-workers > 1 on multi-core hosts (default 1.0x)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless speedup >= --min-speedup, images agree and "
        "statistics are exactly equal",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=REQUIRED_SPEEDUP,
        help=f"speedup bar for --check (default {REQUIRED_SPEEDUP}x; use a "
        "looser bar on noisy shared runners)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=TRAJECTORY_PATH,
        help="trajectory file to append the result to",
    )
    args = parser.parse_args(argv)

    result = run_streaming_benchmark(
        num_gaussians=args.gaussians,
        width=args.width,
        height=args.height,
        repeats=args.repeats,
        seed=args.seed,
        voxel_size=args.voxel_size,
        tile_workers=args.tile_workers,
        tile_mode=args.tile_mode,
    )
    print(result.format())

    entry = result.as_dict()
    entry["cpu_count"] = os.cpu_count()
    if args.tile_workers > 1:
        entry["parallel_speedup_gate"] = (
            "enforced" if (os.cpu_count() or 1) >= 2 else "skipped"
        )
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    # Atomic write-temp-then-rename append: concurrent or interrupted CI
    # jobs cannot truncate the trajectory.
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if args.check:
        if not result.stats_equal:
            print(
                f"FAIL: streaming statistics differ ({result.stats_detail})",
                file=sys.stderr,
            )
            return 1
        if result.max_image_delta > REQUIRED_ATOL:
            print(
                f"FAIL: render paths disagree (max delta {result.max_image_delta:.3g} "
                f"> {REQUIRED_ATOL})",
                file=sys.stderr,
            )
            return 1
        if result.speedup < args.min_speedup:
            print(
                f"FAIL: speedup {result.speedup:.2f}x < {args.min_speedup}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: speedup {result.speedup:.2f}x >= {args.min_speedup}x")
        if args.tile_workers > 1:
            # Parity between the parallel and serial tile paths is
            # host-independent and always enforced; the parallel speedup
            # needs cores to overlap tiles, so it is gated only on
            # multi-core hosts and recorded (in the trajectory) otherwise.
            if not result.parallel_stats_equal:
                print(
                    "FAIL: parallel-tile statistics differ "
                    f"({result.parallel_stats_detail})",
                    file=sys.stderr,
                )
                return 1
            if result.parallel_image_delta > REQUIRED_ATOL:
                print(
                    "FAIL: parallel-tile image deviates (max delta "
                    f"{result.parallel_image_delta:.3g} > {REQUIRED_ATOL})",
                    file=sys.stderr,
                )
                return 1
            cpus = os.cpu_count() or 1
            if cpus < 2:
                print(
                    f"note: single-CPU host ({cpus} core) — parallel speedup "
                    f"gate skipped (measured {result.parallel_speedup:.2f}x, "
                    f"mode={result.tile_mode})"
                )
            elif result.parallel_speedup < args.min_parallel_speedup:
                print(
                    f"FAIL: parallel speedup {result.parallel_speedup:.2f}x < "
                    f"{args.min_parallel_speedup}x "
                    f"(mode={result.tile_mode})",
                    file=sys.stderr,
                )
                return 1
            else:
                print(
                    f"OK: parallel speedup {result.parallel_speedup:.2f}x >= "
                    f"{args.min_parallel_speedup}x (mode={result.tile_mode})"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
