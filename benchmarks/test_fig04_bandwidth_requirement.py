"""Fig. 4 — DRAM bandwidth required to reach 90 FPS with tile-centric 3DGS.

Paper claims: for real-world scenes the demand exceeds the Orin NX's
102.4 GB/s bandwidth limit, making real-time rendering impossible on the
memory system alone; synthetic scenes stay below the limit.
"""

from repro.analysis.characterization import run_fig4


def test_fig4_bandwidth_requirement(benchmark, report_result):
    result = benchmark(run_fig4)
    report_result("Fig. 4 — bandwidth needed for 90 FPS", result.format())

    for scene, category in zip(result.scenes, result.categories):
        if category == "real":
            assert result.exceeds_limit(scene), f"{scene} should exceed the limit"
        else:
            assert not result.exceeds_limit(scene), f"{scene} should stay below the limit"
