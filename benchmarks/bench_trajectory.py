#!/usr/bin/env python
"""Temporal-coherence trajectory benchmark.

Renders a registered camera trajectory twice — cold per-frame rendering
(``temporal_mode="off"``) and the carry fast path (``"carry"``) — checks
frame-by-frame parity (images within 1e-9, workload statistics exactly
equal), and appends the result to the ``BENCH_trajectory.json`` trajectory
next to this script::

    PYTHONPATH=src python benchmarks/bench_trajectory.py
    PYTHONPATH=src python benchmarks/bench_trajectory.py --check

``--check`` exits non-zero when the amortized warm (carry) trajectory is
slower than ``--max-ratio`` times the cold one, the images disagree, or
any statistic differs, which makes the script usable as a CI gate.  The
default workload is a dense full-orbit of the ``train`` scene where the
carry path's frame-restructured execution and content-keyed carries pay
off; CI runs a reduced orbit with an explicit ``--max-ratio`` sized for
shared runners.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.api.store import append_trajectory
from repro.engine.bench import run_trajectory_benchmark

#: Acceptance bar: amortized carry-trajectory time over the cold one.
REQUIRED_MAX_RATIO = 0.6

#: Acceptance bar: maximum image deviation between the temporal modes.
REQUIRED_ATOL = 1e-9

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scene", default="train")
    parser.add_argument("--path", default="orbit", help="registered trajectory name")
    parser.add_argument("--frames", type=int, default=24)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.5,
        help="resolution scale of the trajectory's cameras",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=REQUIRED_MAX_RATIO,
        help=f"warm/cold ratio bar for --check (default {REQUIRED_MAX_RATIO}; "
        "use a looser bar on noisy shared runners)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless warm ratio <= --max-ratio, images agree and "
        "statistics are exactly equal",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=TRAJECTORY_PATH,
        help="trajectory file to append the result to",
    )
    args = parser.parse_args(argv)

    result = run_trajectory_benchmark(
        scene=args.scene,
        path=args.path,
        frames=args.frames,
        resolution_scale=args.scale,
        repeats=args.repeats,
    )
    print(result.format())

    entry = result.as_dict()
    entry["cpu_count"] = os.cpu_count()
    entry["max_ratio_gate"] = args.max_ratio
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if args.check:
        if not result.stats_equal:
            print(
                f"FAIL: streaming statistics differ ({result.stats_detail})",
                file=sys.stderr,
            )
            return 1
        if result.max_image_delta > REQUIRED_ATOL:
            print(
                f"FAIL: temporal modes disagree (max delta "
                f"{result.max_image_delta:.3g} > {REQUIRED_ATOL})",
                file=sys.stderr,
            )
            return 1
        if result.warm_ratio > args.max_ratio:
            print(
                f"FAIL: warm ratio {result.warm_ratio:.3f} > {args.max_ratio}",
                file=sys.stderr,
            )
            return 1
        print(f"OK: warm ratio {result.warm_ratio:.3f} <= {args.max_ratio}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
