"""Fig. 7 — error-Gaussian ratio and PSNR during boundary-aware fine-tuning.

Paper claims (train scene): over 3 000 fine-tuning iterations the fraction
of Gaussians rendered with incorrect depth order drops from 2.3 % to 0.4 %
while the streaming render's PSNR recovers from 21.37 dB to 22.61 dB.

Our simulated scenes use thousands (not millions) of Gaussians, so the
absolute error ratio is higher; the benchmark asserts the *direction* of
both curves (error ratio falls, quality does not degrade).
"""

from repro.analysis.quality import run_fig7


def test_fig7_boundary_finetune(benchmark, report_result):
    result = benchmark.pedantic(
        run_fig7, kwargs=dict(iterations=2000, probe_every=500), rounds=1, iterations=1
    )
    report_result("Fig. 7 — boundary-aware fine-tuning", result.format())

    assert result.error_ratio[-1] <= result.error_ratio[0]
    # Quality must not collapse; it should end within 1 dB of where it
    # started (the paper shows it improving).
    assert result.quality_psnr[-1] > result.quality_psnr[0] - 1.0
