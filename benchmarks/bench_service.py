#!/usr/bin/env python
"""Service-daemon benchmark: closed-loop multi-client load.

Starts an embedded :class:`~repro.service.daemon.ServiceDaemon`, then
drives it with ``--clients`` concurrent closed-loop clients (each sends
its next request as soon as the previous response lands) for
``--requests`` requests per client.  The mix alternates renders across
``--scenes`` and resolution scales with a small sweep every
``--sweep-every`` requests, so the run exercises the shared renderer
cache, the fair queue and the actor fleet together.

Reports per-request latency (p50/p95), aggregate throughput and the
daemon's own metrics (rejects, degradations, retries), asserts the run
was clean — zero rejects with the default sizing, graceful drain, no
leaked shared-memory segments, no orphaned store temp files — and
appends the measurement to the ``BENCH_service.json`` trajectory::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --check --clients 4

``--check`` exits non-zero when any cleanliness gate fails.  Latency
bars are deliberately absent: CI hosts are too noisy for wall-clock
gates; the trajectory records the curve instead.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import append_trajectory
from repro.api.shm import leaked_segments
from repro.service import ServiceClient, ServiceConfig, ServiceDaemon

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_client(address, name, scenes, scales, requests, sweep_every, latencies, errors):
    """One closed-loop client: request, wait, record, repeat."""
    with ServiceClient.connect(address, client=name, timeout=600.0) as client:
        for i in range(requests):
            scene = scenes[i % len(scenes)]
            scale = scales[i % len(scales)]
            started = time.perf_counter()
            if sweep_every and (i + 1) % sweep_every == 0:
                response = client.sweep(
                    base={"scene": scene, "resolution_scale": scale},
                    num_hfu=[2, 4],
                    retries=5,
                )
            else:
                response = client.render(scene, resolution_scale=scale, retries=5)
            elapsed = time.perf_counter() - started
            if response.ok:
                latencies.append(elapsed)
            else:
                errors.append(f"{name}#{i}: [{response.code}] {response.error}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument(
        "--requests", type=int, default=6, help="requests per client"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument(
        "--scenes", default="lego,train", help="comma-separated scene mix"
    )
    parser.add_argument(
        "--scales", default="0.25,0.5", help="comma-separated resolution scales"
    )
    parser.add_argument(
        "--sweep-every",
        type=int,
        default=3,
        help="every Nth request per client is a small sweep (0 = renders only)",
    )
    parser.add_argument("--check", action="store_true", help="fail on any gate")
    parser.add_argument("--output", default=str(TRAJECTORY_PATH))
    args = parser.parse_args(argv)

    scenes = [s for s in args.scenes.split(",") if s]
    scales = [float(s) for s in args.scales.split(",") if s]
    shm_before = set(leaked_segments())

    with tempfile.TemporaryDirectory(prefix="bench-service-store-") as cache_dir:
        daemon = ServiceDaemon(
            ServiceConfig(
                port=0,
                workers=args.workers,
                queue_limit=args.queue_limit,
                cache_dir=cache_dir,
            )
        )
        handle = daemon.start_in_thread()
        latencies: list = []
        errors: list = []
        threads = [
            threading.Thread(
                target=run_client,
                args=(
                    handle.address,
                    f"client-{i}",
                    scenes,
                    scales,
                    args.requests,
                    args.sweep_every,
                    latencies,
                    errors,
                ),
            )
            for i in range(args.clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - started

        metrics = daemon.metrics_snapshot()
        handle.stop(drain=True)
        handle.join()

        # Orphaned store temp files would mean a non-atomic write leaked.
        orphaned_tmp = [
            str(p) for p in Path(cache_dir).rglob("*") if p.name.endswith(".tmp")
        ]

    leaked = sorted(set(leaked_segments()) - shm_before)
    total = args.clients * args.requests
    requests_meta = metrics["requests"]
    p50 = percentile(latencies, 0.50)
    p95 = percentile(latencies, 0.95)
    throughput = len(latencies) / wall_s if wall_s > 0 else 0.0

    print(
        f"clients={args.clients} requests/client={args.requests} "
        f"workers={args.workers} total={total}"
    )
    print(
        f"latency: p50={p50 * 1000:.1f} ms p95={p95 * 1000:.1f} ms "
        f"throughput={throughput:.2f} req/s wall={wall_s:.2f}s"
    )
    print(
        "daemon: accepted={accepted} completed={completed} rejected={rejected} "
        "degraded={degraded} timeouts={timeouts}".format(**requests_meta)
    )
    print(
        f"supervision: {metrics['supervision']}  "
        f"store: {metrics['store']}  leaked_shm={leaked} "
        f"orphaned_tmp={orphaned_tmp}"
    )

    ok_all_completed = len(latencies) == total and not errors
    ok_zero_rejects = requests_meta["rejected"] == 0
    ok_no_leaks = not leaked
    ok_no_orphans = not orphaned_tmp

    entry = {
        "clients": args.clients,
        "requests_per_client": args.requests,
        "workers": args.workers,
        "queue_limit": args.queue_limit,
        "scenes": scenes,
        "scales": scales,
        "sweep_every": args.sweep_every,
        "cpu_count": os.cpu_count(),
        "total_requests": total,
        "completed": len(latencies),
        "errors": len(errors),
        "wall_s": round(wall_s, 6),
        "p50_s": round(p50, 6),
        "p95_s": round(p95, 6),
        "mean_s": round(statistics.fmean(latencies), 6) if latencies else 0.0,
        "throughput_rps": round(throughput, 3),
        "rejected": requests_meta["rejected"],
        "degraded": requests_meta["degraded"],
        "timeouts": requests_meta["timeouts"],
        "supervision": metrics["supervision"],
        "store_hits": (metrics["store"] or {}).get("hits", 0),
        "engine_renderer_hits": metrics["engine"]["renderer_hits"],
        "leaked_shm": len(leaked),
        "orphaned_store_tmp": len(orphaned_tmp),
        "clean": ok_all_completed and ok_zero_rejects and ok_no_leaks and ok_no_orphans,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if args.check:
        failed = False
        if not ok_all_completed:
            print(
                f"FAIL: {total - len(latencies)} request(s) did not complete; "
                f"first errors: {errors[:3]}",
                file=sys.stderr,
            )
            failed = True
        if not ok_zero_rejects:
            print(
                f"FAIL: daemon rejected {requests_meta['rejected']} request(s) "
                "despite retry backoff headroom",
                file=sys.stderr,
            )
            failed = True
        if not ok_no_leaks:
            print(f"FAIL: leaked shared-memory segments: {leaked}", file=sys.stderr)
            failed = True
        if not ok_no_orphans:
            print(f"FAIL: orphaned store temp files: {orphaned_tmp}", file=sys.stderr)
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
