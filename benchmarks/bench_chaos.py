#!/usr/bin/env python
"""Chaos benchmark: trace replay under seeded fault injection.

Generates a reduced mixed-kind fleet trace, boots an embedded
:class:`~repro.service.daemon.ServiceDaemon` with a seeded
:class:`~repro.chaos.plan.FaultPlan` covering every layer — actor
crashes/hangs/slowdowns, dropped and torn transport responses, torn
journal writes, corrupted store entries — and replays the trace over
the real NDJSON wire protocol with reconnecting clients.

The point is not latency (faults make wall clock meaningless) but
*accounting*: under seeded chaos every request must still reach exactly
one terminal outcome.  ``--check`` gates on:

* zero lost requests — every trace event gets a terminal outcome and no
  client loses its connection past the reconnect budget;
* the journal drains empty after graceful shutdown;
* the daemon's ``healthz`` returns to ``healthy`` within a bounded
  recovery window (quarantined actors retired, breakers closed);
* no leaked shared-memory segments, no orphaned store temp files;
* at least four distinct fault points actually fired (the run really
  was chaotic, not a vacuous pass);
* the disabled injector's fast path stays under a microsecond-scale
  per-call budget (chaos off must cost nothing).

Appends one entry to the ``BENCH_chaos.json`` trajectory::

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python benchmarks/bench_chaos.py --check --speed 5
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro import chaos
from repro.api import append_trajectory
from repro.api.shm import leaked_segments
from repro.chaos import FaultPlan, FaultRule
from repro.fleet import RequestClass, generate_trace, replay_trace, summarize_replay
from repro.service import ServiceClient, ServiceConfig, ServiceDaemon
from repro.service.supervisor import Journal

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: Per-call budget for the *disabled* injector fast path.  The real cost
#: is one global read (~100 ns with call overhead); the gate is loose
#: enough for noisy CI hosts while still catching an accidental lock or
#: dict lookup on the hot path.
DISABLED_OVERHEAD_BUDGET_S = 2e-6

#: How long the daemon may take to report ``healthy`` again after the
#: replay (hung actors retired, breakers closed via probe traffic).
RECOVERY_BOUND_S = 20.0


def chaos_classes(clients_per_class: int) -> list:
    """A deliberately *light* request mix: low-resolution renders only.

    Actors heartbeat between requests, not during one, so the quarantine
    threshold must sit above the slowest legitimate execution.  Keeping
    every request under the (~3 s) cold renderer build bound lets the
    benchmark use an aggressive quarantine window and still tell a real
    hang from honest work.
    """
    return [
        RequestClass(
            name="preview",
            kind="render",
            weight=4.0,
            scene="lego",
            resolution_scale=0.25,
            clients=clients_per_class,
        ),
        RequestClass(
            name="thumb",
            kind="render",
            weight=2.0,
            scene="train",
            resolution_scale=0.25,
            clients=clients_per_class,
        ),
    ]


def build_plan(seed: int) -> FaultPlan:
    """A seeded plan touching every layer of the service stack.

    The hang delay must exceed the daemon's quarantine window (so the
    wedged actor really is quarantined) and the stall/breaker windows.
    """
    return FaultPlan(
        seed=seed,
        rules=[
            FaultRule(point="actor.crash", every_nth=5, max_fires=2),
            FaultRule(point="actor.hang", every_nth=6, max_fires=1, delay_s=7.0),
            FaultRule(
                point="actor.slow_render",
                probability=0.25,
                max_fires=4,
                delay_s=0.05,
            ),
            FaultRule(point="transport.drop_response", every_nth=4, max_fires=3),
            FaultRule(point="transport.partial_write", every_nth=9, max_fires=2),
            FaultRule(point="journal.torn_write", every_nth=3, max_fires=4),
            FaultRule(point="store.corrupt_entry", every_nth=4, max_fires=2),
        ],
    )


def measure_disabled_overhead(calls: int = 200_000) -> float:
    """Mean seconds per ``chaos.fault`` call with no injector installed."""
    assert chaos.installed() is None, "chaos must be uninstalled for the baseline"
    fault = chaos.fault
    started = time.perf_counter()
    for _ in range(calls):
        fault("actor.crash")
    return (time.perf_counter() - started) / calls


def await_recovery(address, bound_s: float) -> float:
    """Poll (and probe) until the daemon reports healthy; return seconds.

    An open circuit breaker only closes through traffic — its half-open
    probe needs a request to succeed — so each poll also submits a tiny
    no-op, mirroring what live clients would do after an outage.

    Returns ``-1.0`` when the daemon never recovered within ``bound_s``.
    """
    started = time.perf_counter()
    deadline = started + bound_s
    with ServiceClient.connect(
        address, client="chaos-recovery", timeout=30.0, reconnect=3
    ) as probe:
        while time.perf_counter() < deadline:
            health = probe.health()
            if health.get("status") == "healthy":
                return time.perf_counter() - started
            probe.submit("sleep", {"seconds": 0.001}, retries=2, max_backoff_s=0.5)
            time.sleep(0.2)
    return -1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=4.0, help="trace seconds")
    parser.add_argument("--rate", type=float, default=6.0, help="mean arrivals/s")
    parser.add_argument("--seed", type=int, default=1337, help="trace + fault seed")
    parser.add_argument("--clients-per-class", type=int, default=2)
    parser.add_argument("--speed", type=float, default=4.0, help="schedule compression")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--retries", type=int, default=6, help="admission retries")
    parser.add_argument("--reconnect", type=int, default=3, help="resend budget")
    parser.add_argument("--check", action="store_true", help="fail on any gate")
    parser.add_argument("--output", default=str(TRAJECTORY_PATH))
    args = parser.parse_args(argv)

    plan = build_plan(args.seed)
    trace = generate_trace(
        classes=chaos_classes(args.clients_per_class),
        duration_s=args.duration,
        rate_hz=args.rate,
        arrival="poisson",
        seed=args.seed,
    )
    print(
        f"trace: {len(trace)} events, {len(trace.clients)} clients, "
        f"replayed at {args.speed}x under {len(plan)} fault rules "
        f"(seed={args.seed})"
    )

    overhead_s = measure_disabled_overhead()
    shm_before = set(leaked_segments())

    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as workdir:
        cache_dir = str(Path(workdir) / "store")
        journal_dir = str(Path(workdir) / "journal")
        daemon = ServiceDaemon(
            ServiceConfig(
                port=0,
                workers=args.workers,
                queue_limit=args.queue_limit,
                cache_dir=cache_dir,
                journal_dir=journal_dir,
                heartbeat_timeout_s=0.5,
                quarantine_after_s=4.5,
                breaker_threshold=3,
                breaker_cooldown_s=1.0,
                chaos=plan,
            )
        )
        handle = daemon.start_in_thread()
        try:
            report = replay_trace(
                trace,
                handle.address,
                speed=args.speed,
                retries=args.retries,
                reconnect=args.reconnect,
                timeout=120.0,
                scrape_metrics=False,
            )
            recovery_s = await_recovery(handle.address, RECOVERY_BOUND_S)
            metrics = daemon.metrics_snapshot()
        finally:
            handle.stop(drain=True)
            handle.join()

        journal_left = len(Journal(Path(journal_dir)))
        orphaned_tmp = [
            str(p) for p in Path(workdir).rglob("*") if p.name.endswith(".tmp")
        ]
        healed_entries = len(list(Path(workdir).rglob("*.corrupt")))

    leaked = sorted(set(leaked_segments()) - shm_before)
    summary = summarize_replay(report, window_s=trace.duration_s / args.speed)
    overall = summary["overall"]
    chaos_stats = metrics.get("chaos") or {}
    fired = sorted(p for p, s in chaos_stats.items() if s.get("fires", 0) > 0)
    lost = [
        o
        for o in report.outcomes
        if o.code
        and (
            o.code == "connection_lost"
            or o.code.startswith("transport_error:")
            or o.code.startswith("connect_error:")
        )
    ]

    print(
        "replay: submitted={submitted} completed={completed} failed={failed} "
        "retried={retried} backoffs={backoffs} resends={resends}".format(**overall)
    )
    print(
        f"chaos fired: {fired}  "
        f"stats={ {p: s['fires'] for p, s in sorted(chaos_stats.items())} }"
    )
    print(
        f"supervision: {metrics['supervision']}  "
        f"deadline_exceeded={metrics['requests'].get('deadline_exceeded', 0)} "
        f"breaker_rejected={metrics['requests'].get('breaker_rejected', 0)} "
        f"resends_served={metrics['requests'].get('resends_served', 0)}"
    )
    print(
        f"recovery={recovery_s:.2f}s journal_left={journal_left} "
        f"healed_store_entries={healed_entries} leaked_shm={leaked} "
        f"orphaned_tmp={orphaned_tmp} "
        f"disabled_overhead={overhead_s * 1e9:.0f} ns/call"
    )

    ok_accounted = len(report.outcomes) == len(trace)
    ok_none_lost = not lost
    ok_journal_drained = journal_left == 0
    ok_recovered = 0.0 <= recovery_s <= RECOVERY_BOUND_S
    ok_no_leaks = not leaked
    ok_no_orphans = not orphaned_tmp
    ok_chaotic = len(fired) >= 4
    ok_overhead = overhead_s < DISABLED_OVERHEAD_BUDGET_S
    clean = all(
        (
            ok_accounted,
            ok_none_lost,
            ok_journal_drained,
            ok_recovered,
            ok_no_leaks,
            ok_no_orphans,
            ok_chaotic,
            ok_overhead,
        )
    )

    entry = {
        "duration_s": args.duration,
        "rate_hz": args.rate,
        "seed": args.seed,
        "speed": args.speed,
        "workers": args.workers,
        "queue_limit": args.queue_limit,
        "reconnect": args.reconnect,
        "fault_rules": len(plan),
        "cpu_count": os.cpu_count(),
        "events": len(trace),
        "outcomes": len(report.outcomes),
        "completed": overall["completed"],
        "failed": overall["failed"],
        "retried": overall["retried"],
        "backoffs": overall["backoffs"],
        "resends": overall["resends"],
        "lost": len(lost),
        "wall_s": round(report.wall_s, 6),
        "recovery_s": round(recovery_s, 6),
        "fired_points": fired,
        "chaos_fires": {p: s["fires"] for p, s in sorted(chaos_stats.items())},
        "deadline_exceeded": metrics["requests"].get("deadline_exceeded", 0),
        "breaker_rejected": metrics["requests"].get("breaker_rejected", 0),
        "resends_served": metrics["requests"].get("resends_served", 0),
        "supervision": metrics["supervision"],
        "journal_left": journal_left,
        "healed_store_entries": healed_entries,
        "leaked_shm": len(leaked),
        "orphaned_store_tmp": len(orphaned_tmp),
        "disabled_overhead_ns": round(overhead_s * 1e9, 1),
        "clean": clean,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if args.check:
        failed = False
        if not ok_accounted:
            print(
                f"FAIL: {len(trace) - len(report.outcomes)} event(s) never "
                "reached a terminal outcome",
                file=sys.stderr,
            )
            failed = True
        if not ok_none_lost:
            print(
                f"FAIL: {len(lost)} request(s) lost to transport errors: "
                f"{[o.code for o in lost[:5]]}",
                file=sys.stderr,
            )
            failed = True
        if not ok_journal_drained:
            print(
                f"FAIL: journal still holds {journal_left} entrie(s) after drain",
                file=sys.stderr,
            )
            failed = True
        if not ok_recovered:
            print(
                f"FAIL: daemon did not return to healthy within "
                f"{RECOVERY_BOUND_S}s (recovery_s={recovery_s})",
                file=sys.stderr,
            )
            failed = True
        if not ok_no_leaks:
            print(f"FAIL: leaked shared-memory segments: {leaked}", file=sys.stderr)
            failed = True
        if not ok_no_orphans:
            print(f"FAIL: orphaned store temp files: {orphaned_tmp}", file=sys.stderr)
            failed = True
        if not ok_chaotic:
            print(
                f"FAIL: only {len(fired)} fault point(s) fired ({fired}); "
                "need >= 4 for a meaningful chaos run",
                file=sys.stderr,
            )
            failed = True
        if not ok_overhead:
            print(
                f"FAIL: disabled chaos.fault costs {overhead_s * 1e9:.0f} ns/call "
                f"(budget {DISABLED_OVERHEAD_BUDGET_S * 1e9:.0f} ns)",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
