"""Fig. 13 — sensitivity of the speedup to the CFU / FFU counts per HFU.

Paper claims (train scene): increasing the number of coarse-grained filter
units consistently boosts the speedup (20.6x at 1 CFU to 46.8x at 4 CFUs),
while adding fine-grained filter units beyond the CFU count yields no
speedup; 4 CFUs + 1 FFU is the chosen design point.
"""

from repro.analysis.sensitivity import run_fig13


def test_fig13_cfu_ffu_sensitivity(benchmark, report_result):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    report_result("Fig. 13 — CFU/FFU sensitivity (train)", result.format())

    # More CFUs never hurt and help substantially from 1 to 4.
    assert result.value(4, 1) > result.value(1, 1) * 1.3
    for num_ffu in result.ffus:
        assert result.value(4, num_ffu) >= result.value(1, num_ffu)
    # Adding FFUs beyond the CFU count yields (almost) no speedup.
    assert result.value(4, 4) <= result.value(4, 1) * 1.15
    assert result.value(1, 4) <= result.value(1, 1) * 1.15
    # Larger configurations cost area.
    assert result.area_mm2[4][4] > result.area_mm2[1][1]
