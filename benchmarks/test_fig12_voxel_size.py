"""Fig. 12 — sensitivity of energy efficiency and quality to the voxel size.

Paper claims (train scene): shrinking the voxel from 2.0 to 0.5 costs about
0.8 dB of quality (more cross-boundary Gaussians), while growing it beyond
2.0 yields little additional quality but hurts energy efficiency (more
irrelevant Gaussians are streamed per voxel); 2.0 is the sweet spot.
"""

import numpy as np

from repro.analysis.sensitivity import run_fig12


def test_fig12_voxel_size_sensitivity(benchmark, report_result):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    report_result("Fig. 12 — voxel-size sensitivity (train)", result.format())

    sizes = np.array(result.voxel_sizes)
    psnr = np.array(result.psnr)
    energy = np.array(result.energy_savings)

    # Quality trends upward with voxel size (fewer cross-boundary Gaussians).
    small = psnr[sizes <= 1.0].mean()
    large = psnr[sizes >= 2.0].mean()
    assert large >= small - 0.3
    # Energy savings do not improve for the largest voxels (more irrelevant
    # Gaussians streamed per voxel).
    assert energy[sizes >= 2.5].mean() <= energy[sizes <= 2.0].max() * 1.05
    # All configurations remain far more efficient than the GPU.
    assert energy.min() > 5.0
