"""Table II — rendering quality (PSNR) of the streaming vs. original pipeline.

Paper claims: across six scenes and three base algorithms (3DGS,
Mini-Splatting, LightGaussian) the fully streaming pipeline loses only
0.04 dB on average, and sometimes scores higher than the original.
"""

import numpy as np

from repro.analysis.quality import run_table2


def test_tab2_rendering_quality(benchmark, report_result):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    report_result("Table II — rendering quality (PSNR)", result.format())

    drops = [row.measured_drop for row in result.rows]
    baselines = [row.measured_baseline for row in result.rows]
    paper_baselines = [row.paper_baseline for row in result.rows]

    # The calibrated baselines track the paper's per-cell PSNR closely.
    assert np.max(np.abs(np.array(baselines) - np.array(paper_baselines))) < 2.5
    # The streaming pipeline stays close to the original pipeline.  The gap
    # is larger than the paper's 0.04 dB because the simulated scenes use
    # thousands (not millions) of Gaussians, so each Gaussian spans far more
    # voxels relative to the paper's regime, and the per-scene fine-tuning
    # stages are not re-run per Table II cell (see EXPERIMENTS.md).
    assert np.mean(drops) < 3.0
    # As in the paper, some cells come out (nearly) ahead of the original
    # pipeline.
    assert any(drop < 0.5 for drop in drops)
