"""Fig. 11 — end-to-end speedup and energy savings over the mobile GPU.

Paper claims (averaged over its four datasets, original 3DGS): the full
STREAMINGGS design achieves 45.7x speedup and 62.9x energy savings over the
Orin NX, versus 21.6x / ~27x for GSCore — i.e. 2.1x faster and 2.3x more
energy-efficient than the state-of-the-art accelerator.  Removing the
coarse-grained filter costs about half the speedup, while removing VQ has
little effect on speed (it is an energy optimisation).
"""

from repro.analysis.performance import run_fig11


def test_fig11_speedup_and_energy(benchmark, report_result):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    report_result("Fig. 11 — speedup and energy savings", result.format())

    full_speedup = result.mean_speedup("streaminggs")
    gscore_speedup = result.mean_speedup("gscore")
    wo_cgf_speedup = result.mean_speedup("wo_cgf")
    wo_vq_cgf_speedup = result.mean_speedup("wo_vq_cgf")

    # Headline orderings of the paper.
    assert full_speedup > gscore_speedup > 1.0
    assert full_speedup > wo_cgf_speedup
    # VQ has minimal impact on performance (Sec. V-C).
    assert abs(wo_cgf_speedup - wo_vq_cgf_speedup) / wo_cgf_speedup < 0.25
    # An order of magnitude over the GPU, roughly 2x over GSCore.
    assert full_speedup > 10.0
    assert 1.5 < result.streaming_vs_gscore_speedup() < 4.0

    full_energy = result.mean_energy_savings("streaminggs")
    gscore_energy = result.mean_energy_savings("gscore")
    assert full_energy > gscore_energy > 1.0
    assert full_energy > 10.0
    assert result.streaming_vs_gscore_energy() > 1.5
    # Removing VQ costs energy.
    assert result.mean_energy_savings("wo_cgf") > result.mean_energy_savings("wo_vq_cgf")
