"""Supporting quantitative claims of the algorithm sections.

Paper claims: hierarchical filtering removes 76.3 % of the Gaussians
processed per voxel (Sec. III-B); vector quantization removes 92.3 % of the
second-half DRAM traffic during voxel streaming (Sec. III-C); the coarse
filter reduces per-Gaussian work from 427 MACs to 55 MACs (Sec. IV-C).
"""

from repro.analysis.claims import run_supporting_claims


def test_supporting_claims(benchmark, report_result):
    result = benchmark.pedantic(run_supporting_claims, rounds=1, iterations=1)
    report_result("Supporting claims (Sec. III-B / III-C / IV-C)", result.format())

    # Hierarchical filtering removes the majority of streamed Gaussians.
    assert result.filtering_reduction > 0.5
    # VQ removes ~90 % of the second-half traffic.
    assert result.vq_traffic_reduction > 0.85
    # The MAC counts are the paper's numbers by construction.
    assert result.coarse_macs == 55
    assert result.fine_macs == 427
