"""Fig. 3 — FPS of tile-centric 3DGS on the Nvidia Orin NX.

Paper claims: 2-9 FPS across the six scenes, with real-world scenes slower
than synthetic ones — far below the 90 FPS real-time requirement.
"""

import numpy as np

from repro.analysis.characterization import run_fig3


def test_fig3_gpu_fps(benchmark, report_result):
    result = benchmark(run_fig3)
    report_result("Fig. 3 — 3DGS FPS on Orin NX", result.format())

    measured = dict(zip(result.scenes, result.measured_fps))
    categories = dict(zip(result.scenes, result.categories))
    # Every scene is far below the 90 FPS real-time requirement.
    assert max(result.measured_fps) < 45.0
    # Real-world scenes are slower than synthetic ones on average.
    real = [fps for scene, fps in measured.items() if categories[scene] == "real"]
    synthetic = [fps for scene, fps in measured.items() if categories[scene] == "synthetic"]
    assert np.mean(real) < np.mean(synthetic)
