"""Benchmark-harness configuration.

Each benchmark file regenerates one table or figure of the paper's
evaluation.  ``pytest-benchmark`` measures the wall-clock cost of the
experiment; the experiment's formatted result (paper vs. measured) is
printed so a ``pytest benchmarks/ --benchmark-only`` run doubles as the
reproduction report that EXPERIMENTS.md is built from.

Scene evaluation contexts are cached per process (see
``repro.analysis.context``), so the first benchmark that touches a scene
pays its construction cost and later benchmarks reuse it.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # A single measured round per benchmark: each experiment is deterministic
    # and expensive, so statistical repetition adds nothing.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False


@pytest.fixture
def report_result():
    """Print an experiment's formatted result after the benchmark."""

    def _print(title: str, text: str) -> None:
        banner = "=" * max(len(title), 20)
        print(f"\n{banner}\n{title}\n{banner}\n{text}\n")

    return _print
