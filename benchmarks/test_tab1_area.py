"""Table I — accelerator configuration and area breakdown at 32 nm.

Paper claims: 5.37 mm^2 total (0.06 VSU, 0.79 HFUs, 0.04 sorting units,
2.53 rendering units, 1.95 SRAM), comparable to GSCore's 5.53 mm^2.
"""

import pytest

from repro.analysis.report import format_table
from repro.arch.area import GSCORE_AREA_MM2, AreaModel


def test_tab1_area_breakdown(benchmark, report_result):
    breakdown = benchmark(lambda: AreaModel().table1())
    rows = [[name, f"{area:.3f}"] for name, area in breakdown.as_rows()]
    report_result(
        "Table I — configuration and area",
        format_table(["component", "area (mm^2)"], rows),
    )

    assert breakdown.total_mm2 == pytest.approx(5.37, abs=0.05)
    assert breakdown.components["sram"] == pytest.approx(1.95, abs=0.01)
    assert abs(breakdown.total_mm2 - GSCORE_AREA_MM2) / GSCORE_AREA_MM2 < 0.1
