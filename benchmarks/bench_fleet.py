#!/usr/bin/env python
"""Fleet benchmark: trace-driven wire-protocol load + Pareto search.

Phase 1 — replay: generates a deterministic mixed-kind trace (renders,
trajectories, sweeps across request classes with Poisson/bursty/diurnal
arrivals), boots an embedded :class:`~repro.service.daemon.ServiceDaemon`
and replays the trace over the real NDJSON wire protocol with one
connection per synthetic client.  Reports per-class p50/p95/p99 latency
and throughput plus reject/degrade/retry counts, and rolls the served
frames up to fleet-scale traffic / bandwidth / energy figures through
the architecture model (:mod:`repro.arch.rollup` — Fig. 2 / Fig. 4 at
datacenter scale).

Phase 2 — search: runs the Pareto frontier refinement of
:mod:`repro.fleet.search` on a reduced accelerator design space, checks
it reproduces the exhaustive grid's frontier with strictly fewer
evaluations, and re-runs it warm to verify the ``ResultStore`` resume
path renders nothing.

Appends one entry to the ``BENCH_fleet.json`` trajectory::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --check --speed 5

``--check`` exits non-zero when any gate fails: full replay completion,
no leaked shared-memory segments, no orphaned store temp files, frontier
parity, evaluation savings, warm-resume zero renders.  Latency bars are
deliberately absent: CI hosts are too noisy for wall-clock gates; the
trajectory records the curve instead.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.api import append_trajectory
from repro.api.session import Session
from repro.api.shm import leaked_segments
from repro.api.spec import ExperimentSpec
from repro.fleet import (
    default_classes,
    exhaustive_frontier,
    fleet_costs,
    generate_trace,
    pareto_search,
    replay_trace,
    summarize_replay,
)
from repro.service import ServiceConfig, ServiceDaemon

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Reduced design space of the search phase: small enough for CI, rich
#: enough that the frontier is a strict subset of the grid.
SEARCH_AXES = {
    "num_hfu": [1, 2, 4],
    "num_render_units": [32, 64, 128],
    "sram_scale": [0.5, 1.0],
}


def frontier_labels(result):
    return sorted(
        tuple(sorted(point.values.items())) for point in result.frontier
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=4.0, help="trace seconds")
    parser.add_argument("--rate", type=float, default=5.0, help="mean arrivals/s")
    parser.add_argument(
        "--arrival", choices=("poisson", "bursty", "diurnal"), default="poisson"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients-per-class", type=int, default=3)
    parser.add_argument("--speed", type=float, default=4.0, help="schedule compression")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--retries", type=int, default=5)
    parser.add_argument("--skip-search", action="store_true")
    parser.add_argument("--check", action="store_true", help="fail on any gate")
    parser.add_argument("--output", default=str(TRAJECTORY_PATH))
    args = parser.parse_args(argv)

    shm_before = set(leaked_segments())

    # ------------------------------------------------------------------
    # Phase 1: trace replay over the wire.
    # ------------------------------------------------------------------
    trace = generate_trace(
        classes=default_classes(args.clients_per_class),
        duration_s=args.duration,
        rate_hz=args.rate,
        arrival=args.arrival,
        seed=args.seed,
    )
    window_s = trace.duration_s / args.speed
    print(
        f"trace: {len(trace)} events, {len(trace.clients)} clients, "
        f"{trace.frames():.0f} model frames, arrival={args.arrival}, "
        f"replayed at {args.speed}x"
    )

    with tempfile.TemporaryDirectory(prefix="bench-fleet-store-") as cache_dir:
        daemon = ServiceDaemon(
            ServiceConfig(
                port=0,
                workers=args.workers,
                queue_limit=args.queue_limit,
                cache_dir=cache_dir,
            )
        )
        handle = daemon.start_in_thread()
        try:
            report = replay_trace(
                trace,
                handle.address,
                speed=args.speed,
                retries=args.retries,
                timeout=600.0,
            )
        finally:
            handle.stop(drain=True)
            handle.join()

        summary = summarize_replay(report, window_s=window_s)
        with Session(store=cache_dir) as session:
            costs = fleet_costs(trace.classes, report, session, window_s=window_s)

        orphaned_tmp = [
            str(p) for p in Path(cache_dir).rglob("*") if p.name.endswith(".tmp")
        ]

    overall = summary["overall"]
    print(
        "replay: submitted={submitted} completed={completed} rejected={rejected} "
        "degraded={degraded} retried={retried} backoffs={backoffs}".format(**overall)
    )
    for name, stats in summary["classes"].items():
        print(
            f"  class {name}: n={stats['completed']} "
            f"p50={stats['p50_s'] * 1e3:.1f}ms p95={stats['p95_s'] * 1e3:.1f}ms "
            f"p99={stats['p99_s'] * 1e3:.1f}ms "
            f"throughput={stats['throughput_rps']:.2f} req/s"
        )
    fleet = costs.as_dict()
    print(
        f"fleet: {fleet['offered_fps']:.1f} fps offered, "
        f"{fleet['required_bandwidth_gbs']:.3f} GB/s aggregate bandwidth "
        f"({fleet['dram_channels_required']:.2f} LPDDR3 channels), "
        f"{fleet['mean_power_w']:.3f} W mean power, "
        f"{fleet['devices_required']:.3f} devices to sustain"
    )

    # ------------------------------------------------------------------
    # Phase 2: Pareto search vs exhaustive grid + warm resume.
    # ------------------------------------------------------------------
    search_entry = {}
    ok_frontier = ok_savings = ok_warm = True
    if not args.skip_search:
        base = ExperimentSpec(scene="lego", resolution_scale=0.25)
        with tempfile.TemporaryDirectory(prefix="bench-fleet-search-") as search_dir:
            started = time.perf_counter()
            with Session(store=search_dir) as session:
                search = pareto_search(session, base, axes=SEARCH_AXES)
                cold_points = session.points_run
                grid = exhaustive_frontier(session, base, axes=SEARCH_AXES)
            cold_s = time.perf_counter() - started
            started = time.perf_counter()
            with Session(store=search_dir) as warm_session:
                rerun = pareto_search(warm_session, base, axes=SEARCH_AXES)
                warm_points = warm_session.points_run
            warm_s = time.perf_counter() - started

        ok_frontier = frontier_labels(search) == frontier_labels(grid) and (
            frontier_labels(rerun) == frontier_labels(grid)
        )
        ok_savings = search.evaluations < grid.evaluations
        ok_warm = warm_points == 0
        print(
            f"search: frontier {len(search.frontier)}/{search.evaluations} evaluated "
            f"(grid {grid.evaluations}), rounds={search.rounds}, "
            f"cold={cold_s:.2f}s warm={warm_s:.2f}s "
            f"warm_points_run={warm_points}"
        )
        search_entry = {
            "search_axes": {name: values for name, values in SEARCH_AXES.items()},
            "grid_size": grid.evaluations,
            "search_evaluations": search.evaluations,
            "search_rounds": search.rounds,
            "frontier_size": len(search.frontier),
            "frontier_matches_grid": ok_frontier,
            "cold_points_run": cold_points,
            "warm_points_run": warm_points,
            "search_cold_s": round(cold_s, 6),
            "search_warm_s": round(warm_s, 6),
        }

    # ------------------------------------------------------------------
    # Gates and trajectory entry.
    # ------------------------------------------------------------------
    leaked = sorted(set(leaked_segments()) - shm_before)
    ok_all_completed = overall["completed"] == len(trace)
    ok_no_leaks = not leaked
    ok_no_orphans = not orphaned_tmp

    entry = {
        "duration_s": args.duration,
        "rate_hz": args.rate,
        "arrival": args.arrival,
        "seed": args.seed,
        "speed": args.speed,
        "workers": args.workers,
        "queue_limit": args.queue_limit,
        "clients": len(trace.clients),
        "events": len(trace),
        "cpu_count": os.cpu_count(),
        "completed": overall["completed"],
        "rejected": overall["rejected"],
        "degraded": overall["degraded"],
        "retried": overall["retried"],
        "backoffs": overall["backoffs"],
        "wall_s": round(report.wall_s, 6),
        "classes": {
            name: {
                "completed": stats["completed"],
                "p50_s": round(stats["p50_s"], 6),
                "p95_s": round(stats["p95_s"], 6),
                "p99_s": round(stats["p99_s"], 6),
                "throughput_rps": round(stats["throughput_rps"], 3),
            }
            for name, stats in summary["classes"].items()
        },
        "fleet": {
            "frames": fleet["frames"],
            "offered_fps": round(fleet["offered_fps"], 3),
            "required_bandwidth_gbs": round(fleet["required_bandwidth_gbs"], 6),
            "dram_channels_required": round(fleet["dram_channels_required"], 4),
            "energy_j": round(fleet["energy_j"], 6),
            "mean_power_w": round(fleet["mean_power_w"], 6),
            "devices_required": round(fleet["devices_required"], 4),
        },
        "leaked_shm": len(leaked),
        "orphaned_store_tmp": len(orphaned_tmp),
        "clean": all(
            (ok_all_completed, ok_no_leaks, ok_no_orphans, ok_frontier,
             ok_savings, ok_warm)
        ),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    entry.update(search_entry)
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if args.check:
        failed = False
        if not ok_all_completed:
            print(
                f"FAIL: {len(trace) - overall['completed']} event(s) did not "
                "complete over the wire",
                file=sys.stderr,
            )
            failed = True
        if not ok_no_leaks:
            print(f"FAIL: leaked shared-memory segments: {leaked}", file=sys.stderr)
            failed = True
        if not ok_no_orphans:
            print(f"FAIL: orphaned store temp files: {orphaned_tmp}", file=sys.stderr)
            failed = True
        if not ok_frontier:
            print("FAIL: search frontier does not match the grid", file=sys.stderr)
            failed = True
        if not ok_savings:
            print(
                "FAIL: search did not beat grid enumeration "
                f"({search_entry.get('search_evaluations')} vs "
                f"{search_entry.get('grid_size')})",
                file=sys.stderr,
            )
            failed = True
        if not ok_warm:
            print(
                "FAIL: warm search re-ran "
                f"{search_entry.get('warm_points_run')} point(s) instead of "
                "resuming from the store",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
