"""Fig. 2 — DRAM traffic proportion across the tile-centric pipeline stages.

Paper claims: projection and sorting together account for ~90 % of the
tile-centric pipeline's DRAM traffic and the intermediate (inter-stage)
data accounts for 85 % of the total.
"""

from repro.analysis.characterization import run_fig2


def test_fig2_traffic_breakdown(benchmark, report_result):
    result = benchmark(run_fig2)
    report_result("Fig. 2 — tile-centric DRAM traffic breakdown", result.format())

    # Shape checks mirroring the paper's claims.
    assert result.mean_share("projection") + result.mean_share("sorting") > 0.8
    assert result.mean_share("rendering") < 0.2
    assert result.intermediate_fraction > 0.6
