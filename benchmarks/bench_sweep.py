#!/usr/bin/env python
"""Sweep-executor benchmark: serial vs sharded-parallel evaluation.

Expands a seeded voxel-size grid (every point needs its own scene context,
so the shards are independent), times it three ways —

* **serial** — one fresh :class:`~repro.api.session.Session`, ``jobs=1``;
* **parallel** — a fresh :class:`~repro.api.executor.SweepExecutor` with
  ``--jobs N`` process workers;
* **warm** — the same grid against a cold then warm
  :class:`~repro.api.store.ResultStore`, asserting the warm run hits the
  store for every spec and performs **zero** renders

— verifies the three produce bit-identical :class:`SweepResult` payloads,
and appends the measurements to the ``BENCH_sweep.json`` trajectory next to
``BENCH_engine.json`` (atomic write-temp-then-rename appends)::

    PYTHONPATH=src python benchmarks/bench_sweep.py
    PYTHONPATH=src python benchmarks/bench_sweep.py --check --min-speedup 1.05

``--check`` exits non-zero when results diverge, the store misbehaves, or
(on multi-core hosts) the parallel run fails the speedup bar; on a
single-CPU host the speedup gate is skipped — the hardware cannot overlap
the shards — while every correctness assertion still applies.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.api import ExperimentSpec, ResultStore, Session, SweepExecutor, append_trajectory, sweep

#: Default acceptance bar: parallel speedup over serial (loose — CI runners
#: are shared and noisy; the real curve lives in the trajectory).
REQUIRED_SPEEDUP = 1.05

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scene", default="lego")
    parser.add_argument("--resolution-scale", type=float, default=0.5)
    parser.add_argument(
        "--voxel-sizes",
        default="0.4,0.6,0.8,1.0",
        help="comma-separated voxel-size grid (one scene context per value)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on result divergence, store misbehaviour, or (multi-core "
        "hosts) speedup < --min-speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=REQUIRED_SPEEDUP,
        help=f"parallel-over-serial bar for --check (default {REQUIRED_SPEEDUP}x)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=TRAJECTORY_PATH,
        help="trajectory file to append the result to",
    )
    args = parser.parse_args(argv)

    voxel_sizes = [float(v) for v in args.voxel_sizes.split(",") if v.strip()]
    base = ExperimentSpec(scene=args.scene, resolution_scale=args.resolution_scale)
    specs = sweep(base, voxel_size=voxel_sizes)
    print(
        f"grid: {len(specs)} specs ({args.scene} scene, scale "
        f"{args.resolution_scale}, voxel sizes {voxel_sizes})"
    )

    # Serial reference: one session, shared in-process state, no store.
    start = time.perf_counter()
    serial = Session().run_sweep(specs, swept=["voxel_size"], cache=False)
    serial_s = time.perf_counter() - start
    print(f"serial           : {serial_s:6.2f}s")

    # Sharded parallel run: fresh process pool, nothing warm, no store.
    executor = SweepExecutor(jobs=args.jobs, mode="process")
    start = time.perf_counter()
    parallel = executor.run(specs, swept=["voxel_size"])
    parallel_s = time.perf_counter() - start
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print(
        f"parallel jobs={args.jobs}  : {parallel_s:6.2f}s "
        f"({executor.report.shards} shards, mode={executor.report.mode}, "
        f"speedup {speedup:.2f}x)"
    )

    parity_ok = parallel.to_dict() == serial.to_dict()
    print(f"serial/parallel results identical: {parity_ok}")

    # Result-store behaviour: cold run misses and populates, warm run hits
    # every spec and renders nothing.
    with tempfile.TemporaryDirectory(prefix="bench-sweep-store-") as cache_dir:
        store = ResultStore(cache_dir)
        cold_executor = SweepExecutor(jobs=args.jobs, store=store)
        cold = cold_executor.run(specs, swept=["voxel_size"])
        cold_ok = (
            cold_executor.report.cache_misses == len(specs)
            and cold_executor.report.cache_hits == 0
            and cold.to_dict() == serial.to_dict()
        )
        warm_session = Session(store=store)
        warm = warm_session.run_sweep(specs, swept=["voxel_size"], jobs=args.jobs)
        warm_renders = warm_session.service.requests_served
        warm_ok = (
            store.hits == len(specs)
            and warm_renders == 0
            and warm.to_dict() == serial.to_dict()
        )
    print(
        f"store: cold populated {len(specs)} entries ({'ok' if cold_ok else 'FAIL'}), "
        f"warm hit {store.hits}/{len(specs)} with {warm_renders} renders "
        f"({'ok' if warm_ok else 'FAIL'})"
    )

    entry = {
        "scene": args.scene,
        "resolution_scale": args.resolution_scale,
        "voxel_sizes": voxel_sizes,
        "specs": len(specs),
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "parity_ok": parity_ok,
        "cache_ok": cold_ok and warm_ok,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if args.check:
        failed = False
        if not parity_ok:
            print("FAIL: parallel results differ from the serial reference", file=sys.stderr)
            failed = True
        if not (cold_ok and warm_ok):
            print("FAIL: result-store cold/warm behaviour is wrong", file=sys.stderr)
            failed = True
        cpus = os.cpu_count() or 1
        if cpus < 2:
            print(
                f"note: single-CPU host ({cpus} core) — speedup gate skipped "
                f"(measured {speedup:.2f}x)"
            )
        elif speedup < args.min_speedup:
            print(
                f"FAIL: parallel speedup {speedup:.2f}x < {args.min_speedup}x",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"OK: parallel speedup {speedup:.2f}x >= {args.min_speedup}x")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
