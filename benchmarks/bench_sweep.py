#!/usr/bin/env python
"""Sweep-executor benchmark: serial vs sharded-parallel evaluation.

Expands a seeded voxel-size grid (every point needs its own scene context,
so the shards are independent), times it three ways —

* **serial** — one fresh :class:`~repro.api.session.Session`, ``jobs=1``;
* **parallel** — a fresh :class:`~repro.api.executor.SweepExecutor` with
  ``--jobs N`` process workers;
* **warm** — the same grid against a cold then warm
  :class:`~repro.api.store.ResultStore`, asserting the warm run hits the
  store for every spec and performs **zero** renders;
* **warm pool** — two consecutive ``run_sweep`` calls on one
  :class:`Session`, asserting the second reuses the persistent worker
  pool (``ExecutionReport.worker_reuse >= 1``) instead of paying pool
  startup again;
* **warm contexts** — a single-context grid run twice through one
  session's process pool, asserting the second run adopts the zero-copy
  shm-broadcast context (``ExecutionReport.context_rebuilds == 0``)
  instead of rebuilding it in every worker

— verifies they produce bit-identical :class:`SweepResult` tables
(``meta`` carries run telemetry and legitimately differs), and appends the
measurements to the ``BENCH_sweep.json`` trajectory next to
``BENCH_engine.json`` (atomic write-temp-then-rename appends)::

    PYTHONPATH=src python benchmarks/bench_sweep.py
    PYTHONPATH=src python benchmarks/bench_sweep.py --check --min-speedup 1.05

``--check`` exits non-zero when results diverge, the store misbehaves, the
warm pool is not reused (or is drastically slower than the cold one), or
(on multi-core hosts) the parallel run fails the speedup bar; on a
single-CPU host the speedup gate is skipped — the hardware cannot overlap
the shards — while every correctness assertion still applies.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.api import ExperimentSpec, ResultStore, Session, SweepExecutor, append_trajectory, sweep

#: Default acceptance bar: parallel speedup over serial (loose — CI runners
#: are shared and noisy; the real curve lives in the trajectory).
REQUIRED_SPEEDUP = 1.05

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

#: Warm-pool bar: the pool-reusing second sweep may be at most this much
#: slower than the pool-creating first one (it should in fact be faster —
#: the bar is loose because both runs are short and hosts are noisy).
POOL_WARM_SLACK = 1.5



def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scene", default="lego")
    parser.add_argument("--resolution-scale", type=float, default=0.5)
    parser.add_argument(
        "--voxel-sizes",
        default="0.4,0.6,0.8,1.0",
        help="comma-separated voxel-size grid (one scene context per value)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on result divergence, store misbehaviour, or (multi-core "
        "hosts) speedup < --min-speedup",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=REQUIRED_SPEEDUP,
        help=f"parallel-over-serial bar for --check (default {REQUIRED_SPEEDUP}x)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=TRAJECTORY_PATH,
        help="trajectory file to append the result to",
    )
    args = parser.parse_args(argv)

    voxel_sizes = [float(v) for v in args.voxel_sizes.split(",") if v.strip()]
    base = ExperimentSpec(scene=args.scene, resolution_scale=args.resolution_scale)
    specs = sweep(base, voxel_size=voxel_sizes)
    print(
        f"grid: {len(specs)} specs ({args.scene} scene, scale "
        f"{args.resolution_scale}, voxel sizes {voxel_sizes})"
    )

    # Serial reference: one session, shared in-process state, no store.
    start = time.perf_counter()
    serial = Session().run_sweep(specs, swept=["voxel_size"], cache=False)
    serial_s = time.perf_counter() - start
    print(f"serial           : {serial_s:6.2f}s")

    # Sharded parallel run: fresh process pool, nothing warm, no store.
    executor = SweepExecutor(jobs=args.jobs, mode="process")
    start = time.perf_counter()
    parallel = executor.run(specs, swept=["voxel_size"])
    parallel_s = time.perf_counter() - start
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print(
        f"parallel jobs={args.jobs}  : {parallel_s:6.2f}s "
        f"({executor.report.shards} shards, mode={executor.report.mode}, "
        f"speedup {speedup:.2f}x, pickled {executor.report.pickled_bytes} B)"
    )

    parity_ok = parallel.table_dict() == serial.table_dict()
    print(f"serial/parallel results identical: {parity_ok}")

    # Persistent-pool behaviour: two sweeps on one session — the second
    # must reuse the first's worker pool instead of building a new one.
    with Session(jobs=args.jobs) as pool_session:
        start = time.perf_counter()
        pool_cold = pool_session.run_sweep(specs, swept=["voxel_size"], cache=False)
        pool_cold_s = time.perf_counter() - start
        start = time.perf_counter()
        pool_warm = pool_session.run_sweep(specs, swept=["voxel_size"], cache=False)
        pool_warm_s = time.perf_counter() - start
        pool_reuse = pool_session.last_execution.worker_reuse
    pool_ok = (
        pool_reuse >= 1
        and pool_cold.table_dict() == serial.table_dict()
        and pool_warm.table_dict() == serial.table_dict()
    )
    print(
        f"warm pool        : {pool_cold_s:6.2f}s cold, {pool_warm_s:6.2f}s warm "
        f"(reuse={pool_reuse}, {'ok' if pool_ok else 'FAIL'})"
    )

    # Warm-context behaviour: a single-context grid run twice through one
    # session's persistent process pool.  The first run broadcasts the
    # scene context as a zero-copy shm package; the second must adopt warm
    # worker contexts (or the broadcast package) and rebuild **nothing**.
    ctx_specs = sweep(base, num_hfu=(1, 2, 3, 4, 5, 6, 7, 8))
    with Session(jobs=args.jobs) as ctx_session:
        ctx_cold = SweepExecutor(jobs=args.jobs, mode="process", split_threshold=8)
        ctx_cold.run(ctx_specs, swept=["num_hfu"], session=ctx_session)
        ctx_warm = SweepExecutor(jobs=args.jobs, mode="process", split_threshold=8)
        ctx_warm.run(ctx_specs, swept=["num_hfu"], session=ctx_session)
        ctx_rebuilds = ctx_warm.report.context_rebuilds
        ctx_mode = ctx_warm.report.mode
        shm_segments = ctx_warm.report.shm_segments
        pickled_bytes = ctx_warm.report.pickled_bytes
    warm_ctx_ok = ctx_mode != "process" or ctx_rebuilds == 0
    print(
        f"warm contexts    : mode={ctx_mode} rebuilds={ctx_rebuilds} "
        f"shm_segments={shm_segments} pickled={pickled_bytes} B "
        f"({'ok' if warm_ctx_ok else 'FAIL'})"
    )

    # Result-store behaviour: cold run misses and populates, warm run hits
    # every spec and renders nothing.
    with tempfile.TemporaryDirectory(prefix="bench-sweep-store-") as cache_dir:
        store = ResultStore(cache_dir)
        cold_executor = SweepExecutor(jobs=args.jobs, store=store)
        cold = cold_executor.run(specs, swept=["voxel_size"])
        cold_ok = (
            cold_executor.report.cache_misses == len(specs)
            and cold_executor.report.cache_hits == 0
            and cold.table_dict() == serial.table_dict()
        )
        warm_session = Session(store=store)
        warm = warm_session.run_sweep(specs, swept=["voxel_size"], jobs=args.jobs)
        warm_renders = warm_session.service.requests_served
        warm_ok = (
            store.hits == len(specs)
            and warm_renders == 0
            and warm.table_dict() == serial.table_dict()
        )
    print(
        f"store: cold populated {len(specs)} entries ({'ok' if cold_ok else 'FAIL'}), "
        f"warm hit {store.hits}/{len(specs)} with {warm_renders} renders "
        f"({'ok' if warm_ok else 'FAIL'})"
    )

    entry = {
        "scene": args.scene,
        "resolution_scale": args.resolution_scale,
        "voxel_sizes": voxel_sizes,
        "specs": len(specs),
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": speedup,
        "pool_cold_s": pool_cold_s,
        "pool_warm_s": pool_warm_s,
        "pool_reuse": pool_reuse,
        "parity_ok": parity_ok,
        "cache_ok": cold_ok and warm_ok,
        "pool_ok": pool_ok,
        "parallel_mode": executor.report.mode,
        "pickled_bytes": executor.report.pickled_bytes,
        "warm_ctx_mode": ctx_mode,
        "warm_ctx_rebuilds": ctx_rebuilds,
        "warm_ctx_shm_segments": shm_segments,
        "warm_ctx_pickled_bytes": pickled_bytes,
        "warm_ctx_ok": warm_ctx_ok,
        "speedup_gate": "enforced" if (os.cpu_count() or 1) >= 2 else "skipped",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    append_trajectory(args.output, entry)
    print(f"appended trajectory entry to {args.output}")

    if args.check:
        failed = False
        if not parity_ok:
            print("FAIL: parallel results differ from the serial reference", file=sys.stderr)
            failed = True
        if not (cold_ok and warm_ok):
            print("FAIL: result-store cold/warm behaviour is wrong", file=sys.stderr)
            failed = True
        if not warm_ctx_ok:
            print(
                "FAIL: warm process workers rebuilt broadcast contexts "
                f"(mode={ctx_mode}, rebuilds={ctx_rebuilds})",
                file=sys.stderr,
            )
            failed = True
        if not pool_ok:
            print(
                "FAIL: persistent worker pool was not reused across sweeps "
                f"(reuse={pool_reuse})",
                file=sys.stderr,
            )
            failed = True
        elif pool_warm_s > pool_cold_s * POOL_WARM_SLACK:
            print(
                f"FAIL: warm-pool sweep took {pool_warm_s:.2f}s > "
                f"{POOL_WARM_SLACK}x the cold-pool {pool_cold_s:.2f}s",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"OK: warm pool reused (reuse={pool_reuse}, "
                f"{pool_cold_s:.2f}s -> {pool_warm_s:.2f}s)"
            )
        cpus = os.cpu_count() or 1
        if cpus < 2:
            print(
                f"note: single-CPU host ({cpus} core) — speedup gate skipped "
                f"(measured {speedup:.2f}x)"
            )
        elif speedup < args.min_speedup:
            print(
                f"FAIL: parallel speedup {speedup:.2f}x < {args.min_speedup}x",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"OK: parallel speedup {speedup:.2f}x >= {args.min_speedup}x")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
