"""Vector quantization and fine-tuning walkthrough.

Run with::

    python examples/compression_and_finetuning.py

Demonstrates the memory-optimisation half of the paper on the 'train'
scene, with all rendering going through a shared :class:`repro.api.Session`:

1. train per-feature-group codebooks and quantify the second-half traffic
   reduction (Sec. III-C, paper: 92.3 %);
2. run quantization-aware fine-tuning and show the quality recovery;
3. run boundary-aware fine-tuning (Sec. III-B) and show the error-Gaussian
   ratio falling while rendering quality is maintained (Fig. 7).
"""

from __future__ import annotations

from repro.api import Session
from repro.compression.quantization_aware import quantization_aware_finetune
from repro.compression.vq import VectorQuantizer
from repro.gaussians.metrics import psnr
from repro.training.boundary_finetune import boundary_aware_finetune
from repro.training.color_refinement import dc_color_refinement_step


def main() -> int:
    scene = "train"
    session = Session()
    context = session.context(scene)
    descriptor = context.descriptor
    trained, ground_truth = context.trained, context.ground_truth
    camera = context.camera
    print(f"Calibrated trained model: {context.baseline_psnr:.2f} dB "
          f"(target {descriptor.target_psnr['3dgs']:.2f} dB)")

    # ------------------------------------------------------------------
    # 1. Vector quantization (Sec. III-C)
    # ------------------------------------------------------------------
    quantizer = VectorQuantizer().fit(trained)
    reduction = quantizer.traffic_reduction()
    print("\nVector quantization")
    print(f"  raw second half      : {quantizer.raw_bytes_per_gaussian():.0f} B/Gaussian")
    print(f"  compressed second half: {quantizer.compressed_bytes_per_gaussian():.1f} B/Gaussian")
    print(f"  traffic reduction    : {100 * reduction:.1f}% (paper: 92.3%)")
    print(f"  codebook SRAM        : {quantizer.codebook_storage_bytes() / 1024:.0f} KB "
          "(paper codebook buffer: 250 KB)")

    quantized_image = session.render(
        quantizer.roundtrip(trained), camera, mode="tile"
    ).image
    print(f"  post-quantization PSNR: {psnr(ground_truth, quantized_image):.2f} dB")

    # ------------------------------------------------------------------
    # 2. Quantization-aware fine-tuning
    # ------------------------------------------------------------------
    qat = quantization_aware_finetune(
        trained,
        quantizer,
        iterations=4,
        camera=camera,
        ground_truth=ground_truth,
        rasterizer=session.tile_rasterizer(),
    )
    print("\nQuantization-aware fine-tuning")
    print(f"  PSNR before: {qat.psnr_before:.2f} dB   after: {qat.psnr_after:.2f} dB")
    print(f"  quantization error per round: "
          + ", ".join(f"{e:.4f}" for e in qat.quantization_error_history))

    # ------------------------------------------------------------------
    # 3. Boundary-aware fine-tuning (Sec. III-B / Fig. 7)
    # ------------------------------------------------------------------
    config = context.streaming_config
    photometric_target = session.render(trained, camera, config=config, mode="tile").image
    # Probes render throwaway parameter snapshots; an isolated single-slot
    # session keeps them from evicting the shared scene-context renderers.
    probe_session = session.isolated(max_renderers=1)

    def probe(model):
        output = probe_session.render(model, camera, config=config).output
        stats = output.stats
        return (
            stats.error_gaussian_indices(),
            psnr(ground_truth, output.image),
            stats.error_gaussian_ratio,
        )

    def refiner(model):
        return dc_color_refinement_step(model, [camera], [photometric_target], damping=0.4)

    result = boundary_aware_finetune(
        trained,
        config.voxel_size,
        iterations=1500,
        learning_rate=0.1,
        error_probe=probe,
        probe_every=500,
        photometric_refiner=refiner,
    )
    print("\nBoundary-aware fine-tuning (error ratio / streaming PSNR per probe)")
    for iteration, ratio, quality in zip(
        result.iterations, result.error_gaussian_ratio, result.quality
    ):
        print(f"  iter {iteration:>5}: {100 * ratio:5.1f}%   {quality:.2f} dB")
    print(f"  error-Gaussian ratio: {100 * result.initial_error_ratio:.1f}% -> "
          f"{100 * result.final_error_ratio:.1f}% "
          "(paper: 2.3% -> 0.4%)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
