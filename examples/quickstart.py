"""Quickstart: one declarative experiment through ``repro.api``.

Run with::

    python examples/quickstart.py
    python examples/quickstart.py --scene lego --resolution-scale 0.5

The script opens a :class:`repro.api.Session`, builds the evaluation
context of one scene (procedural model, calibrated "trained" model,
tile-centric and streaming renders), then runs a declarative
:class:`repro.api.ExperimentSpec` point end to end — streaming render,
paper-scale workload, accelerator model — and prints the typed
:class:`repro.api.ExperimentResult`.
"""

from __future__ import annotations

import argparse
import json

from repro.api import ExperimentSpec, Session


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scene", default="lego", help="registered scene name")
    parser.add_argument("--algorithm", default="3dgs", help="base algorithm variant")
    parser.add_argument(
        "--resolution-scale",
        type=float,
        default=1.0,
        help="scale on the simulated evaluation resolution (use 0.5 for a quick run)",
    )
    args = parser.parse_args(argv)

    session = Session()
    context = session.context(
        args.scene, algorithm=args.algorithm, resolution_scale=args.resolution_scale
    )
    descriptor = context.descriptor
    print(f"Scene: {context.scene} ({descriptor.dataset}, {descriptor.category})")
    print(f"  Gaussians (simulated): {len(context.trained)}")
    print(f"  Evaluation resolution: {context.camera.width}x{context.camera.height}")

    tile_stats = context.tile_output.stats
    print("\nTile-centric reference render")
    print(f"  projected Gaussians : {tile_stats.num_projected}")
    print(f"  (Gaussian, tile) pairs : {tile_stats.num_tile_pairs}")
    print(f"  blended fragments   : {tile_stats.num_blended_fragments}")

    stats = context.streaming_output.stats
    print("\nStreaming (memory-centric) render")
    print(f"  voxel size          : {context.streaming_config.voxel_size}")
    print(f"  non-empty voxels    : {context.streaming_renderer.grid.num_voxels}")
    print(f"  voxels per tile     : {stats.mean_voxels_per_tile:.1f}")
    print(f"  Gaussians streamed  : {stats.gaussians_streamed}")
    print(f"  filtering reduction : {100 * stats.filtering_reduction:.1f}%")
    print(f"  DRAM traffic        : {stats.traffic.total_bytes / 1e6:.2f} MB")
    print(f"  error Gaussian ratio: {100 * stats.error_gaussian_ratio:.2f}%")

    spec = ExperimentSpec(
        scene=args.scene,
        algorithm=args.algorithm,
        resolution_scale=args.resolution_scale,
    )
    result = session.run(spec)
    print(f"\n{result.format()}")
    print(f"\nPSNR vs ground truth: streaming {result.metrics['streaming_psnr']:.2f} dB, "
          f"tile-centric baseline {result.metrics['baseline_psnr']:.2f} dB "
          f"(drop {result.metrics['psnr_drop']:.2f} dB)")

    # The result is machine-readable too: to_json() round-trips losslessly.
    roundtrip = type(result).from_json(result.to_json())
    assert roundtrip.to_dict() == result.to_dict()
    print(f"result metrics as JSON: {json.dumps(result.metrics, sort_keys=True)[:76]}...")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
