"""Quickstart: render a scene with the tile-centric and streaming pipelines.

Run with::

    python examples/quickstart.py

The script builds the procedural "lego" scene, renders it with the
tile-centric reference rasterizer (the original 3DGS pipeline) and with the
memory-centric streaming renderer (the paper's contribution), compares the
two images and prints the workload statistics the architecture model feeds
on.
"""

from __future__ import annotations

from repro import StreamingConfig, StreamingRenderer, TileRasterizer
from repro.gaussians.metrics import psnr
from repro.scenes.registry import SCENE_REGISTRY, build_scene, default_eval_camera


def main() -> None:
    scene = "lego"
    descriptor = SCENE_REGISTRY[scene]
    print(f"Scene: {scene} ({descriptor.dataset}, {descriptor.category})")

    model = build_scene(scene)
    camera = default_eval_camera(scene)
    print(f"  Gaussians (simulated): {len(model)}")
    print(f"  Evaluation resolution: {camera.width}x{camera.height}")

    # 1. The tile-centric reference pipeline (original 3DGS).
    reference = TileRasterizer().render(model, camera)
    print("\nTile-centric reference render")
    print(f"  projected Gaussians : {reference.stats.num_projected}")
    print(f"  (Gaussian, tile) pairs : {reference.stats.num_tile_pairs}")
    print(f"  blended fragments   : {reference.stats.num_blended_fragments}")

    # 2. The fully streaming, memory-centric pipeline.
    config = StreamingConfig.for_scene_category(descriptor.category)
    renderer = StreamingRenderer(model, config)
    streaming = renderer.render(camera)
    stats = streaming.stats
    print("\nStreaming (memory-centric) render")
    print(f"  voxel size          : {config.voxel_size}")
    print(f"  non-empty voxels    : {renderer.grid.num_voxels}")
    print(f"  voxels per tile     : {stats.mean_voxels_per_tile:.1f}")
    print(f"  Gaussians streamed  : {stats.gaussians_streamed}")
    print(f"  filtering reduction : {100 * stats.filtering_reduction:.1f}%")
    print(f"  DRAM traffic        : {stats.traffic.total_bytes / 1e6:.2f} MB")
    print(f"  error Gaussian ratio: {100 * stats.error_gaussian_ratio:.2f}%")

    # 3. The two images should match closely.
    quality = psnr(reference.image, streaming.image)
    print(f"\nStreaming vs. tile-centric PSNR: {quality:.2f} dB")
    print("(higher is better; identical pipelines would give infinity)")


if __name__ == "__main__":
    main()
