"""Service-client demo: drive the render daemon over its wire protocol.

Run with::

    python examples/service_client.py                  # embedded daemon
    python examples/service_client.py --connect HOST:PORT

Without ``--connect`` the script starts a daemon on a background thread
(the same embedding path the tests and benchmarks use), then exercises
the full client surface against it: a ``ping``, two renders (the second
hits the warm renderer cache), a small parameter sweep, a ``/healthz`` +
``/metrics`` scrape over the daemon's HTTP shim, and a graceful
drain-and-shutdown.  With ``--connect`` it talks to an already-running
daemon (``repro-serve`` or ``python -m repro.analysis.runner serve``)
and leaves it running.
"""

from __future__ import annotations

import argparse
import json

from repro.service import ServiceClient
from repro.service.client import scrape_http


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="use a running daemon instead of starting an embedded one",
    )
    parser.add_argument("--scene", default="lego", help="scene to render")
    parser.add_argument(
        "--resolution-scale", type=float, default=0.25, help="render scale"
    )
    args = parser.parse_args(argv)

    handle = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        address = ("tcp", host or "127.0.0.1", int(port))
    else:
        from repro.service import ServiceConfig, ServiceDaemon

        handle = ServiceDaemon(ServiceConfig(port=0, workers=2)).start_in_thread()
        address = handle.address
        print(f"embedded daemon listening on {address[1]}:{address[2]}")

    client = ServiceClient.connect(address, client="example", timeout=300.0)
    try:
        print("ping:", client.ping())

        first = client.render(args.scene, resolution_scale=args.resolution_scale)
        second = client.render(args.scene, resolution_scale=args.resolution_scale)
        for label, response in (("cold", first), ("warm", second)):
            if not response.ok:
                raise SystemExit(f"render failed: [{response.code}] {response.error}")
            result = response.result
            print(
                f"render ({label}): {result['scene']} "
                f"{result['width']}x{result['height']} "
                f"psnr={result['streaming_psnr']:.2f} "
                f"sha={result['image_sha256']}"
            )
        assert first.result["image_sha256"] == second.result["image_sha256"]

        sweep = client.sweep(
            base={"scene": args.scene, "resolution_scale": args.resolution_scale},
            num_hfu=[2, 4],
        )
        if not sweep.ok:
            raise SystemExit(f"sweep failed: [{sweep.code}] {sweep.error}")
        for label, metrics in zip(sweep.result["labels"], sweep.result["metrics"]):
            print(f"sweep point {label}: {json.dumps(metrics)[:100]}")

        health = scrape_http(address, "/healthz")
        print("healthz:", json.dumps(health))
        metrics = scrape_http(address, "/metrics")
        print(
            "metrics: accepted={accepted} completed={completed} "
            "rejected={rejected}".format(**metrics["requests"])
        )
    finally:
        if handle is not None:
            client.shutdown(drain=True)
            handle.join()
            print("daemon drained and stopped")
        client.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
