"""Design-space exploration of the STREAMINGGS accelerator.

Run with::

    python examples/design_space_exploration.py

Sweeps the two design knobs the paper studies in its sensitivity section —
the number of coarse/fine filter units per HFU (Fig. 13) and the voxel size
(Fig. 12) — and reports speedup, energy savings and silicon area for each
point, using the 'train' scene workload.
"""

from __future__ import annotations

from repro.analysis.context import get_scene_context
from repro.analysis.report import format_table
from repro.arch.accelerator import AcceleratorConfig, StreamingGSAccelerator
from repro.arch.area import AreaModel
from repro.arch.gpu import OrinNXModel


def sweep_filter_units(workload, gpu_report) -> str:
    """Fig. 13-style sweep: CFU / FFU counts per HFU."""
    area_model = AreaModel()
    rows = []
    for num_cfu in (1, 2, 3, 4):
        for num_ffu in (1, 2, 4):
            config = AcceleratorConfig(cfus_per_hfu=num_cfu, ffus_per_hfu=num_ffu)
            report = StreamingGSAccelerator(config).evaluate(workload)
            area = area_model.breakdown(
                cfus_per_hfu=num_cfu, ffus_per_hfu=num_ffu
            ).total_mm2
            rows.append(
                [
                    f"{num_cfu} CFU / {num_ffu} FFU",
                    round(report.speedup_over(gpu_report), 1),
                    round(report.energy_saving_over(gpu_report), 1),
                    round(area, 2),
                ]
            )
    return format_table(
        ["HFU configuration", "speedup (x)", "energy savings (x)", "area (mm^2)"],
        rows,
        title="Filter-unit design space (train scene)",
    )


def sweep_voxel_size(gpu_model) -> str:
    """Fig. 12-style sweep: voxel size vs quality and efficiency."""
    rows = []
    for voxel_size in (1.0, 1.5, 2.0, 3.0):
        context = get_scene_context("train", voxel_size=voxel_size)
        gpu_report = gpu_model.evaluate(context.workload)
        report = StreamingGSAccelerator().evaluate(context.workload)
        rows.append(
            [
                voxel_size,
                round(context.streaming_psnr, 2),
                round(report.speedup_over(gpu_report), 1),
                round(report.energy_saving_over(gpu_report), 1),
            ]
        )
    return format_table(
        ["voxel size", "PSNR (dB)", "speedup (x)", "energy savings (x)"],
        rows,
        title="Voxel-size design space (train scene)",
    )


def main() -> None:
    gpu = OrinNXModel()
    context = get_scene_context("train")
    gpu_report = gpu.evaluate(context.workload)

    print(sweep_filter_units(context.workload, gpu_report))
    print()
    print(sweep_voxel_size(gpu))
    print()
    default_area = AreaModel().table1()
    print(f"Default configuration area: {default_area.total_mm2:.2f} mm^2 "
          "(paper Table I: 5.37 mm^2)")


if __name__ == "__main__":
    main()
