"""Design-space exploration of the STREAMINGGS accelerator.

Run with::

    python examples/design_space_exploration.py

Sweeps the two design knobs the paper studies in its sensitivity section —
the number of coarse/fine filter units per HFU (Fig. 13) and the voxel size
(Fig. 12) — as declarative ``session.sweep`` grids on the 'train' scene.
Grid keys are routed automatically: ``cfus_per_hfu``/``ffus_per_hfu`` go to
the accelerator configuration, ``voxel_size`` to the streaming
configuration.
"""

from __future__ import annotations

from repro.api import ExperimentSpec, Session


def main() -> int:
    session = Session()
    base = ExperimentSpec(scene="train")

    # Fig. 13-style sweep: CFU / FFU counts per HFU.
    filter_units = session.sweep(base, cfus_per_hfu=(1, 2, 3, 4), ffus_per_hfu=(1, 2, 4))
    print(filter_units.table(
        ["speedup", "energy_savings", "area_mm2"],
        title="Filter-unit design space (train scene)",
    ))
    print()

    # Fig. 12-style sweep: voxel size vs quality and efficiency.
    voxels = session.sweep(base, voxel_size=(1.0, 1.5, 2.0, 3.0))
    print(voxels.table(
        ["streaming_psnr", "speedup", "energy_savings"],
        title="Voxel-size design space (train scene)",
    ))
    print()

    table1 = session.run("tab1")
    print(f"Default configuration area: {table1.metrics['total_mm2']:.2f} mm^2 "
          "(paper Table I: 5.37 mm^2)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
