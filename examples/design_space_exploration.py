"""Design-space exploration of the STREAMINGGS accelerator.

Run with::

    python examples/design_space_exploration.py
    python examples/design_space_exploration.py --jobs 4 --cache-dir results/

Sweeps the two design knobs the paper studies in its sensitivity section —
the number of coarse/fine filter units per HFU (Fig. 13) and the voxel size
(Fig. 12) — as declarative ``session.sweep`` grids on the 'train' scene.
Grid keys are routed automatically: ``cfus_per_hfu``/``ffus_per_hfu`` go to
the accelerator configuration, ``voxel_size`` to the streaming
configuration.

Every sweep runs on the sharded :class:`~repro.api.executor.SweepExecutor`:
``--jobs N`` fans the voxel-size grid out over N workers (each voxel size
needs its own scene context, so the shards are independent), and
``--cache-dir`` persists every evaluated point in a
:class:`~repro.api.store.ResultStore`, making a second invocation of this
script render nothing at all.
"""

from __future__ import annotations

import argparse

from repro.api import ExperimentSpec, Session


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep worker count (sharded parallel evaluation; default serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the disk-backed result store (default: no caching)",
    )
    args = parser.parse_args(argv)

    session = Session(jobs=args.jobs, store=args.cache_dir)
    base = ExperimentSpec(scene="train")

    # Fig. 13-style sweep: CFU / FFU counts per HFU.  All twelve points
    # share one scene context, so this collapses into a single shard.
    filter_units = session.sweep(base, cfus_per_hfu=(1, 2, 3, 4), ffus_per_hfu=(1, 2, 4))
    print(filter_units.table(
        ["speedup", "energy_savings", "area_mm2"],
        title="Filter-unit design space (train scene)",
    ))
    print()

    # Fig. 12-style sweep: voxel size vs quality and efficiency.  Each
    # voxel size is its own context, so --jobs N shards it N ways.
    voxels = session.sweep(base, voxel_size=(1.0, 1.5, 2.0, 3.0))
    print(voxels.table(
        ["streaming_psnr", "speedup", "energy_savings"],
        title="Voxel-size design space (train scene)",
    ))
    print()

    table1 = session.run("tab1")
    print(f"Default configuration area: {table1.metrics['total_mm2']:.2f} mm^2 "
          "(paper Table I: 5.37 mm^2)")
    if session.store is not None:
        stats = session.store.stats()
        print(f"result store: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['entries']} entries in {session.store.root}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
