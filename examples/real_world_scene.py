"""Real-world scene walkthrough: the 'truck' scene end to end.

Run with::

    python examples/real_world_scene.py

This follows the paper's evaluation flow for one Tanks&Temples-style scene,
expressed through the declarative ``repro.api`` front-end:

1. open a :class:`repro.api.Session` and build the scene's evaluation
   context (calibrated "trained" model, streaming render, paper-scale
   workload);
2. sweep the hardware axis — Orin NX GPU, GSCore, the streaming
   accelerator without coarse-grained filtering, and full STREAMINGGS —
   with one ``session.sweep`` call (Fig. 3/4/11);
3. print the typed results' metrics side by side.
"""

from __future__ import annotations

from repro.api import ExperimentSpec, Session
from repro.arch.traffic import tile_centric_traffic

#: Hardware points compared, in presentation order.
HARDWARE = ("gpu", "gscore", "wo_cgf", "streaminggs")


def main() -> int:
    scene = "truck"
    session = Session()
    context = session.context(scene)
    descriptor = context.descriptor
    workload = context.workload

    print(f"Scene: {scene} ({descriptor.dataset})")
    print(f"  full-scale Gaussians : {descriptor.full_num_gaussians:,}")
    print(f"  native resolution    : {descriptor.full_resolution}")
    print(f"  baseline PSNR        : {context.baseline_psnr:.2f} dB "
          f"(paper: {descriptor.target_psnr['3dgs']:.2f})")
    print(f"  streaming PSNR       : {context.streaming_psnr:.2f} dB")

    print("\nPaper-scale per-frame workload")
    print(f"  visible Gaussians    : {workload.visible_gaussians:,.0f}")
    print(f"  (Gaussian, tile) pairs: {workload.num_pairs:,.0f}")
    print(f"  Gaussians streamed   : {workload.gaussians_streamed:,.0f}")
    print(f"  filtering reduction  : {100 * workload.filtering_reduction:.1f}%")

    tile_traffic = tile_centric_traffic(workload)
    print("\nTile-centric DRAM traffic per frame")
    for stage, size in tile_traffic.breakdown().items():
        print(f"  {stage:<11}: {size / 1e6:8.1f} MB")
    print(f"  bandwidth needed for 90 FPS: "
          f"{tile_traffic.required_bandwidth(90.0) / 1e9:.1f} GB/s "
          f"(Orin NX limit: 102.4 GB/s)")

    # One declarative sweep over the hardware axis; every point reuses the
    # scene context prepared above through the shared session.
    comparison = session.sweep(ExperimentSpec(scene=scene), arch=HARDWARE)
    print("\nHardware comparison (per frame)")
    print(comparison.table(["frame_time_ms", "fps", "energy_per_frame_mj", "dram_mb_per_frame"]))

    print("\nSpeedup / energy savings over the GPU")
    print(comparison.table(["speedup", "energy_savings"]))

    full = comparison[HARDWARE.index("streaminggs")]
    gscore = comparison[HARDWARE.index("gscore")]
    print(
        f"\nSTREAMINGGS vs GSCore: "
        f"{full.metrics['speedup'] / gscore.metrics['speedup']:.2f}x speedup, "
        f"{full.metrics['energy_savings'] / gscore.metrics['energy_savings']:.2f}x energy "
        f"(paper: 2.1x / 2.3x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
