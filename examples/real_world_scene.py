"""Real-world scene walkthrough: the 'truck' scene end to end.

Run with::

    python examples/real_world_scene.py

This follows the paper's evaluation flow for one Tanks&Temples-style scene:

1. build the procedural reference scene and calibrate a "trained" model to
   the paper's reported PSNR (Table II);
2. render it with the streaming pipeline and collect the workload;
3. scale the workload to paper-scale statistics and evaluate the Orin NX
   GPU, GSCore and STREAMINGGS hardware models on it (Fig. 3/4/11).
"""

from __future__ import annotations

from repro.analysis.context import get_scene_context
from repro.arch.accelerator import AcceleratorConfig, StreamingGSAccelerator
from repro.arch.gpu import OrinNXModel
from repro.arch.gscore import GSCoreModel
from repro.arch.traffic import tile_centric_traffic


def main() -> None:
    scene = "truck"
    context = get_scene_context(scene)
    descriptor = context.descriptor
    workload = context.workload

    print(f"Scene: {scene} ({descriptor.dataset})")
    print(f"  full-scale Gaussians : {descriptor.full_num_gaussians:,}")
    print(f"  native resolution    : {descriptor.full_resolution}")
    print(f"  baseline PSNR        : {context.baseline_psnr:.2f} dB "
          f"(paper: {descriptor.target_psnr['3dgs']:.2f})")
    print(f"  streaming PSNR       : {context.streaming_psnr:.2f} dB")

    print("\nPaper-scale per-frame workload")
    print(f"  visible Gaussians    : {workload.visible_gaussians:,.0f}")
    print(f"  (Gaussian, tile) pairs: {workload.num_pairs:,.0f}")
    print(f"  Gaussians streamed   : {workload.gaussians_streamed:,.0f}")
    print(f"  filtering reduction  : {100 * workload.filtering_reduction:.1f}%")

    tile_traffic = tile_centric_traffic(workload)
    print("\nTile-centric DRAM traffic per frame")
    for stage, size in tile_traffic.breakdown().items():
        print(f"  {stage:<11}: {size / 1e6:8.1f} MB")
    print(f"  bandwidth needed for 90 FPS: "
          f"{tile_traffic.required_bandwidth(90.0) / 1e9:.1f} GB/s "
          f"(Orin NX limit: 102.4 GB/s)")

    gpu = OrinNXModel().evaluate(workload)
    gscore = GSCoreModel().evaluate(workload)
    full = StreamingGSAccelerator().evaluate(workload)
    wo_cgf = StreamingGSAccelerator(AcceleratorConfig.variant("wo_cgf")).evaluate(workload)

    print("\nHardware comparison (per frame)")
    header = f"  {'design':<14}{'time (ms)':>12}{'FPS':>9}{'energy (mJ)':>14}{'DRAM (MB)':>12}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for report in (gpu, gscore, wo_cgf, full):
        print(
            f"  {report.name:<14}{report.frame_time_s * 1e3:>12.2f}"
            f"{report.fps:>9.1f}{report.energy_per_frame_j * 1e3:>14.2f}"
            f"{report.dram_bytes / 1e6:>12.1f}"
        )

    print("\nSpeedup / energy savings over the GPU")
    for report in (gscore, wo_cgf, full):
        print(
            f"  {report.name:<14}{report.speedup_over(gpu):>8.1f}x speedup, "
            f"{report.energy_saving_over(gpu):>7.1f}x energy"
        )
    print(
        f"\nSTREAMINGGS vs GSCore: {full.speedup_over(gscore):.2f}x speedup, "
        f"{full.energy_saving_over(gscore):.2f}x energy "
        f"(paper: 2.1x / 2.3x)"
    )


if __name__ == "__main__":
    main()
