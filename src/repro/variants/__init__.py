"""Base 3DGS algorithm variants evaluated in the paper (Table II, Fig. 11).

The paper layers its streaming pipeline on three base algorithms:

* original **3DGS** (the model as trained — identity transform here);
* **Mini-Splatting** — representing the scene with a constrained number of
  Gaussians via importance-based simplification;
* **LightGaussian** — global-significance pruning plus spherical-harmonics
  distillation.

Both compaction algorithms are re-implemented from their published
descriptions and operate on :class:`repro.gaussians.model.GaussianModel`.
"""

from repro.variants.base import BaseAlgorithm, get_algorithm, list_algorithms
from repro.variants.mini_splatting import MiniSplatting
from repro.variants.light_gaussian import LightGaussian

__all__ = [
    "BaseAlgorithm",
    "get_algorithm",
    "list_algorithms",
    "MiniSplatting",
    "LightGaussian",
]
