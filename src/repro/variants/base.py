"""Common interface for base 3DGS algorithm variants."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.projection import project_gaussians


class BaseAlgorithm:
    """A transformation from a trained 3DGS model to a variant model.

    Subclasses implement :meth:`transform`.  The identity subclass represents
    the original 3DGS pipeline (no compaction).
    """

    name = "3dgs"

    def transform(
        self, model: GaussianModel, cameras: Optional[Sequence[Camera]] = None
    ) -> GaussianModel:
        """Return the variant's model.  The default is the identity."""
        return model.copy()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


def gaussian_importance(
    model: GaussianModel, cameras: Sequence[Camera]
) -> np.ndarray:
    """Per-Gaussian importance score used by the compaction algorithms.

    The score approximates each Gaussian's total contribution to the
    rendered images: opacity times projected screen area, summed over the
    provided cameras, for Gaussians inside the view frustum.  This is the
    "global significance" criterion LightGaussian prunes on and a good proxy
    for Mini-Splatting's blend-weight importance without requiring a full
    per-pixel accumulation pass.
    """
    if not cameras:
        raise ValueError("at least one camera is required to score importance")
    scores = np.zeros(len(model), dtype=np.float64)
    for camera in cameras:
        projected = project_gaussians(model, camera, sh_degree=0)
        area = np.pi * np.square(projected.radii)
        contribution = projected.opacities * area
        scores += np.where(projected.valid, contribution, 0.0)
    return scores


_REGISTRY: Dict[str, BaseAlgorithm] = {}


def register_algorithm(algorithm: BaseAlgorithm) -> BaseAlgorithm:
    """Add an algorithm instance to the global registry."""
    _REGISTRY[algorithm.name] = algorithm
    return algorithm


def get_algorithm(name: str) -> BaseAlgorithm:
    """Look up a registered algorithm by name (``3dgs``, ``mini_splatting``, ...)."""
    # Imported lazily so the registry is populated without import cycles.
    from repro.variants import mini_splatting, light_gaussian  # noqa: F401

    if name not in _REGISTRY:
        raise KeyError(f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def list_algorithms() -> List[str]:
    """Names of all registered algorithms."""
    from repro.variants import mini_splatting, light_gaussian  # noqa: F401

    return sorted(_REGISTRY)


register_algorithm(BaseAlgorithm())
