"""LightGaussian: unbounded 3DGS compression via pruning and SH distillation.

LightGaussian (Fan et al., 2023) compresses a trained 3DGS model with three
mechanisms: (1) pruning Gaussians with low *global significance*, (2)
distilling the degree-3 spherical harmonics into a lower degree, and (3)
vectree quantisation of the remaining attributes.  The first two are
re-implemented here; the quantisation stage is subsumed by the paper's own
vector-quantised data layout (``repro.compression``), which STREAMINGGS
applies on top of every base algorithm.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.variants.base import BaseAlgorithm, gaussian_importance, register_algorithm


class LightGaussian(BaseAlgorithm):
    """Global-significance pruning plus SH distillation.

    Parameters
    ----------
    prune_fraction:
        Fraction of Gaussians removed (LightGaussian prunes ~66 % at its
        default setting; we default to 0.6).
    distill_sh_degree:
        Target SH degree after distillation (2 by default — the higher-order
        coefficients are zeroed, which is what reduces the per-Gaussian
        parameter payload).
    opacity_boost:
        Opacity compensation applied to survivors.
    """

    name = "light_gaussian"

    def __init__(
        self,
        prune_fraction: float = 0.6,
        distill_sh_degree: int = 2,
        opacity_boost: float = 1.08,
    ) -> None:
        if not 0.0 <= prune_fraction < 1.0:
            raise ValueError("prune_fraction must be in [0, 1)")
        if distill_sh_degree < 0 or distill_sh_degree > 3:
            raise ValueError("distill_sh_degree must be in [0, 3]")
        self.prune_fraction = prune_fraction
        self.distill_sh_degree = distill_sh_degree
        self.opacity_boost = opacity_boost

    def transform(
        self, model: GaussianModel, cameras: Optional[Sequence[Camera]] = None
    ) -> GaussianModel:
        """Prune low-significance Gaussians and distill SH coefficients."""
        n = len(model)
        keep = max(1, int(round((1.0 - self.prune_fraction) * n)))
        if cameras:
            scores = gaussian_importance(model, cameras)
        else:
            # Global significance without views: opacity x volume (the
            # LightGaussian criterion integrates the Gaussian's footprint
            # over all training views; volume is the view-free analogue).
            scores = model.opacities * np.prod(model.scales, axis=1)
        order = np.argsort(-np.asarray(scores, dtype=np.float64))
        kept_indices = np.sort(order[:keep])

        out = model.subset(kept_indices)
        out.opacities = np.clip(out.opacities * self.opacity_boost, 0.0, 0.99).astype(
            np.float32
        )
        # SH distillation: zero the coefficients above the target degree.
        # Degree d keeps (d+1)^2 - 1 of the 15 "rest" coefficients.
        keep_rest = (self.distill_sh_degree + 1) ** 2 - 1
        distilled = out.sh_rest.copy()
        distilled[:, keep_rest:, :] = 0.0
        out.sh_rest = distilled.astype(np.float32)
        return out


register_algorithm(LightGaussian())
