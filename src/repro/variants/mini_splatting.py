"""Mini-Splatting: representing scenes with a constrained number of Gaussians.

Mini-Splatting (Fang & Wang, 2024) reorganises the spatial distribution of
Gaussians and then *simplifies* the model by keeping only the Gaussians with
the highest rendering importance, compensating the lost opacity so overall
transmittance is preserved.  This re-implementation captures the
simplification stage — the part that matters for the paper's workload
characterisation (fewer, slightly larger Gaussians) and Table II.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.variants.base import BaseAlgorithm, gaussian_importance, register_algorithm


class MiniSplatting(BaseAlgorithm):
    """Importance-weighted stochastic simplification of the Gaussian cloud.

    Parameters
    ----------
    keep_fraction:
        Fraction of Gaussians retained after simplification (Mini-Splatting
        typically keeps 20-40 % of a densified model; the default 0.35
        matches the checkpoint-size ratios reported for the evaluated
        scenes).
    opacity_compensation:
        Factor applied to surviving Gaussians' opacity/scale to compensate
        for removed ones.
    deterministic_fraction:
        Fraction of the kept budget filled greedily with the top-importance
        Gaussians before stochastic sampling fills the rest (Mini-Splatting
        uses importance-weighted sampling rather than pure top-k to avoid
        spatial holes).
    seed:
        Seed of the stochastic sampling stage.
    """

    name = "mini_splatting"

    def __init__(
        self,
        keep_fraction: float = 0.35,
        opacity_compensation: float = 1.12,
        deterministic_fraction: float = 0.6,
        seed: int = 0,
    ) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        if not 0.0 <= deterministic_fraction <= 1.0:
            raise ValueError("deterministic_fraction must be in [0, 1]")
        self.keep_fraction = keep_fraction
        self.opacity_compensation = opacity_compensation
        self.deterministic_fraction = deterministic_fraction
        self.seed = seed

    def transform(
        self, model: GaussianModel, cameras: Optional[Sequence[Camera]] = None
    ) -> GaussianModel:
        """Simplify ``model`` to ``keep_fraction`` of its Gaussians."""
        n = len(model)
        keep = max(1, int(round(self.keep_fraction * n)))
        if keep >= n:
            return model.copy()
        if cameras:
            scores = gaussian_importance(model, cameras)
        else:
            # Without cameras fall back to a view-independent importance:
            # opacity times world-space cross-section.
            scores = model.opacities * np.square(model.max_scales)
        scores = np.asarray(scores, dtype=np.float64)
        scores = scores + 1e-12

        rng = np.random.default_rng(self.seed)
        n_top = int(round(self.deterministic_fraction * keep))
        order = np.argsort(-scores)
        top_indices = order[:n_top]
        remaining = order[n_top:]
        n_sampled = keep - n_top
        if n_sampled > 0 and len(remaining) > 0:
            probs = scores[remaining] / scores[remaining].sum()
            sampled = rng.choice(
                remaining, size=min(n_sampled, len(remaining)), replace=False, p=probs
            )
            kept_indices = np.concatenate([top_indices, sampled])
        else:
            kept_indices = top_indices
        kept_indices = np.sort(kept_indices)

        out = model.subset(kept_indices)
        # Opacity/scale compensation: surviving Gaussians must cover the
        # holes left by removed ones.
        out.opacities = np.clip(
            out.opacities * self.opacity_compensation, 0.0, 0.99
        ).astype(np.float32)
        out.scales = (out.scales * self.opacity_compensation ** 0.5).astype(np.float32)
        return out


register_algorithm(MiniSplatting())
