"""Real spherical harmonics used for view-dependent Gaussian colour.

3DGS stores appearance as SH coefficients up to degree 3 (16 basis
functions per colour channel: 1 DC + 15 higher order).  The constants below
are the standard real SH normalisation constants used by the original 3DGS
implementation.
"""

from __future__ import annotations

import numpy as np

# Degree-0
SH_C0 = 0.28209479177387814
# Degree-1
SH_C1 = 0.4886025119029199
# Degree-2
SH_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)
# Degree-3
SH_C3 = (
    -0.5900435899266435,
    2.890611442640554,
    -0.4570457994644658,
    0.3731763325901154,
    -0.4570457994644658,
    1.445305721320277,
    -0.5900435899266435,
)


def num_sh_coeffs(degree: int) -> int:
    """Number of SH basis functions for ``degree`` (0..3)."""
    if degree < 0 or degree > 3:
        raise ValueError(f"SH degree must be in [0, 3], got {degree}")
    return (degree + 1) ** 2


def sh_basis(directions: np.ndarray, degree: int = 3) -> np.ndarray:
    """Evaluate the real SH basis for unit ``directions``.

    Parameters
    ----------
    directions:
        ``(N, 3)`` unit view directions.
    degree:
        Maximum SH degree (0..3).

    Returns
    -------
    ``(N, (degree+1)**2)`` basis values.
    """
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim == 1:
        directions = directions[None, :]
    n = directions.shape[0]
    count = num_sh_coeffs(degree)
    basis = np.empty((n, count), dtype=np.float64)
    basis[:, 0] = SH_C0
    if degree == 0:
        return basis
    x, y, z = directions[:, 0], directions[:, 1], directions[:, 2]
    basis[:, 1] = -SH_C1 * y
    basis[:, 2] = SH_C1 * z
    basis[:, 3] = -SH_C1 * x
    if degree == 1:
        return basis
    xx, yy, zz = x * x, y * y, z * z
    xy, yz, xz = x * y, y * z, x * z
    basis[:, 4] = SH_C2[0] * xy
    basis[:, 5] = SH_C2[1] * yz
    basis[:, 6] = SH_C2[2] * (2.0 * zz - xx - yy)
    basis[:, 7] = SH_C2[3] * xz
    basis[:, 8] = SH_C2[4] * (xx - yy)
    if degree == 2:
        return basis
    basis[:, 9] = SH_C3[0] * y * (3.0 * xx - yy)
    basis[:, 10] = SH_C3[1] * xy * z
    basis[:, 11] = SH_C3[2] * y * (4.0 * zz - xx - yy)
    basis[:, 12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy)
    basis[:, 13] = SH_C3[4] * x * (4.0 * zz - xx - yy)
    basis[:, 14] = SH_C3[5] * z * (xx - yy)
    basis[:, 15] = SH_C3[6] * x * (xx - 3.0 * yy)
    return basis


def eval_sh(
    sh_dc: np.ndarray,
    sh_rest: np.ndarray,
    directions: np.ndarray,
    degree: int = 3,
) -> np.ndarray:
    """Evaluate view-dependent RGB colour from SH coefficients.

    Follows the 3DGS convention: the result is offset by ``+0.5`` and
    clamped at zero so fully-zero coefficients yield mid-grey.

    Parameters
    ----------
    sh_dc:
        ``(N, 3)`` DC coefficients.
    sh_rest:
        ``(N, 15, 3)`` higher-order coefficients (degrees 1..3).
    directions:
        ``(N, 3)`` unit view directions (Gaussian centre minus camera).
    degree:
        Maximum degree actually evaluated (0..3).  Lower degrees ignore the
        trailing ``sh_rest`` coefficients, which is how LightGaussian's SH
        distillation reduces bandwidth.

    Returns
    -------
    ``(N, 3)`` RGB colours clamped to ``[0, +inf)``.
    """
    sh_dc = np.asarray(sh_dc, dtype=np.float64)
    sh_rest = np.asarray(sh_rest, dtype=np.float64)
    basis = sh_basis(directions, degree=degree)
    colour = basis[:, 0:1] * sh_dc
    if degree > 0:
        n_rest = num_sh_coeffs(degree) - 1
        # basis columns 1..n_rest align with sh_rest coefficients 0..n_rest-1.
        colour = colour + np.einsum(
            "nk,nkc->nc", basis[:, 1 : 1 + n_rest], sh_rest[:, :n_rest, :]
        )
    colour = colour + 0.5
    return np.clip(colour, 0.0, None)


def rgb_to_sh_dc(rgb: np.ndarray) -> np.ndarray:
    """Convert target RGB in ``[0, 1]`` to DC SH coefficients."""
    rgb = np.asarray(rgb, dtype=np.float64)
    return (rgb - 0.5) / SH_C0


def sh_dc_to_rgb(sh_dc: np.ndarray) -> np.ndarray:
    """Convert DC SH coefficients back to base RGB (view-independent part)."""
    sh_dc = np.asarray(sh_dc, dtype=np.float64)
    return np.clip(sh_dc * SH_C0 + 0.5, 0.0, 1.0)
