"""Image-quality metrics used by the evaluation (PSNR, SSIM).

The paper reports PSNR (Table II, Fig. 7, Fig. 12); SSIM is provided as well
because the base 3DGS training loss combines L1 with D-SSIM and our
surrogate fine-tuning objective reuses it.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter


def mse(image_a: np.ndarray, image_b: np.ndarray) -> float:
    """Mean squared error between two images (any matching shape)."""
    image_a = np.asarray(image_a, dtype=np.float64)
    image_b = np.asarray(image_b, dtype=np.float64)
    if image_a.shape != image_b.shape:
        raise ValueError(f"shape mismatch: {image_a.shape} vs {image_b.shape}")
    return float(np.mean((image_a - image_b) ** 2))


def psnr(image_a: np.ndarray, image_b: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB.

    Returns ``inf`` for identical images (zero MSE).
    """
    err = mse(image_a, image_b)
    if err <= 0.0:
        return float("inf")
    return float(10.0 * np.log10((data_range ** 2) / err))


def ssim(
    image_a: np.ndarray,
    image_b: np.ndarray,
    data_range: float = 1.0,
    window: int = 7,
) -> float:
    """Structural similarity index (mean over pixels and channels).

    A uniform-window SSIM; adequate for the loss surrogate and for sanity
    checks — the paper's quantitative tables only use PSNR.
    """
    image_a = np.asarray(image_a, dtype=np.float64)
    image_b = np.asarray(image_b, dtype=np.float64)
    if image_a.shape != image_b.shape:
        raise ValueError(f"shape mismatch: {image_a.shape} vs {image_b.shape}")
    if image_a.ndim == 2:
        image_a = image_a[..., None]
        image_b = image_b[..., None]
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    ssim_maps = []
    for ch in range(image_a.shape[2]):
        a = image_a[..., ch]
        b = image_b[..., ch]
        mu_a = uniform_filter(a, size=window)
        mu_b = uniform_filter(b, size=window)
        sigma_a = uniform_filter(a * a, size=window) - mu_a ** 2
        sigma_b = uniform_filter(b * b, size=window) - mu_b ** 2
        sigma_ab = uniform_filter(a * b, size=window) - mu_a * mu_b
        numerator = (2 * mu_a * mu_b + c1) * (2 * sigma_ab + c2)
        denominator = (mu_a ** 2 + mu_b ** 2 + c1) * (sigma_a + sigma_b + c2)
        ssim_maps.append(numerator / np.clip(denominator, 1e-12, None))
    return float(np.mean(ssim_maps))


def dssim(image_a: np.ndarray, image_b: np.ndarray, data_range: float = 1.0) -> float:
    """Structural dissimilarity ``(1 - SSIM) / 2`` used in the 3DGS loss."""
    return (1.0 - ssim(image_a, image_b, data_range=data_range)) / 2.0
