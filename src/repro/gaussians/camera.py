"""Pinhole cameras and camera trajectories.

The renderers (both the tile-centric reference and the streaming pipeline)
consume :class:`Camera` objects; the trajectory helpers generate the test
views used by the experiment harness (the paper evaluates held-out views of
each scene).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


def look_at(
    eye: np.ndarray, target: np.ndarray, up: np.ndarray = (0.0, 0.0, 1.0)
) -> np.ndarray:
    """World-to-camera rotation matrix for a camera at ``eye`` looking at ``target``.

    Returns a ``(3, 3)`` rotation whose rows are the camera's right, down and
    forward axes expressed in world coordinates (OpenCV convention: +z is the
    viewing direction, +y is down in the image).
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    up = np.asarray(up, dtype=np.float64)
    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ValueError("eye and target coincide; cannot build a view")
    forward = forward / norm
    right = np.cross(forward, up)
    right_norm = np.linalg.norm(right)
    if right_norm < 1e-12:
        # Viewing direction parallel to up: pick an arbitrary perpendicular.
        right = np.cross(forward, np.array([1.0, 0.0, 0.0]))
        right_norm = np.linalg.norm(right)
        if right_norm < 1e-12:
            right = np.cross(forward, np.array([0.0, 1.0, 0.0]))
            right_norm = np.linalg.norm(right)
    right = right / right_norm
    down = np.cross(forward, right)
    return np.stack([right, down, forward], axis=0)


@dataclass
class Camera:
    """A pinhole camera.

    Attributes
    ----------
    rotation:
        ``(3, 3)`` world-to-camera rotation (rows = camera axes).
    translation:
        ``(3,)`` camera centre in world coordinates.
    width, height:
        Image resolution in pixels.
    fx, fy:
        Focal lengths in pixels.
    near, far:
        Clipping planes along the viewing direction.
    """

    rotation: np.ndarray
    translation: np.ndarray
    width: int
    height: int
    fx: float
    fy: float
    near: float = 0.05
    far: float = 1000.0

    def __post_init__(self) -> None:
        self.rotation = np.asarray(self.rotation, dtype=np.float64).reshape(3, 3)
        self.translation = np.asarray(self.translation, dtype=np.float64).reshape(3)
        if self.width <= 0 or self.height <= 0:
            raise ValueError("camera resolution must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValueError("focal lengths must be positive")
        if not (0 < self.near < self.far):
            raise ValueError("require 0 < near < far")

    # ------------------------------------------------------------------
    @classmethod
    def from_lookat(
        cls,
        eye,
        target,
        width: int,
        height: int,
        fov_deg: float = 60.0,
        up=(0.0, 0.0, 1.0),
        near: float = 0.05,
        far: float = 1000.0,
    ) -> "Camera":
        """Build a camera from eye/target points and a horizontal field of view."""
        rotation = look_at(eye, target, up)
        fov = np.deg2rad(fov_deg)
        fx = width / (2.0 * np.tan(fov / 2.0))
        fy = fx
        return cls(
            rotation=rotation,
            translation=np.asarray(eye, dtype=np.float64),
            width=width,
            height=height,
            fx=fx,
            fy=fy,
            near=near,
            far=far,
        )

    # ------------------------------------------------------------------
    def pose_key(self) -> tuple:
        """Hashable fingerprint of the camera's pose and intrinsics.

        Two cameras with equal pose keys render identical view geometry;
        the engine's frame-preparation cache is keyed by it.
        """
        return (
            self.rotation.tobytes(),
            self.translation.tobytes(),
            self.width,
            self.height,
            float(self.fx),
            float(self.fy),
            float(self.near),
            float(self.far),
        )

    # ------------------------------------------------------------------
    @property
    def cx(self) -> float:
        """Principal point x (image centre)."""
        return self.width / 2.0

    @property
    def cy(self) -> float:
        """Principal point y (image centre)."""
        return self.height / 2.0

    @property
    def num_pixels(self) -> int:
        """Total pixel count of the image."""
        return self.width * self.height

    @property
    def position(self) -> np.ndarray:
        """Camera centre in world coordinates (alias of ``translation``)."""
        return self.translation

    def world_to_camera(self, points: np.ndarray) -> np.ndarray:
        """Transform ``(N, 3)`` world points into camera coordinates."""
        points = np.asarray(points, dtype=np.float64)
        return (points - self.translation) @ self.rotation.T

    def project(self, points: np.ndarray) -> tuple:
        """Project ``(N, 3)`` world points to pixel coordinates.

        Returns
        -------
        (pixels, depths):
            ``(N, 2)`` pixel coordinates and ``(N,)`` camera-space depths.
            Points behind the camera receive negative depths; callers are
            expected to cull them.
        """
        cam = self.world_to_camera(points)
        depths = cam[:, 2]
        safe_z = np.where(np.abs(depths) < 1e-9, 1e-9, depths)
        px = self.fx * cam[:, 0] / safe_z + self.cx
        py = self.fy * cam[:, 1] / safe_z + self.cy
        return np.stack([px, py], axis=1), depths

    def pixel_rays(self, pixels_x: np.ndarray, pixels_y: np.ndarray) -> tuple:
        """Rays through pixel centres.

        Parameters
        ----------
        pixels_x, pixels_y:
            Arrays of pixel coordinates (may be non-integer).

        Returns
        -------
        (origins, directions):
            ``(N, 3)`` ray origins (all the camera centre) and unit
            direction vectors in world space.
        """
        pixels_x = np.asarray(pixels_x, dtype=np.float64).reshape(-1)
        pixels_y = np.asarray(pixels_y, dtype=np.float64).reshape(-1)
        dirs_cam = np.stack(
            [
                (pixels_x + 0.5 - self.cx) / self.fx,
                (pixels_y + 0.5 - self.cy) / self.fy,
                np.ones_like(pixels_x),
            ],
            axis=1,
        )
        dirs_world = dirs_cam @ self.rotation
        dirs_world = dirs_world / np.linalg.norm(dirs_world, axis=1, keepdims=True)
        origins = np.tile(self.translation, (len(pixels_x), 1))
        return origins, dirs_world

    def view_directions(self, points: np.ndarray) -> np.ndarray:
        """Unit directions from the camera centre towards ``(N, 3)`` world points."""
        points = np.asarray(points, dtype=np.float64)
        dirs = points - self.translation
        norms = np.linalg.norm(dirs, axis=1, keepdims=True)
        norms = np.where(norms < 1e-12, 1.0, norms)
        return dirs / norms

    def scaled(self, factor: float) -> "Camera":
        """A copy with the image resolution (and focal lengths) scaled by ``factor``."""
        return Camera(
            rotation=self.rotation.copy(),
            translation=self.translation.copy(),
            width=max(1, int(round(self.width * factor))),
            height=max(1, int(round(self.height * factor))),
            fx=self.fx * factor,
            fy=self.fy * factor,
            near=self.near,
            far=self.far,
        )


def orbit_trajectory(
    center,
    radius: float,
    num_views: int,
    width: int,
    height: int,
    fov_deg: float = 60.0,
    elevation_deg: float = 25.0,
    arc_deg: float = 360.0,
) -> List[Camera]:
    """Cameras on a circular orbit (or arc) around ``center``.

    This is the trajectory used to generate held-out test views of the
    procedural scenes (stand-in for the datasets' test splits).  With the
    default full-circle arc the views are spread over the whole orbit; a
    smaller ``arc_deg`` produces the closely spaced poses of a smooth
    camera pan, the bread-and-butter workload of the temporal-coherence
    fast path.
    """
    center = np.asarray(center, dtype=np.float64)
    elevation = np.deg2rad(elevation_deg)
    full_circle = abs(arc_deg - 360.0) < 1e-9
    cameras = []
    for i in range(num_views):
        # A full circle must not duplicate the closing pose; an open arc
        # should include both endpoints.  The full-circle expression is
        # kept bit-identical to the historical one (pose keys feed caches
        # and golden statistics).
        if full_circle or num_views <= 1:
            azimuth = 2.0 * np.pi * i / max(num_views, 1)
        else:
            azimuth = np.deg2rad(arc_deg) * i / (num_views - 1)
        eye = center + radius * np.array(
            [
                np.cos(azimuth) * np.cos(elevation),
                np.sin(azimuth) * np.cos(elevation),
                np.sin(elevation),
            ]
        )
        cameras.append(
            Camera.from_lookat(
                eye=eye,
                target=center,
                width=width,
                height=height,
                fov_deg=fov_deg,
            )
        )
    return cameras


def walkthrough_trajectory(
    start,
    end,
    num_views: int,
    width: int,
    height: int,
    fov_deg: float = 60.0,
    look_ahead: float = 1.0,
) -> List[Camera]:
    """Cameras walking a straight line, looking along the direction of travel.

    A stand-in for the hand-held walkthrough captures of the real-world
    datasets: the eye moves from ``start`` to ``end`` and each view looks
    ``look_ahead`` times the remaining path length past the current
    position, so consecutive poses differ by a small translation and an
    even smaller rotation.
    """
    start = np.asarray(start, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    direction = end - start
    if np.linalg.norm(direction) < 1e-12:
        raise ValueError("walkthrough start and end coincide")
    cameras = []
    for i in range(num_views):
        t = i / max(num_views - 1, 1)
        eye = start + t * direction
        target = eye + look_ahead * direction
        cameras.append(
            Camera.from_lookat(
                eye=eye, target=target, width=width, height=height, fov_deg=fov_deg
            )
        )
    return cameras


def dolly_trajectory(
    center,
    start_radius: float,
    end_radius: float,
    num_views: int,
    width: int,
    height: int,
    fov_deg: float = 60.0,
    elevation_deg: float = 25.0,
    azimuth_deg: float = 0.0,
) -> List[Camera]:
    """Cameras dollying towards (or away from) ``center`` along a fixed bearing.

    The eye slides between ``start_radius`` and ``end_radius`` on the ray
    defined by ``azimuth_deg``/``elevation_deg`` while always looking at
    ``center`` — pure translation along the viewing axis, the classic
    dolly shot.
    """
    if start_radius <= 0 or end_radius <= 0:
        raise ValueError("dolly radii must be positive")
    center = np.asarray(center, dtype=np.float64)
    elevation = np.deg2rad(elevation_deg)
    azimuth = np.deg2rad(azimuth_deg)
    bearing = np.array(
        [
            np.cos(azimuth) * np.cos(elevation),
            np.sin(azimuth) * np.cos(elevation),
            np.sin(elevation),
        ]
    )
    cameras = []
    for i in range(num_views):
        t = i / max(num_views - 1, 1)
        radius = start_radius + t * (end_radius - start_radius)
        cameras.append(
            Camera.from_lookat(
                eye=center + radius * bearing,
                target=center,
                width=width,
                height=height,
                fov_deg=fov_deg,
            )
        )
    return cameras


def pose_delta(a: Camera, b: Camera) -> tuple:
    """Pose difference between two cameras.

    Returns
    -------
    (rotation_deg, translation):
        Geodesic rotation angle in degrees and Euclidean distance between
        the camera centres.  The temporal-coherence path uses this to
        detect teleports (pose jumps too large for carried state to be
        worth revalidating).
    """
    relative = a.rotation @ b.rotation.T
    cos_angle = np.clip((np.trace(relative) - 1.0) / 2.0, -1.0, 1.0)
    rotation_deg = float(np.rad2deg(np.arccos(cos_angle)))
    translation = float(np.linalg.norm(a.translation - b.translation))
    return rotation_deg, translation
