"""Gaussian parameter model.

The paper's accounting (Sec. II-B) counts 59 parameters per Gaussian:

* 3   — 3D position ``(x, y, z)``
* 3   — anisotropic scale ``(sx, sy, sz)``
* 4   — rotation quaternion ``(w, x, y, z)``
* 1   — opacity
* 3   — DC (zeroth-order spherical-harmonics) colour
* 45  — higher-order spherical-harmonics coefficients (15 per channel,
  degrees 1..3)

The first four of these (position + maximum scale) form the "first half"
used by the coarse-grained filter; everything else is the "second half"
compressed with vector quantization in the customized data layout
(Sec. III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Total number of scalar parameters per Gaussian, matching the paper.
PARAMS_PER_GAUSSIAN = 59

#: Parameters fetched by the coarse-grained filter (x, y, z, max scale).
COARSE_PARAMS_PER_GAUSSIAN = 4

#: Parameters only needed after a Gaussian passes the coarse filter.
FINE_PARAMS_PER_GAUSSIAN = PARAMS_PER_GAUSSIAN - COARSE_PARAMS_PER_GAUSSIAN

#: Number of higher-order SH coefficients per colour channel (degrees 1..3).
SH_REST_COEFFS = 15


def _as_float32(array: np.ndarray, name: str, shape_suffix: tuple) -> np.ndarray:
    arr = np.asarray(array, dtype=np.float32)
    if arr.ndim < 1 or arr.shape[1:] != shape_suffix:
        raise ValueError(
            f"{name} must have shape (N, {', '.join(map(str, shape_suffix))}), "
            f"got {arr.shape}"
        )
    return arr


@dataclass
class GaussianModel:
    """A scene represented as a cloud of anisotropic 3D Gaussians.

    All arrays share the leading dimension ``N`` (number of Gaussians) and
    are stored as ``float32`` — the same precision the accelerator's DRAM
    layout assumes when counting bytes.

    Attributes
    ----------
    positions:
        ``(N, 3)`` Gaussian centres in world space.
    scales:
        ``(N, 3)`` per-axis standard deviations (always positive).
    rotations:
        ``(N, 4)`` unit quaternions ``(w, x, y, z)``.
    opacities:
        ``(N,)`` opacity in ``[0, 1]``.
    sh_dc:
        ``(N, 3)`` zeroth-order SH (DC) colour coefficients.
    sh_rest:
        ``(N, 15, 3)`` SH coefficients for degrees 1..3.
    """

    positions: np.ndarray
    scales: np.ndarray
    rotations: np.ndarray
    opacities: np.ndarray
    sh_dc: np.ndarray
    sh_rest: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.positions = _as_float32(self.positions, "positions", (3,))
        self.scales = _as_float32(self.scales, "scales", (3,))
        self.rotations = _as_float32(self.rotations, "rotations", (4,))
        self.opacities = np.asarray(self.opacities, dtype=np.float32).reshape(-1)
        self.sh_dc = _as_float32(self.sh_dc, "sh_dc", (3,))
        if self.sh_rest is None:
            self.sh_rest = np.zeros(
                (len(self.positions), SH_REST_COEFFS, 3), dtype=np.float32
            )
        else:
            self.sh_rest = np.asarray(self.sh_rest, dtype=np.float32)
            if self.sh_rest.shape != (len(self.positions), SH_REST_COEFFS, 3):
                raise ValueError(
                    "sh_rest must have shape (N, 15, 3), got "
                    f"{self.sh_rest.shape}"
                )
        n = len(self.positions)
        for name in ("scales", "rotations", "opacities", "sh_dc"):
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"{name} has {len(getattr(self, name))} rows, expected {n}"
                )
        if np.any(self.scales <= 0):
            raise ValueError("scales must be strictly positive")
        self.normalize_rotations()

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.positions.shape[0])

    @property
    def num_gaussians(self) -> int:
        """Number of Gaussians in the model."""
        return len(self)

    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count (``59 * N``)."""
        return PARAMS_PER_GAUSSIAN * len(self)

    @property
    def max_scales(self) -> np.ndarray:
        """``(N,)`` maximum per-Gaussian scale — the 4th coarse-filter param."""
        return self.scales.max(axis=1)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "GaussianModel":
        """An empty model with zero Gaussians."""
        return cls(
            positions=np.zeros((0, 3), dtype=np.float32),
            scales=np.ones((0, 3), dtype=np.float32),
            rotations=np.tile(
                np.array([[1.0, 0.0, 0.0, 0.0]], dtype=np.float32), (0, 1)
            ).reshape(0, 4),
            opacities=np.zeros((0,), dtype=np.float32),
            sh_dc=np.zeros((0, 3), dtype=np.float32),
            sh_rest=np.zeros((0, SH_REST_COEFFS, 3), dtype=np.float32),
        )

    def copy(self) -> "GaussianModel":
        """Deep copy of the model."""
        return GaussianModel(
            positions=self.positions.copy(),
            scales=self.scales.copy(),
            rotations=self.rotations.copy(),
            opacities=self.opacities.copy(),
            sh_dc=self.sh_dc.copy(),
            sh_rest=self.sh_rest.copy(),
        )

    def content_fingerprint(self) -> str:
        """Digest of all parameter arrays.

        Two models with equal fingerprints render identically; in-place
        parameter edits change the fingerprint.  The engine's
        :class:`~repro.engine.service.RenderService` keys its shared
        renderers by it, so mutate-then-rerender callers always get a
        renderer built from the current parameters.
        """
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        for array in (
            self.positions,
            self.scales,
            self.rotations,
            self.opacities,
            self.sh_dc,
            self.sh_rest,
        ):
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    def subset(self, indices: np.ndarray) -> "GaussianModel":
        """A new model containing only the Gaussians at ``indices``."""
        indices = np.asarray(indices)
        return GaussianModel(
            positions=self.positions[indices],
            scales=self.scales[indices],
            rotations=self.rotations[indices],
            opacities=self.opacities[indices],
            sh_dc=self.sh_dc[indices],
            sh_rest=self.sh_rest[indices],
        )

    def concatenate(self, other: "GaussianModel") -> "GaussianModel":
        """A new model containing this model's Gaussians followed by ``other``'s."""
        return GaussianModel(
            positions=np.concatenate([self.positions, other.positions]),
            scales=np.concatenate([self.scales, other.scales]),
            rotations=np.concatenate([self.rotations, other.rotations]),
            opacities=np.concatenate([self.opacities, other.opacities]),
            sh_dc=np.concatenate([self.sh_dc, other.sh_dc]),
            sh_rest=np.concatenate([self.sh_rest, other.sh_rest]),
        )

    def normalize_rotations(self) -> None:
        """Re-normalise quaternions in place (guards against drift)."""
        norms = np.linalg.norm(self.rotations, axis=1, keepdims=True)
        norms = np.where(norms < 1e-12, 1.0, norms)
        self.rotations = (self.rotations / norms).astype(np.float32)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def bounding_box(self, padding: float = 0.0) -> tuple:
        """Axis-aligned bounding box ``(min_xyz, max_xyz)`` of the centres.

        Parameters
        ----------
        padding:
            Extra margin (in world units) added on every side — useful when
            the voxel grid must also contain the Gaussian extents, not just
            their centres.
        """
        if len(self) == 0:
            zero = np.zeros(3, dtype=np.float32)
            return zero, zero
        lo = self.positions.min(axis=0) - padding
        hi = self.positions.max(axis=0) + padding
        return lo.astype(np.float32), hi.astype(np.float32)

    def scene_extent(self) -> float:
        """Diagonal length of the bounding box (scene scale proxy)."""
        lo, hi = self.bounding_box()
        return float(np.linalg.norm(hi - lo))

    # ------------------------------------------------------------------
    # Flattened parameter views (used by the data-layout byte accounting)
    # ------------------------------------------------------------------
    def first_half(self) -> np.ndarray:
        """``(N, 4)`` uncompressed coarse-filter parameters: xyz + max scale."""
        return np.concatenate(
            [self.positions, self.max_scales[:, None]], axis=1
        ).astype(np.float32)

    def second_half(self) -> np.ndarray:
        """``(N, 55)`` fine-filter parameters (everything but xyz + max scale).

        The maximum scale already lives in the first half, so only the two
        remaining scale components are stored here (matching the paper's
        accounting of 4 + 55 = 59 parameters).
        """
        n = len(self)
        if n == 0:
            residual_scales = np.zeros((0, 2), dtype=np.float32)
        else:
            order = np.argsort(self.scales, axis=1)
            rows = np.arange(n)[:, None]
            # The two smallest components (the largest is in the first half).
            residual_scales = self.scales[rows, order[:, :2]]
        return np.concatenate(
            [
                residual_scales,
                self.rotations,
                self.opacities[:, None],
                self.sh_dc,
                self.sh_rest.reshape(len(self), -1),
            ],
            axis=1,
        ).astype(np.float32)

    def flat_parameters(self) -> np.ndarray:
        """``(N, 59)`` full parameter matrix (first half followed by second half)."""
        return np.concatenate([self.first_half(), self.second_half()], axis=1)


@dataclass
class ModelStatistics:
    """Summary statistics of a Gaussian model (used by scene calibration)."""

    num_gaussians: int
    mean_scale: float
    mean_opacity: float
    extent: float
    parameter_bytes: int = field(default=0)

    @classmethod
    def from_model(cls, model: GaussianModel) -> "ModelStatistics":
        """Compute statistics for ``model``."""
        return cls(
            num_gaussians=len(model),
            mean_scale=float(model.scales.mean()) if len(model) else 0.0,
            mean_opacity=float(model.opacities.mean()) if len(model) else 0.0,
            extent=model.scene_extent(),
            parameter_bytes=model.num_parameters * 4,
        )
