"""EWA splatting projection of 3D Gaussians onto the image plane.

This is the "Projection" stage of the 3DGS pipeline (Fig. 2): each Gaussian
ellipsoid is transformed to camera space, its 3D covariance is built from
scale and rotation, projected through the local affine (Jacobian)
approximation of the perspective projection, and the resulting 2D covariance
is inverted into a *conic* used by the rasterizer.  The stage also evaluates
view-dependent colour from the SH coefficients and the screen-space radius
used for tile binning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.sh import eval_sh

#: The rasterizer considers a Gaussian out to 3 standard deviations.
RADIUS_SIGMA_CUTOFF = 3.0

#: Small diagonal term added to the 2D covariance (anti-aliasing blur, as in
#: the reference 3DGS implementation).
COV2D_DILATION = 0.3


def quaternion_to_rotation_matrix(quaternions: np.ndarray) -> np.ndarray:
    """Convert ``(N, 4)`` quaternions ``(w, x, y, z)`` to ``(N, 3, 3)`` rotations."""
    q = np.asarray(quaternions, dtype=np.float64)
    if q.ndim == 1:
        q = q[None, :]
    norms = np.linalg.norm(q, axis=1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    q = q / norms
    w, x, y, z = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
    rot = np.empty((len(q), 3, 3), dtype=np.float64)
    rot[:, 0, 0] = 1 - 2 * (y * y + z * z)
    rot[:, 0, 1] = 2 * (x * y - w * z)
    rot[:, 0, 2] = 2 * (x * z + w * y)
    rot[:, 1, 0] = 2 * (x * y + w * z)
    rot[:, 1, 1] = 1 - 2 * (x * x + z * z)
    rot[:, 1, 2] = 2 * (y * z - w * x)
    rot[:, 2, 0] = 2 * (x * z - w * y)
    rot[:, 2, 1] = 2 * (y * z + w * x)
    rot[:, 2, 2] = 1 - 2 * (x * x + y * y)
    return rot


def build_covariance_3d(scales: np.ndarray, rotations: np.ndarray) -> np.ndarray:
    """Build ``(N, 3, 3)`` world-space covariances ``R S S^T R^T``."""
    scales = np.asarray(scales, dtype=np.float64)
    rot = quaternion_to_rotation_matrix(rotations)
    # M = R @ diag(s); cov = M @ M^T
    m = rot * scales[:, None, :]
    return m @ np.transpose(m, (0, 2, 1))


@dataclass
class ProjectedGaussians:
    """Per-Gaussian screen-space quantities produced by the projection stage.

    All arrays have length ``N`` (the number of Gaussians in the input model)
    and are only meaningful where ``valid`` is True.
    """

    means2d: np.ndarray        # (N, 2) projected centres in pixels
    depths: np.ndarray         # (N,) camera-space depth
    conics: np.ndarray         # (N, 3) upper-triangular inverse 2D covariance (a, b, c)
    radii: np.ndarray          # (N,) screen-space radius in pixels
    colors: np.ndarray         # (N, 3) view-dependent RGB
    opacities: np.ndarray      # (N,) opacity
    valid: np.ndarray          # (N,) bool — in front of camera & non-degenerate

    def __len__(self) -> int:
        return int(self.means2d.shape[0])

    @property
    def num_valid(self) -> int:
        """Number of Gaussians that survive frustum/degeneracy culling."""
        return int(np.count_nonzero(self.valid))


def project_covariance_2d(
    cov3d: np.ndarray,
    means_cam: np.ndarray,
    camera: Camera,
) -> np.ndarray:
    """Project ``(N, 3, 3)`` camera-space covariances to ``(N, 2, 2)`` image space.

    Uses the local affine approximation ``cov2d = J cov3d J^T`` where ``J`` is
    the Jacobian of the perspective projection evaluated at each Gaussian's
    camera-space centre (clamped to the view frustum as in the reference
    implementation).
    """
    n = len(means_cam)
    tz = means_cam[:, 2]
    safe_tz = np.where(np.abs(tz) < 1e-9, 1e-9, tz)
    # Clamp x/z and y/z to stay within ~1.3x the frustum (numerical stability).
    tan_fovx = camera.width / (2.0 * camera.fx)
    tan_fovy = camera.height / (2.0 * camera.fy)
    lim_x = 1.3 * tan_fovx
    lim_y = 1.3 * tan_fovy
    tx = np.clip(means_cam[:, 0] / safe_tz, -lim_x, lim_x) * safe_tz
    ty = np.clip(means_cam[:, 1] / safe_tz, -lim_y, lim_y) * safe_tz

    jac = np.zeros((n, 2, 3), dtype=np.float64)
    jac[:, 0, 0] = camera.fx / safe_tz
    jac[:, 0, 2] = -camera.fx * tx / (safe_tz * safe_tz)
    jac[:, 1, 1] = camera.fy / safe_tz
    jac[:, 1, 2] = -camera.fy * ty / (safe_tz * safe_tz)
    cov2d = jac @ cov3d @ np.transpose(jac, (0, 2, 1))
    cov2d[:, 0, 0] += COV2D_DILATION
    cov2d[:, 1, 1] += COV2D_DILATION
    return cov2d


def project_gaussians(
    model: GaussianModel,
    camera: Camera,
    sh_degree: int = 3,
    indices: Optional[np.ndarray] = None,
) -> ProjectedGaussians:
    """Run the full projection stage for ``model`` under ``camera``.

    Parameters
    ----------
    model:
        The Gaussian scene.
    camera:
        The viewing camera.
    sh_degree:
        Maximum SH degree used for view-dependent colour.
    indices:
        Optional subset of Gaussian indices to project (used by the
        streaming pipeline, which projects one voxel's worth at a time).

    Returns
    -------
    :class:`ProjectedGaussians` with one row per projected Gaussian (in the
    order of ``indices`` if given, otherwise model order).
    """
    if indices is not None:
        sub = model.subset(indices)
    else:
        sub = model
    n = len(sub)
    if n == 0:
        empty2 = np.zeros((0, 2))
        empty1 = np.zeros((0,))
        return ProjectedGaussians(
            means2d=empty2,
            depths=empty1,
            conics=np.zeros((0, 3)),
            radii=empty1,
            colors=np.zeros((0, 3)),
            opacities=empty1,
            valid=np.zeros((0,), dtype=bool),
        )

    means_cam = camera.world_to_camera(sub.positions)
    depths = means_cam[:, 2]
    in_front = depths > camera.near

    means2d, _ = camera.project(sub.positions)

    cov3d_world = build_covariance_3d(sub.scales, sub.rotations)
    # Rotate covariance into camera space: W cov W^T with W the view rotation.
    w = camera.rotation
    cov3d_cam = np.einsum("ij,njk,lk->nil", w, cov3d_world, w)
    cov2d = project_covariance_2d(cov3d_cam, means_cam, camera)

    a = cov2d[:, 0, 0]
    b = cov2d[:, 0, 1]
    c = cov2d[:, 1, 1]
    det = a * c - b * b
    non_degenerate = det > 1e-12
    safe_det = np.where(non_degenerate, det, 1.0)
    conics = np.stack([c / safe_det, -b / safe_det, a / safe_det], axis=1)

    # Screen-space radius: 3 sigma of the major eigenvalue of cov2d.
    mid = 0.5 * (a + c)
    disc = np.sqrt(np.clip(mid * mid - det, 0.0, None))
    lambda1 = mid + disc
    radii = np.ceil(RADIUS_SIGMA_CUTOFF * np.sqrt(np.clip(lambda1, 0.0, None)))

    view_dirs = camera.view_directions(sub.positions)
    colors = eval_sh(sub.sh_dc, sub.sh_rest, view_dirs, degree=sh_degree)

    valid = in_front & non_degenerate & (radii > 0)

    return ProjectedGaussians(
        means2d=means2d,
        depths=depths,
        conics=conics,
        radii=radii.astype(np.float64),
        colors=colors,
        opacities=sub.opacities.astype(np.float64),
        valid=valid,
    )


def coarse_project_centers(
    positions: np.ndarray,
    max_scales: np.ndarray,
    camera: Camera,
) -> tuple:
    """Lightweight projection used by the coarse-grained filter (Sec. III-B).

    Only the Gaussian centre and its maximum scale are used: the centre is
    projected exactly, and the screen-space footprint is over-approximated by
    an isotropic radius derived from the maximum world-space scale.  The
    over-approximation guarantees the coarse filter never rejects a Gaussian
    the precise (fine-grained) test would accept.

    Returns
    -------
    (means2d, depths, coarse_radii):
        Projected pixel centres, camera-space depths and conservative pixel
        radii.
    """
    positions = np.asarray(positions, dtype=np.float64)
    max_scales = np.asarray(max_scales, dtype=np.float64).reshape(-1)
    cam = (positions - camera.translation) @ camera.rotation.T
    depths = cam[:, 2]
    safe_z = np.where(np.abs(depths) < 1e-9, 1e-9, depths)
    px = camera.fx * cam[:, 0] / safe_z + camera.cx
    py = camera.fy * cam[:, 1] / safe_z + camera.cy
    focal = max(camera.fx, camera.fy)
    # Conservative isotropic radius: 3 sigma of the max scale, projected at
    # the Gaussian's depth, inflated by the largest possible singular value
    # of the perspective Jacobian inside the (clamped) frustum so the coarse
    # radius is a strict over-approximation of the fine-grained radius, plus
    # the anti-aliasing dilation the fine pass adds.
    lim_x = 1.3 * camera.width / (2.0 * camera.fx)
    lim_y = 1.3 * camera.height / (2.0 * camera.fy)
    jacobian_bound = np.sqrt(1.0 + lim_x ** 2 + lim_y ** 2)
    dilation_px = np.sqrt(COV2D_DILATION) * RADIUS_SIGMA_CUTOFF
    coarse_radii = (
        np.ceil(
            RADIUS_SIGMA_CUTOFF
            * jacobian_bound
            * focal
            * max_scales
            / np.clip(np.abs(safe_z), 1e-9, None)
        )
        + np.ceil(dilation_px)
        + 1.0
    )
    return np.stack([px, py], axis=1), depths, coarse_radii
