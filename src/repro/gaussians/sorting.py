"""Depth sorting for the tile-centric pipeline.

The "Sorting" stage of the reference 3DGS pipeline orders every tile's
duplicated Gaussian list front-to-back.  On GPUs this is realised as one
global radix sort over (tile id | depth) keys; the repeated passes over that
key/value array are what makes sorting the largest DRAM-traffic contributor
in the paper's characterization (49 % of traffic, Sec. II-B).

This module provides both the functional sort used by the reference
rasterizer and the operation/traffic statistics the architecture model
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.gaussians.projection import ProjectedGaussians
from repro.gaussians.tiles import TileBinning

#: Bytes per sort key/value pair: 64-bit key (tile id | quantised depth) plus
#: a 32-bit Gaussian index, as in the reference implementation.
SORT_PAIR_BYTES = 12

#: Number of radix passes a GPU radix sort performs over the key array
#: (8 bits per pass over a 64-bit key dominated by its populated bits).
RADIX_SORT_PASSES = 4


@dataclass
class GlobalSortStats:
    """Operation counts of the tile-centric global sort (for the traffic model)."""

    num_pairs: int
    key_bytes_read: int
    key_bytes_written: int
    comparisons: int

    @property
    def total_bytes(self) -> int:
        """Total DRAM bytes moved by the sort."""
        return self.key_bytes_read + self.key_bytes_written


def sort_tile_gaussians(
    projected: ProjectedGaussians, binning: TileBinning
) -> Dict[int, np.ndarray]:
    """Sort each tile's Gaussian list front-to-back by camera-space depth.

    Returns a mapping from tile id to the depth-sorted index array.  The sort
    is stable so Gaussians at identical depth keep their submission order,
    matching the behaviour of the reference implementation's radix sort on
    quantised depth keys.
    """
    sorted_lists: Dict[int, np.ndarray] = {}
    for tile_id, indices in binning.tile_lists.items():
        if len(indices) == 0:
            sorted_lists[tile_id] = indices
            continue
        order = np.argsort(projected.depths[indices], kind="stable")
        sorted_lists[tile_id] = indices[order]
    return sorted_lists


def global_sort_statistics(binning: TileBinning) -> GlobalSortStats:
    """Estimate the work of the tile-centric pipeline's global radix sort.

    The GPU implementation sorts all (tile, depth) keys with a multi-pass
    radix sort; each pass reads and writes the full pair array.  The byte
    counts returned here are what the characterization figures (Fig. 2 and
    Fig. 4) attribute to the sorting stage.
    """
    num_pairs = binning.num_duplicates
    bytes_per_pass = num_pairs * SORT_PAIR_BYTES
    return GlobalSortStats(
        num_pairs=num_pairs,
        key_bytes_read=bytes_per_pass * RADIX_SORT_PASSES,
        key_bytes_written=bytes_per_pass * RADIX_SORT_PASSES,
        comparisons=int(num_pairs * max(1, np.ceil(np.log2(max(num_pairs, 2))))),
    )


def bitonic_sort_operations(list_length: int) -> int:
    """Compare-exchange count of a bitonic sort of ``list_length`` elements.

    The accelerator's sorting unit (adopted from GSCore) is a bitonic sorter;
    its work grows as ``n log^2 n``.  Used by the architecture model to cost
    per-voxel (StreamingGS) and per-tile (GSCore) sorts.
    """
    if list_length <= 1:
        return 0
    n = 1
    while n < list_length:
        n *= 2
    stages = int(np.log2(n))
    return int(n * stages * (stages + 1) / 4)
