"""Screen-space tile grid and Gaussian-to-tile binning.

The tile-centric rendering paradigm (Fig. 1a) divides the image into fixed
size tiles (16x16 in the reference 3DGS implementation), duplicates every
projected Gaussian into the tiles its screen-space extent overlaps, sorts
each tile's list by depth and then rasterizes tile by tile.  The duplication
factor produced here is also what drives the sorting-stage DRAM traffic that
the paper's characterization (Sec. II-B) identifies as the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.gaussians.projection import ProjectedGaussians

#: Tile edge length in pixels, matching the reference 3DGS rasterizer.
DEFAULT_TILE_SIZE = 16


@dataclass(frozen=True)
class TileGrid:
    """A grid of square screen-space tiles covering the image."""

    width: int
    height: int
    tile_size: int = DEFAULT_TILE_SIZE

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.tile_size <= 0:
            raise ValueError("tile size must be positive")

    @property
    def tiles_x(self) -> int:
        """Number of tile columns."""
        return (self.width + self.tile_size - 1) // self.tile_size

    @property
    def tiles_y(self) -> int:
        """Number of tile rows."""
        return (self.height + self.tile_size - 1) // self.tile_size

    @property
    def num_tiles(self) -> int:
        """Total number of tiles."""
        return self.tiles_x * self.tiles_y

    def tile_id(self, tile_x: int, tile_y: int) -> int:
        """Flattened tile index for tile column/row coordinates."""
        return tile_y * self.tiles_x + tile_x

    def tile_coords(self, tile_id: int) -> tuple:
        """Inverse of :meth:`tile_id`."""
        return tile_id % self.tiles_x, tile_id // self.tiles_x

    def tile_pixel_bounds(self, tile_id: int) -> tuple:
        """Pixel bounds ``(x0, y0, x1, y1)`` of a tile (``x1``/``y1`` exclusive)."""
        tx, ty = self.tile_coords(tile_id)
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        x1 = min(x0 + self.tile_size, self.width)
        y1 = min(y0 + self.tile_size, self.height)
        return x0, y0, x1, y1

    def tile_pixel_centers(self, tile_id: int) -> tuple:
        """Meshgrid pixel-centre coordinates ``(xs, ys)`` of a tile's pixels."""
        x0, y0, x1, y1 = self.tile_pixel_bounds(tile_id)
        xs, ys = np.meshgrid(np.arange(x0, x1), np.arange(y0, y1))
        return xs.reshape(-1), ys.reshape(-1)

    def gaussian_tile_range(
        self, means2d: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """Inclusive tile-index ranges overlapped by each Gaussian's AABB.

        Returns ``(N, 4)`` integer array ``(tx_min, ty_min, tx_max, ty_max)``,
        clipped to the grid.  Gaussians entirely off screen produce empty
        ranges (``tx_min > tx_max``).
        """
        means2d = np.asarray(means2d, dtype=np.float64)
        radii = np.asarray(radii, dtype=np.float64).reshape(-1)
        x_min = np.floor((means2d[:, 0] - radii) / self.tile_size).astype(np.int64)
        y_min = np.floor((means2d[:, 1] - radii) / self.tile_size).astype(np.int64)
        x_max = np.floor((means2d[:, 0] + radii) / self.tile_size).astype(np.int64)
        y_max = np.floor((means2d[:, 1] + radii) / self.tile_size).astype(np.int64)
        x_min = np.clip(x_min, 0, self.tiles_x - 1)
        y_min = np.clip(y_min, 0, self.tiles_y - 1)
        x_max = np.clip(x_max, 0, self.tiles_x - 1)
        y_max = np.clip(y_max, 0, self.tiles_y - 1)
        off_left = (means2d[:, 0] + radii) < 0
        off_right = (means2d[:, 0] - radii) >= self.width
        off_top = (means2d[:, 1] + radii) < 0
        off_bottom = (means2d[:, 1] - radii) >= self.height
        off_screen = off_left | off_right | off_top | off_bottom
        x_max = np.where(off_screen, x_min - 1, x_max)
        return np.stack([x_min, y_min, x_max, y_max], axis=1)


@dataclass
class TileBinning:
    """Result of Gaussian-to-tile binning.

    Attributes
    ----------
    tile_lists:
        Mapping from tile id to an integer array of Gaussian indices whose
        screen-space AABB overlaps the tile (unsorted).
    num_duplicates:
        Total number of (Gaussian, tile) pairs — the length of the key/value
        list the tile-centric pipeline has to sort globally.
    """

    tile_lists: Dict[int, np.ndarray]
    num_duplicates: int

    def non_empty_tiles(self) -> List[int]:
        """Tile ids that have at least one candidate Gaussian."""
        return [tid for tid, lst in self.tile_lists.items() if len(lst) > 0]


def bin_gaussians_to_tiles(
    projected: ProjectedGaussians, grid: TileGrid
) -> TileBinning:
    """Assign projected Gaussians to every tile their extent overlaps.

    Only Gaussians with ``projected.valid`` set participate.  This mirrors
    the duplication step of the reference tile-centric pipeline; the
    resulting duplicate count feeds the sorting-traffic model.
    """
    valid_idx = np.flatnonzero(projected.valid)
    tile_lists: Dict[int, List[int]] = {}
    num_duplicates = 0
    if len(valid_idx) == 0:
        return TileBinning(tile_lists={}, num_duplicates=0)
    ranges = grid.gaussian_tile_range(
        projected.means2d[valid_idx], projected.radii[valid_idx]
    )
    for local, gid in enumerate(valid_idx):
        tx_min, ty_min, tx_max, ty_max = ranges[local]
        if tx_max < tx_min or ty_max < ty_min:
            continue
        for ty in range(ty_min, ty_max + 1):
            for tx in range(tx_min, tx_max + 1):
                tid = grid.tile_id(tx, ty)
                tile_lists.setdefault(tid, []).append(int(gid))
                num_duplicates += 1
    return TileBinning(
        tile_lists={tid: np.asarray(lst, dtype=np.int64) for tid, lst in tile_lists.items()},
        num_duplicates=num_duplicates,
    )
