"""Tile-centric reference rasterizer (the "original 3DGS" baseline).

This is the rendering paradigm of Fig. 1a: project every Gaussian, duplicate
it into the tiles it overlaps, sort each tile's list by depth, then
alpha-blend every pixel of each tile front-to-back over the full sorted
list.  The implementation is vectorised per tile so it stays tractable in
NumPy, and it also records the workload statistics (Gaussian loads, blended
fragments, duplicated pairs) that drive the GPU / GSCore architecture
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.projection import ProjectedGaussians, project_gaussians
from repro.gaussians.sorting import global_sort_statistics, sort_tile_gaussians
from repro.gaussians.tiles import DEFAULT_TILE_SIZE, TileGrid, bin_gaussians_to_tiles

#: Alpha-blending terminates a pixel once its transmittance drops below this.
TRANSMITTANCE_EPSILON = 1e-4

#: Contributions with alpha below this are skipped (matches reference impl).
ALPHA_EPSILON = 1.0 / 255.0

#: Alpha is clamped to this maximum to keep blending stable.
ALPHA_MAX = 0.99


@dataclass
class RenderStats:
    """Workload statistics of a single rendered frame."""

    num_gaussians: int = 0
    num_projected: int = 0
    num_culled: int = 0
    num_tile_pairs: int = 0
    num_blended_fragments: int = 0
    num_tiles_rendered: int = 0
    sort_pairs: int = 0
    sort_bytes: int = 0

    def merge(self, other: "RenderStats") -> "RenderStats":
        """Element-wise sum of two statistics records."""
        return RenderStats(
            num_gaussians=self.num_gaussians + other.num_gaussians,
            num_projected=self.num_projected + other.num_projected,
            num_culled=self.num_culled + other.num_culled,
            num_tile_pairs=self.num_tile_pairs + other.num_tile_pairs,
            num_blended_fragments=self.num_blended_fragments + other.num_blended_fragments,
            num_tiles_rendered=self.num_tiles_rendered + other.num_tiles_rendered,
            sort_pairs=self.sort_pairs + other.sort_pairs,
            sort_bytes=self.sort_bytes + other.sort_bytes,
        )


@dataclass
class RenderOutput:
    """The rendered image plus per-frame workload statistics."""

    image: np.ndarray                      # (H, W, 3) float in [0, 1]
    alpha: np.ndarray                      # (H, W) accumulated opacity
    stats: RenderStats = field(default_factory=RenderStats)
    projected: Optional[ProjectedGaussians] = None

    @property
    def height(self) -> int:
        return int(self.image.shape[0])

    @property
    def width(self) -> int:
        return int(self.image.shape[1])


@dataclass
class BlendState:
    """Per-pixel accumulators of (partial) alpha blending.

    ``max_depth`` tracks, per pixel, the largest camera-space depth among
    the Gaussians that have already contributed to that pixel.  The
    streaming pipeline uses it to count depth-order violations (the ``T_i``
    indicator of the cross-boundary penalty, Eq. 2) at per-pixel
    granularity, and ``gaussian_weights`` / ``gaussian_violation_weights``
    attribute the blended weight (and the out-of-order part of it) to the
    individual Gaussians so the boundary-aware fine-tuning can target the
    actual offenders.
    """

    color: np.ndarray          # (P, 3) accumulated premultiplied colour
    transmittance: np.ndarray  # (P,) remaining transmittance
    max_depth: np.ndarray      # (P,) largest depth blended so far
    blended_fragments: int = 0
    depth_violations: int = 0
    gaussian_weights: Dict[int, float] = field(default_factory=dict)
    gaussian_violation_weights: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def fresh(cls, num_pixels: int) -> "BlendState":
        return cls(
            color=np.zeros((num_pixels, 3), dtype=np.float64),
            transmittance=np.ones(num_pixels, dtype=np.float64),
            max_depth=np.full(num_pixels, -np.inf, dtype=np.float64),
        )


def blend_tile(
    pixel_x: np.ndarray,
    pixel_y: np.ndarray,
    projected: ProjectedGaussians,
    sorted_indices: np.ndarray,
    background: np.ndarray,
    transmittance: Optional[np.ndarray] = None,
    color_accum: Optional[np.ndarray] = None,
    state: Optional[BlendState] = None,
    track_depth_order: bool = False,
) -> "BlendState":
    """Alpha-blend a depth-sorted Gaussian list over a block of pixels.

    The loop runs over Gaussians (front to back) and is vectorised over the
    pixels of the tile.  It supports *resuming* from a previous partial
    state, which is exactly the partial pixel-value accumulation the
    memory-centric pipeline performs voxel-by-voxel (Fig. 1b).

    Parameters
    ----------
    pixel_x, pixel_y:
        Integer pixel coordinates of the block.
    projected:
        Projection results the ``sorted_indices`` point into.
    sorted_indices:
        Depth-sorted Gaussian indices (front to back).
    background:
        Unused here (composited by the caller); kept for signature clarity.
    transmittance, color_accum:
        Legacy resumable accumulators; superseded by ``state``.
    state:
        A :class:`BlendState` to resume from (created fresh otherwise).
    track_depth_order:
        When True, count per-pixel fragments blended out of depth order.

    Returns
    -------
    The updated :class:`BlendState`.
    """
    num_pixels = len(pixel_x)
    if state is None:
        state = BlendState.fresh(num_pixels)
        if transmittance is not None:
            state.transmittance = transmittance
        if color_accum is not None:
            state.color = color_accum
    px = pixel_x.astype(np.float64) + 0.5
    py = pixel_y.astype(np.float64) + 0.5
    for gid in sorted_indices:
        if not projected.valid[gid]:
            continue
        active = state.transmittance > TRANSMITTANCE_EPSILON
        if not np.any(active):
            break
        dx = px - projected.means2d[gid, 0]
        dy = py - projected.means2d[gid, 1]
        a, b, c = projected.conics[gid]
        power = -0.5 * (a * dx * dx + c * dy * dy) - b * dx * dy
        alpha = projected.opacities[gid] * np.exp(np.minimum(power, 0.0))
        alpha = np.minimum(alpha, ALPHA_MAX)
        contributes = active & (alpha > ALPHA_EPSILON) & (power <= 0.0)
        if not np.any(contributes):
            continue
        weight = np.where(contributes, alpha * state.transmittance, 0.0)
        state.color += weight[:, None] * projected.colors[gid][None, :]
        state.transmittance = np.where(
            contributes, state.transmittance * (1.0 - alpha), state.transmittance
        )
        state.blended_fragments += int(np.count_nonzero(contributes))
        if track_depth_order:
            depth = float(projected.depths[gid])
            violated = contributes & (state.max_depth > depth + 1e-9)
            state.depth_violations += int(np.count_nonzero(violated))
            key = int(gid)
            state.gaussian_weights[key] = state.gaussian_weights.get(key, 0.0) + float(
                weight.sum()
            )
            if np.any(violated):
                state.gaussian_violation_weights[key] = state.gaussian_violation_weights.get(
                    key, 0.0
                ) + float(weight[violated].sum())
            state.max_depth = np.where(
                contributes, np.maximum(state.max_depth, depth), state.max_depth
            )
    return state


class TileRasterizer:
    """The tile-centric reference renderer.

    Parameters
    ----------
    tile_size:
        Edge length of the square screen tiles (16 as in reference 3DGS).
    background:
        Background RGB colour composited where transmittance remains.
    sh_degree:
        SH degree used for view-dependent colour.
    """

    def __init__(
        self,
        tile_size: int = DEFAULT_TILE_SIZE,
        background=(0.0, 0.0, 0.0),
        sh_degree: int = 3,
    ) -> None:
        if tile_size <= 0:
            raise ValueError("tile_size must be positive")
        self.tile_size = tile_size
        self.background = np.asarray(background, dtype=np.float64).reshape(3)
        self.sh_degree = sh_degree

    # ------------------------------------------------------------------
    def render(self, model: GaussianModel, camera: Camera) -> RenderOutput:
        """Render ``model`` from ``camera`` with the tile-centric pipeline."""
        grid = TileGrid(camera.width, camera.height, self.tile_size)
        projected = project_gaussians(model, camera, sh_degree=self.sh_degree)
        binning = bin_gaussians_to_tiles(projected, grid)
        sorted_lists = sort_tile_gaussians(projected, binning)
        sort_stats = global_sort_statistics(binning)

        image = np.zeros((camera.height, camera.width, 3), dtype=np.float64)
        alpha_img = np.zeros((camera.height, camera.width), dtype=np.float64)
        stats = RenderStats(
            num_gaussians=len(model),
            num_projected=projected.num_valid,
            num_culled=len(model) - projected.num_valid,
            num_tile_pairs=binning.num_duplicates,
            num_tiles_rendered=len(sorted_lists),
            sort_pairs=sort_stats.num_pairs,
            sort_bytes=sort_stats.total_bytes,
        )

        for tile_id, indices in sorted_lists.items():
            if len(indices) == 0:
                continue
            xs, ys = grid.tile_pixel_centers(tile_id)
            state = blend_tile(xs, ys, projected, indices, self.background)
            stats.num_blended_fragments += state.blended_fragments
            final = state.color + state.transmittance[:, None] * self.background[None, :]
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            h, w = y1 - y0, x1 - x0
            image[y0:y1, x0:x1] = final.reshape(h, w, 3)
            alpha_img[y0:y1, x0:x1] = (1.0 - state.transmittance).reshape(h, w)

        # Tiles with no candidate Gaussians keep the background colour.
        empty_mask = alpha_img == 0.0
        image[empty_mask & (image.sum(axis=2) == 0.0)] = self.background

        return RenderOutput(
            image=np.clip(image, 0.0, 1.0),
            alpha=alpha_img,
            stats=stats,
            projected=projected,
        )
