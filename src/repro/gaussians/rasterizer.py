"""Tile-centric reference rasterizer (the "original 3DGS" baseline).

This is the rendering paradigm of Fig. 1a: project every Gaussian, duplicate
it into the tiles it overlaps, sort each tile's list by depth, then
alpha-blend every pixel of each tile front-to-back over the full sorted
list.  The alpha blending itself lives in the shared render-engine layer
(:mod:`repro.engine.kernels`) and is selectable between the per-Gaussian
reference loop and the vectorized broadcast kernel; the rasterizer also
records the workload statistics (Gaussian loads, blended fragments,
duplicated pairs) that drive the GPU / GSCore architecture models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.engine.kernels import (
    ALPHA_EPSILON,
    ALPHA_MAX,
    TRANSMITTANCE_EPSILON,
    get_kernel,
)
from repro.engine.state import BlendState
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.projection import ProjectedGaussians, project_gaussians
from repro.gaussians.sorting import global_sort_statistics, sort_tile_gaussians
from repro.gaussians.tiles import DEFAULT_TILE_SIZE, TileGrid, bin_gaussians_to_tiles

__all__ = [
    "ALPHA_EPSILON",
    "ALPHA_MAX",
    "TRANSMITTANCE_EPSILON",
    "BlendState",
    "RenderStats",
    "RenderOutput",
    "blend_tile",
    "TileRasterizer",
]


@dataclass
class RenderStats:
    """Workload statistics of a single rendered frame."""

    num_gaussians: int = 0
    num_projected: int = 0
    num_culled: int = 0
    num_tile_pairs: int = 0
    num_blended_fragments: int = 0
    num_tiles_rendered: int = 0
    sort_pairs: int = 0
    sort_bytes: int = 0

    def merge(self, other: "RenderStats") -> "RenderStats":
        """Element-wise sum of two statistics records."""
        return RenderStats(
            num_gaussians=self.num_gaussians + other.num_gaussians,
            num_projected=self.num_projected + other.num_projected,
            num_culled=self.num_culled + other.num_culled,
            num_tile_pairs=self.num_tile_pairs + other.num_tile_pairs,
            num_blended_fragments=self.num_blended_fragments + other.num_blended_fragments,
            num_tiles_rendered=self.num_tiles_rendered + other.num_tiles_rendered,
            sort_pairs=self.sort_pairs + other.sort_pairs,
            sort_bytes=self.sort_bytes + other.sort_bytes,
        )


@dataclass
class RenderOutput:
    """The rendered image plus per-frame workload statistics."""

    image: np.ndarray                      # (H, W, 3) float in [0, 1]
    alpha: np.ndarray                      # (H, W) accumulated opacity
    stats: RenderStats = field(default_factory=RenderStats)
    projected: Optional[ProjectedGaussians] = None

    @property
    def height(self) -> int:
        return int(self.image.shape[0])

    @property
    def width(self) -> int:
        return int(self.image.shape[1])


def blend_tile(
    pixel_x: np.ndarray,
    pixel_y: np.ndarray,
    projected: ProjectedGaussians,
    sorted_indices: np.ndarray,
    state: Optional[BlendState] = None,
    *,
    model_indices: Optional[np.ndarray] = None,
    track_depth_order: bool = False,
    kernel: Optional[str] = None,
) -> BlendState:
    """Alpha-blend a depth-sorted Gaussian list over a block of pixels.

    Thin front-end over the engine's blending kernels.  It supports
    *resuming* from a previous partial state, which is exactly the partial
    pixel-value accumulation the memory-centric pipeline performs
    voxel-by-voxel (Fig. 1b).

    Parameters
    ----------
    pixel_x, pixel_y:
        Integer pixel coordinates of the block.
    projected:
        Projection results the ``sorted_indices`` point into.
    sorted_indices:
        Depth-sorted Gaussian indices (front to back).
    state:
        A :class:`BlendState` to resume from (created fresh otherwise).
    model_indices:
        Optional mapping from rows of ``projected`` to model Gaussian ids;
        per-Gaussian weight attribution is keyed by it when given.
    track_depth_order:
        When True, count per-pixel fragments blended out of depth order.
    kernel:
        Blending-kernel name (:data:`repro.engine.kernels.DEFAULT_KERNEL`
        when omitted).

    Returns
    -------
    The updated :class:`BlendState`.
    """
    if state is None:
        state = BlendState.fresh(len(pixel_x))
    return get_kernel(kernel)(
        pixel_x,
        pixel_y,
        projected,
        sorted_indices,
        state,
        model_indices=model_indices,
        track_depth_order=track_depth_order,
    )


class TileRasterizer:
    """The tile-centric reference renderer.

    Parameters
    ----------
    tile_size:
        Edge length of the square screen tiles (16 as in reference 3DGS).
    background:
        Background RGB colour composited where transmittance remains.
    sh_degree:
        SH degree used for view-dependent colour.
    kernel:
        Name of the blending kernel (``None`` selects the engine default,
        the vectorized kernel).
    """

    def __init__(
        self,
        tile_size: int = DEFAULT_TILE_SIZE,
        background=(0.0, 0.0, 0.0),
        sh_degree: int = 3,
        kernel: Optional[str] = None,
    ) -> None:
        if tile_size <= 0:
            raise ValueError("tile_size must be positive")
        self.tile_size = tile_size
        self.background = np.asarray(background, dtype=np.float64).reshape(3)
        self.sh_degree = sh_degree
        self.kernel_name = kernel
        self._kernel = get_kernel(kernel)

    # ------------------------------------------------------------------
    def render(self, model: GaussianModel, camera: Camera) -> RenderOutput:
        """Render ``model`` from ``camera`` with the tile-centric pipeline."""
        grid = TileGrid(camera.width, camera.height, self.tile_size)
        projected = project_gaussians(model, camera, sh_degree=self.sh_degree)
        binning = bin_gaussians_to_tiles(projected, grid)
        sorted_lists = sort_tile_gaussians(projected, binning)
        sort_stats = global_sort_statistics(binning)

        image = np.zeros((camera.height, camera.width, 3), dtype=np.float64)
        alpha_img = np.zeros((camera.height, camera.width), dtype=np.float64)
        stats = RenderStats(
            num_gaussians=len(model),
            num_projected=projected.num_valid,
            num_culled=len(model) - projected.num_valid,
            num_tile_pairs=binning.num_duplicates,
            num_tiles_rendered=len(sorted_lists),
            sort_pairs=sort_stats.num_pairs,
            sort_bytes=sort_stats.total_bytes,
        )

        covered = set()
        for tile_id, indices in sorted_lists.items():
            if len(indices) == 0:
                continue
            covered.add(tile_id)
            xs, ys = grid.tile_pixel_centers(tile_id)
            state = BlendState.fresh(len(xs))
            state = self._kernel(xs, ys, projected, indices, state)
            stats.num_blended_fragments += state.blended_fragments
            final = state.color + state.transmittance[:, None] * self.background[None, :]
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            h, w = y1 - y0, x1 - x0
            image[y0:y1, x0:x1] = final.reshape(h, w, 3)
            alpha_img[y0:y1, x0:x1] = (1.0 - state.transmittance).reshape(h, w)

        # Tiles the binning produced no candidate Gaussians for are painted
        # with the background explicitly (inferring them from pixel sums
        # misfires for black backgrounds or blended pixels summing to zero).
        for tile_id in range(grid.num_tiles):
            if tile_id in covered:
                continue
            x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
            image[y0:y1, x0:x1] = self.background

        return RenderOutput(
            image=np.clip(image, 0.0, 1.0),
            alpha=alpha_img,
            stats=stats,
            projected=projected,
        )
