"""The 3D Gaussian Splatting substrate.

This subpackage is a self-contained NumPy implementation of the 3DGS
rendering pipeline the paper builds on: the Gaussian parameter model
(59 parameters per Gaussian), spherical-harmonics appearance, pinhole
cameras, EWA splatting projection, tile binning, per-tile depth sorting
and the tile-centric alpha-blending rasterizer used as the reference
("original 3DGS") renderer throughout the evaluation.
"""

from repro.gaussians.model import GaussianModel, PARAMS_PER_GAUSSIAN
from repro.gaussians.camera import Camera, look_at, orbit_trajectory
from repro.gaussians.projection import (
    ProjectedGaussians,
    build_covariance_3d,
    project_gaussians,
    quaternion_to_rotation_matrix,
)
from repro.gaussians.sh import eval_sh, num_sh_coeffs
from repro.gaussians.tiles import TileGrid, bin_gaussians_to_tiles
from repro.gaussians.sorting import sort_tile_gaussians, GlobalSortStats
from repro.gaussians.rasterizer import TileRasterizer, RenderOutput
from repro.gaussians.metrics import psnr, mse, ssim

__all__ = [
    "GaussianModel",
    "PARAMS_PER_GAUSSIAN",
    "Camera",
    "look_at",
    "orbit_trajectory",
    "ProjectedGaussians",
    "build_covariance_3d",
    "project_gaussians",
    "quaternion_to_rotation_matrix",
    "eval_sh",
    "num_sh_coeffs",
    "TileGrid",
    "bin_gaussians_to_tiles",
    "sort_tile_gaussians",
    "GlobalSortStats",
    "TileRasterizer",
    "RenderOutput",
    "psnr",
    "mse",
    "ssim",
]
