"""Seeded, deterministic fault injection for the service stack.

The service daemon, actors, supervisor, result store and shm registry
each expose *named fault points* — ``chaos.fault("journal.torn_write")``
calls at the exact spots where real systems tear, wedge, and run out of
disk.  With no injector installed (the default, and the production
state) ``fault()`` is a single global-``None`` check: zero overhead, no
locks, no counters.  Tests and the chaos benchmark install a
:class:`ChaosInjector` built from a :class:`FaultPlan`
(``ServiceConfig.chaos`` / ``repro-serve --chaos-plan``), and the same
plan + seed reproduces the same fault schedule run after run.

This package is intentionally stdlib-only and imports nothing else from
``repro`` so any layer (including ``repro.api`` during package init) can
depend on it without cycles.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.chaos.injector import ChaosInjector, build_injector
from repro.chaos.plan import FAULT_POINTS, FaultPlan, FaultRule

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "ChaosInjector",
    "build_injector",
    "install",
    "uninstall",
    "installed",
    "fault",
]

_injector: Optional[ChaosInjector] = None
_install_lock = threading.Lock()


def install(injector: ChaosInjector) -> ChaosInjector:
    """Make ``injector`` the process-global chaos injector."""
    global _injector
    with _install_lock:
        _injector = injector
    return injector


def uninstall(expected: Optional[ChaosInjector] = None) -> None:
    """Remove the global injector.

    With ``expected`` set, only uninstalls if that exact injector is
    still installed — so a daemon tearing down never clobbers a newer
    daemon's injector (stacked daemons in tests).
    """
    global _injector
    with _install_lock:
        if expected is None or _injector is expected:
            _injector = None


def installed() -> Optional[ChaosInjector]:
    """The currently installed injector, or ``None``."""
    return _injector


def fault(point: str) -> Optional[FaultRule]:
    """The hook instrumented code calls at a named fault point.

    Returns the :class:`FaultRule` to enact if chaos is installed and a
    rule fires; ``None`` otherwise.  The disabled path is one global
    read — cheap enough to leave in production code paths.
    """
    injector = _injector
    if injector is None:
        return None
    return injector.fire(point)
