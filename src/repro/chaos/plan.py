"""Fault plans: the declarative configuration of chaos injection.

A :class:`FaultPlan` names *what* goes wrong and *how often*: a list of
:class:`FaultRule`\\ s, each binding one registered fault point (see
:data:`FAULT_POINTS`) to a firing policy — a per-call probability, a
deterministic every-nth-call cadence, or both — plus an optional cap on
total fires and a delay parameter for the slow/hang fault kinds.  The
plan's ``seed`` makes probabilistic rules reproducible: the same plan
against the same call sequence fires the same faults.

Plans are plain data.  They serialize losslessly to JSON
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict` /
:meth:`FaultPlan.load`), which is how ``repro-serve --chaos-plan`` and
the chaos benchmark configure a daemon.  Validation happens at
construction: an unknown fault point or a rule with no firing policy is
a configuration error, not a silent no-op.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Union

#: Every fault point the service stack exposes, with what firing it does.
#: A :class:`FaultRule` must name one of these; the registry is the one
#: place to look up where faults can be injected.
FAULT_POINTS: Dict[str, str] = {
    "transport.drop_response": (
        "sever the connection before writing a work response (the client "
        "sees a mid-request connection loss and must reconnect + resend)"
    ),
    "transport.partial_write": (
        "write only the first half of a response frame, then sever the "
        "connection (torn NDJSON line on the wire)"
    ),
    "transport.slow_write": (
        "delay a response write by ``delay_s`` (slow consumer / congested "
        "link)"
    ),
    "actor.crash": (
        "kill the worker-actor thread mid-request, exactly like an uncaught "
        "failure (the supervisor restarts and retries)"
    ),
    "actor.hang": (
        "wedge the actor for ``delay_s`` without heartbeats (the watchdog "
        "sees a stall and quarantines it)"
    ),
    "actor.slow_render": "sleep ``delay_s`` before executing a request",
    "journal.torn_write": (
        "persist a journal entry as truncated JSON without the atomic "
        "rename (a torn write; resume moves it aside as .corrupt)"
    ),
    "store.corrupt_entry": (
        "truncate a just-written result-store entry (reads self-heal it "
        "back to a miss)"
    ),
    "store.enospc": (
        "raise ENOSPC from a result-store put (cache fills degrade to "
        "best-effort, never fail the request)"
    ),
    "shm.attach_fail": (
        "fail a shared-memory segment attach with SharedMemoryUnavailable"
    ),
}


@dataclass
class FaultRule:
    """One fault point bound to a firing policy.

    Attributes
    ----------
    point:
        A registered fault point name (key of :data:`FAULT_POINTS`).
    probability:
        Per-call firing probability in ``[0, 1]``, drawn from the rule's
        own seeded RNG stream (deterministic per plan seed).
    every_nth:
        Fire on every nth call of the point (``every_nth=4`` fires calls
        4, 8, 12, ...).  Combines with ``probability`` as *either/or*.
    max_fires:
        Cap on total fires of this rule; ``None`` is unbounded.
    delay_s:
        Sleep parameter of the slow/hang fault kinds.
    """

    point: str
    probability: float = 0.0
    every_nth: int = 0
    max_fires: Union[int, None] = None
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise ValueError(f"unknown fault point {self.point!r}; known: {known}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.every_nth < 0:
            raise ValueError(f"every_nth must be >= 0, got {self.every_nth}")
        if self.probability == 0.0 and self.every_nth == 0:
            raise ValueError(
                f"rule for {self.point!r} has no firing policy; set "
                "probability > 0 and/or every_nth > 0"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"point": self.point}
        if self.probability:
            data["probability"] = self.probability
        if self.every_nth:
            data["every_nth"] = self.every_nth
        if self.max_fires is not None:
            data["max_fires"] = self.max_fires
        if self.delay_s != 0.05:
            data["delay_s"] = self.delay_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        return cls(
            point=str(data["point"]),
            probability=float(data.get("probability", 0.0)),
            every_nth=int(data.get("every_nth", 0)),
            max_fires=(
                int(data["max_fires"]) if data.get("max_fires") is not None else None
            ),
            delay_s=float(data.get("delay_s", 0.05)),
        )


@dataclass
class FaultPlan:
    """A seeded set of fault rules — the whole chaos configuration.

    ``seed`` feeds every probabilistic rule's private RNG stream, so one
    plan replayed against the same sequence of fault-point calls makes
    the same decisions.  Multiple rules may target the same point; they
    are evaluated in plan order and the first hit wins.
    """

    seed: int = 0
    rules: List[FaultRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rules = [
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in self.rules
        ]

    def __len__(self) -> int:
        return len(self.rules)

    def points(self) -> List[str]:
        """Distinct fault points this plan targets, in rule order."""
        seen: Dict[str, None] = {}
        for rule in self.rules:
            seen.setdefault(rule.point, None)
        return list(seen)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        rules_data: Iterable[Mapping[str, Any]] = data.get("rules") or []
        return cls(
            seed=int(data.get("seed", 0)),
            rules=[FaultRule.from_dict(rule) for rule in rules_data],
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def parse(cls, text_or_path: Union[str, Path]) -> "FaultPlan":
        """A plan from a JSON string or a path to a JSON file.

        The CLI accepts both: ``--chaos-plan plan.json`` and
        ``--chaos-plan '{"seed": 7, "rules": [...]}'``.
        """
        text = str(text_or_path)
        if text.lstrip().startswith("{"):
            return cls.from_dict(json.loads(text))
        return cls.load(text)
