"""The runtime half of chaos: deciding, per call, whether a fault fires.

A :class:`ChaosInjector` is built from a :class:`~repro.chaos.plan.FaultPlan`
and installed globally (see :mod:`repro.chaos`).  Instrumented code calls
``chaos.fault("actor.crash")`` at each named fault point; the injector
keeps a per-point call counter and a per-rule seeded RNG stream, and
returns the matching :class:`~repro.chaos.plan.FaultRule` when a rule
fires (``None`` otherwise).  The caller then *enacts* the fault — the
injector only decides.

Determinism: every probabilistic rule gets its own ``random.Random``
seeded from ``(plan.seed, rule_index)``, and nth-call rules key off the
point's call counter, so a fixed plan against a fixed call sequence
fires identically across runs.  All state is guarded by one lock; the
hot path when installed is a counter bump plus a few comparisons.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Dict, List, Optional, Union

from repro.chaos.plan import FaultPlan, FaultRule


class ChaosInjector:
    """Evaluates a :class:`FaultPlan` against a stream of fault-point calls."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._fires: Dict[str, int] = {}
        # Rules grouped by point, each with its own deterministic RNG
        # stream and fire counter (for max_fires).
        self._rules_by_point: Dict[str, List[Dict[str, Any]]] = {}
        for index, rule in enumerate(plan.rules):
            self._rules_by_point.setdefault(rule.point, []).append(
                {
                    "rule": rule,
                    "rng": random.Random(f"{plan.seed}:{index}:{rule.point}"),
                    "fires": 0,
                }
            )

    def fire(self, point: str) -> Optional[FaultRule]:
        """Record a call at ``point``; return the rule that fires, if any."""
        with self._lock:
            calls = self._calls.get(point, 0) + 1
            self._calls[point] = calls
            for entry in self._rules_by_point.get(point, ()):
                rule: FaultRule = entry["rule"]
                if rule.max_fires is not None and entry["fires"] >= rule.max_fires:
                    continue
                hit = bool(rule.every_nth and calls % rule.every_nth == 0)
                if not hit and rule.probability:
                    hit = entry["rng"].random() < rule.probability
                if hit:
                    entry["fires"] += 1
                    self._fires[point] = self._fires.get(point, 0) + 1
                    return rule
        return None

    # ------------------------------------------------------------------
    def fired_points(self) -> List[str]:
        """Fault points that have actually fired at least once."""
        with self._lock:
            return [point for point, count in self._fires.items() if count > 0]

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-point ``{"calls": n, "fires": m}`` counters."""
        with self._lock:
            points = set(self._calls) | set(self._fires)
            return {
                point: {
                    "calls": self._calls.get(point, 0),
                    "fires": self._fires.get(point, 0),
                }
                for point in sorted(points)
            }


def build_injector(
    plan: Union[FaultPlan, Dict[str, Any], None]
) -> Optional[ChaosInjector]:
    """An injector from a plan, a plan dict, or ``None`` (chaos off)."""
    if plan is None:
        return None
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan.from_dict(plan)
    if not plan.rules:
        return None
    return ChaosInjector(plan)
