"""Bridging measured (simulation-scale) workloads to paper-scale workloads.

The algorithms in :mod:`repro.core` / :mod:`repro.gaussians` run on
down-scaled scenes (thousands of Gaussians, ~160 px wide images) so they
finish in seconds on a CPU.  The architecture models, however, must be
driven by the *paper-scale* workload: millions of Gaussians rendered at the
datasets' native resolutions.  This module derives that full-scale,
per-frame workload from

* the static scene statistics in the registry (full Gaussian count, native
  resolution, scene extent), and
* quantities measured on the simulated scene that are scale-invariant
  (frustum-visible fraction, mean Gaussian depth, per-pixel blend
  efficiency, voxel occupancy of the scene geometry) or that can be
  rescaled analytically (screen-space radii, tile/group overlap counts).

Scaling rules (all written out so the model is auditable):

* **Splat radius** — the simulated scene represents the same content with
  far fewer, individually larger Gaussians, so radii are rescaled by
  preserving total splat *coverage*: ``r_full = sqrt(coverage * pixels /
  (pi * N_visible))``.
* **Tile duplication** — expected 16x16 tiles overlapped by a splat of the
  rescaled radius.
* **Voxel geometry** — the procedural scene's occupied-voxel set stands in
  for the real scene's (same envelope), so the occupied voxel count carries
  over and the per-voxel population scales with the Gaussian count.
* **Streaming fan-out** — a voxel is *processed* once per pixel group whose
  frustum it intersects (``((V+g)/g)^2`` groups for a footprint of ``V``
  pixels), which drives the filtering compute; its data is *fetched* from
  DRAM approximately once per frame (the contiguous layout plus the
  double-buffered input buffer give producer/consumer locality across the
  groups sharing it), which drives the streaming traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.core.pipeline import StreamingStats
from repro.gaussians.projection import ProjectedGaussians
from repro.gaussians.rasterizer import RenderStats
from repro.scenes.registry import SceneDescriptor

#: Tile edge (pixels) of the tile-centric pipeline at full scale.
FULL_SCALE_TILE = 16

#: Default pixel-group edge (pixels) of the streaming accelerator.
DEFAULT_GROUP_SIZE = 32

#: Conservative inflation of the coarse-filter radius over the precise one
#: (Jacobian bound plus dilation), mirroring ``coarse_project_centers``.
COARSE_RADIUS_FACTOR = 1.45

#: DRAM re-fetch factor of the voxel stream: fraction of voxel data fetched
#: more than once per frame because the pixel-group schedule cannot keep
#: every shared voxel resident in the (16 KB, double-buffered) input buffer.
VOXEL_FETCH_REUSE = 1.2


def _filter_pass_rates(
    group_size_px: float, voxel_footprint_px: float, radius_px: float
) -> tuple:
    """Analytic coarse / conditional-fine pass rates for one pixel group.

    A streamed voxel projects to a ``voxel_footprint_px`` wide region; its
    Gaussians are spread over that footprint (plus their own radius), while
    only those within ``group_size + radius`` of the group rectangle pass
    the intersection test.  The coarse test uses the conservative radius
    (``COARSE_RADIUS_FACTOR`` larger), the fine test the precise one — their
    ratio gives the conditional fine pass rate.
    """
    coarse_radius = COARSE_RADIUS_FACTOR * radius_px
    denominator = voxel_footprint_px + 2.0 * coarse_radius
    coarse = min(1.0, ((group_size_px + 2.0 * coarse_radius) / denominator) ** 2)
    fine_window = group_size_px + 2.0 * radius_px
    coarse_window = group_size_px + 2.0 * coarse_radius
    fine_given_coarse = min(1.0, (fine_window / coarse_window) ** 2)
    return float(coarse), float(fine_given_coarse)


@dataclass(frozen=True)
class FullScaleWorkload:
    """Per-frame workload of one scene at paper scale.

    The dataclass stores *primitive* quantities; everything the performance
    and traffic models consume is exposed as derived properties so changing
    the pixel-group size (:meth:`with_group_size`) re-derives a consistent
    workload.
    """

    scene: str
    # --- static scene / image facts -------------------------------------
    num_gaussians: int
    width: int
    height: int
    num_voxels: int
    voxel_size: float
    # --- measured, scale-invariant quantities ----------------------------
    visible_fraction: float
    mean_depth: float
    focal_px: float                  # focal length at full resolution
    blend_efficiency: float          # useful fragments per (pair x tile pixel)
    voxels_per_ray: float            # voxels traversed per pixel ray
    # --- rescaled splat geometry ------------------------------------------
    mean_radius_px: float            # coverage-preserving full-scale radius
    # --- streaming configuration ------------------------------------------
    group_size: int = DEFAULT_GROUP_SIZE
    second_half_bytes_vq: float = 10.0
    second_half_bytes_raw: float = 220.0
    first_half_bytes: float = 16.0
    pixel_write_bytes: float = 16.0

    # ------------------------------------------------------------------
    # Image / tile facts
    # ------------------------------------------------------------------
    @property
    def num_pixels(self) -> int:
        return self.width * self.height

    @property
    def num_tiles(self) -> int:
        """16x16 tiles of the tile-centric pipeline."""
        tiles_x = int(np.ceil(self.width / FULL_SCALE_TILE))
        tiles_y = int(np.ceil(self.height / FULL_SCALE_TILE))
        return tiles_x * tiles_y

    @property
    def num_groups(self) -> int:
        """Pixel groups of the streaming accelerator."""
        groups_x = int(np.ceil(self.width / self.group_size))
        groups_y = int(np.ceil(self.height / self.group_size))
        return groups_x * groups_y

    # ------------------------------------------------------------------
    # Tile-centric pipeline quantities
    # ------------------------------------------------------------------
    @property
    def visible_gaussians(self) -> float:
        return self.num_gaussians * self.visible_fraction

    @property
    def duplication_factor(self) -> float:
        """Expected 16x16 tiles overlapped by a visible Gaussian."""
        return (2.0 * self.mean_radius_px / FULL_SCALE_TILE + 1.0) ** 2

    @property
    def num_pairs(self) -> float:
        """Duplicated (Gaussian, tile) pairs of the tile-centric pipeline."""
        return self.visible_gaussians * self.duplication_factor

    @property
    def blended_fragments(self) -> float:
        """Per-pixel blend operations of one frame (either pipeline)."""
        return self.num_pairs * FULL_SCALE_TILE ** 2 * self.blend_efficiency

    # ------------------------------------------------------------------
    # Streaming pipeline quantities
    # ------------------------------------------------------------------
    @property
    def voxel_footprint_px(self) -> float:
        """Mean projected edge length of a voxel, in pixels."""
        return self.voxel_size / max(self.mean_depth, 1e-6) * self.focal_px

    @property
    def groups_per_voxel(self) -> float:
        """Pixel groups whose frustum a visible voxel intersects."""
        return ((self.voxel_footprint_px + self.group_size) / self.group_size) ** 2

    @property
    def gaussians_per_voxel(self) -> float:
        return self.num_gaussians / max(self.num_voxels, 1)

    @property
    def voxel_instances(self) -> float:
        """(group, voxel) processing instances per frame."""
        return self.num_voxels * self.visible_fraction * self.groups_per_voxel

    @property
    def voxels_per_group(self) -> float:
        return self.voxel_instances / max(self.num_groups, 1)

    @property
    def gaussians_streamed(self) -> float:
        """Gaussians *processed* by the hierarchical filter per frame.

        Every (group, voxel) instance tests the voxel's whole population.
        """
        return self.voxel_instances * self.gaussians_per_voxel

    @property
    def coarse_pass_rate(self) -> float:
        """Per-(group, voxel) coarse-grained filter pass rate."""
        coarse, _ = _filter_pass_rates(
            self.group_size, self.voxel_footprint_px, self.mean_radius_px
        )
        return coarse

    @property
    def fine_pass_rate_given_coarse(self) -> float:
        _, fine = _filter_pass_rates(
            self.group_size, self.voxel_footprint_px, self.mean_radius_px
        )
        return fine

    @property
    def coarse_passed(self) -> float:
        """Gaussian instances per frame that pass the coarse phase."""
        return self.gaussians_streamed * self.coarse_pass_rate

    @property
    def survivors(self) -> float:
        """Gaussian instances per frame that pass both filter phases."""
        return self.coarse_passed * self.fine_pass_rate_given_coarse

    @property
    def filtering_reduction(self) -> float:
        """Fraction of processed Gaussians removed before sorting/rendering."""
        if self.gaussians_streamed == 0:
            return 0.0
        return 1.0 - self.survivors / self.gaussians_streamed

    @property
    def survivors_per_voxel(self) -> float:
        """Mean sorted-list length per (group, voxel) instance."""
        instances = self.voxel_instances
        if instances == 0:
            return 0.0
        return self.survivors / instances

    # ------------------------------------------------------------------
    # Streaming DRAM fetch quantities (see module docstring)
    # ------------------------------------------------------------------
    @property
    def first_half_fetched(self) -> float:
        """Gaussian first halves fetched from DRAM per frame."""
        return self.visible_gaussians * VOXEL_FETCH_REUSE

    def second_half_fetched(self, use_coarse_filter: bool = True) -> float:
        """Gaussian second halves fetched from DRAM per frame.

        With the coarse filter, a Gaussian's second half is fetched if it
        passes the coarse test for at least one of the groups its voxel is
        processed against; without it, every streamed Gaussian is fetched.
        """
        if not use_coarse_filter:
            return self.visible_gaussians * VOXEL_FETCH_REUSE
        frame_level_pass = min(1.0, self.coarse_pass_rate * self.groups_per_voxel)
        return self.visible_gaussians * frame_level_pass * VOXEL_FETCH_REUSE

    # ------------------------------------------------------------------
    def with_group_size(self, group_size: int) -> "FullScaleWorkload":
        """A copy of the workload with a different pixel-group size."""
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        return replace(self, group_size=group_size)


def build_workload(
    descriptor: SceneDescriptor,
    tile_stats: RenderStats,
    projected: ProjectedGaussians,
    streaming_stats: StreamingStats,
    num_voxels: int,
    sim_width: int,
    sim_focal: float,
    group_size: int = DEFAULT_GROUP_SIZE,
    use_vq: bool = True,
    second_half_bytes_vq: float = 10.0,
    voxel_size: Optional[float] = None,
) -> FullScaleWorkload:
    """Derive the paper-scale workload of one scene.

    Parameters
    ----------
    descriptor:
        Registry entry with the full-scale Gaussian count and resolution.
    tile_stats:
        Statistics of a tile-centric render of the simulated scene.
    projected:
        The projection result of that render (radii / depth distribution).
    streaming_stats:
        Statistics of a streaming render of the simulated scene (per-ray
        traversal depth).
    num_voxels:
        Number of non-empty voxels of the simulated scene's grid.
    sim_width, sim_focal:
        Resolution and focal length the simulated statistics were measured
        at (needed to rescale the focal length to native resolution).
    group_size:
        Pixel-group edge of the streaming accelerator.
    use_vq / second_half_bytes_vq:
        Second-half encoding used by the streaming data layout.
    voxel_size:
        Voxel edge length (defaults to the scene's registry default).
    """
    full_width, full_height = descriptor.full_resolution
    resolution_ratio = full_width / sim_width
    focal_full = sim_focal * resolution_ratio

    valid = projected.valid
    if np.any(valid):
        mean_sq_radius_sim = float(np.mean(projected.radii[valid] ** 2))
        mean_depth = float(np.mean(projected.depths[valid]))
    else:
        mean_sq_radius_sim = 1.0
        mean_depth = max(descriptor.extent, 1.0)

    visible_fraction = tile_stats.num_projected / max(tile_stats.num_gaussians, 1)

    # Coverage-preserving radius rescaling (see module docstring).
    sim_image_pixels = (sim_width * sim_width) * (full_height / full_width)
    coverage = (
        tile_stats.num_projected * np.pi * mean_sq_radius_sim / max(sim_image_pixels, 1)
    )
    visible_full = descriptor.full_num_gaussians * visible_fraction
    mean_radius_full = float(
        np.sqrt(coverage * full_width * full_height / (np.pi * max(visible_full, 1.0)))
    )

    blend_efficiency = tile_stats.num_blended_fragments / max(
        tile_stats.num_tile_pairs * 16 * 16, 1
    )
    rays_with_voxels = max(streaming_stats.rays_sampled, 1)
    voxels_per_ray = streaming_stats.ordering_table_entries / rays_with_voxels

    return FullScaleWorkload(
        scene=descriptor.name,
        num_gaussians=descriptor.full_num_gaussians,
        width=full_width,
        height=full_height,
        num_voxels=num_voxels,
        voxel_size=float(voxel_size or descriptor.default_voxel_size),
        visible_fraction=visible_fraction,
        mean_depth=mean_depth,
        focal_px=focal_full,
        blend_efficiency=blend_efficiency,
        voxels_per_ray=voxels_per_ray,
        mean_radius_px=mean_radius_full,
        group_size=group_size,
        second_half_bytes_vq=second_half_bytes_vq if use_vq else 220.0,
        second_half_bytes_raw=220.0,
    )
