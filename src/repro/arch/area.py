"""Area model of the STREAMINGGS accelerator (Table I).

Per-unit areas are anchored to Table I of the paper (32 nm):

=====================  ==========  ================  ============
Unit                   Count       Area (total)      Area / unit
=====================  ==========  ================  ============
Voxel sorting unit     1           0.06 mm^2         0.06 mm^2
Hierarchical filter    4           0.79 mm^2         0.1975 mm^2
Sorting unit           2           0.04 mm^2         0.02 mm^2
Rendering unit         64          2.53 mm^2         0.0395 mm^2
SRAM (355 KB)          —           1.95 mm^2         —
Total                              5.37 mm^2
=====================  ==========  ================  ============

The HFU area is further split between its coarse-grained filter units
(CFUs, 55 MACs) and its fine-grained filter unit (FFU, 427 MACs plus the
RGB/conic datapath) in proportion to their datapath sizes, so the CFU/FFU
sensitivity sweep (Fig. 13) can also report the area overhead of larger
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arch.sram import SRAMModel, default_buffers, total_sram_area_mm2

#: Table I per-unit areas (mm^2).
VSU_AREA_MM2 = 0.06
SORT_UNIT_AREA_MM2 = 0.02
RENDER_UNIT_AREA_MM2 = 2.53 / 64

#: The default HFU (4 CFUs + 1 FFU) occupies 0.79/4 mm^2.  Datapath MAC
#: counts (55 vs 427) put roughly one third of that in the four CFUs and
#: two thirds in the FFU + decode path.
HFU_AREA_MM2 = 0.79 / 4
CFU_AREA_MM2 = HFU_AREA_MM2 * (1.0 / 3.0) / 4
FFU_AREA_MM2 = HFU_AREA_MM2 * (2.0 / 3.0)

#: Published GSCore area scaled to 32 nm (for the comparison in Sec. V-A).
GSCORE_AREA_MM2 = 5.53


@dataclass
class AreaBreakdown:
    """Per-component area of one accelerator configuration."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mm2(self) -> float:
        return float(sum(self.components.values()))

    def as_rows(self) -> list:
        """Rows ``(component, area)`` sorted as in Table I, with the total."""
        order = [
            "voxel_sorting_unit",
            "hierarchical_filtering_unit",
            "sorting_unit",
            "rendering_unit",
            "sram",
        ]
        rows = [(name, self.components[name]) for name in order if name in self.components]
        extra = [
            (name, area) for name, area in self.components.items() if name not in order
        ]
        return rows + extra + [("total", self.total_mm2)]


@dataclass(frozen=True)
class AreaModel:
    """Computes accelerator area as a function of unit counts."""

    buffers: Dict[str, SRAMModel] = field(default_factory=default_buffers)

    def breakdown(
        self,
        num_vsu: int = 1,
        num_hfu: int = 4,
        cfus_per_hfu: int = 4,
        ffus_per_hfu: int = 1,
        num_sort_units: int = 2,
        num_render_units: int = 64,
    ) -> AreaBreakdown:
        """Area breakdown for an accelerator configuration.

        The default arguments reproduce Table I.
        """
        if min(num_vsu, num_hfu, cfus_per_hfu, ffus_per_hfu, num_sort_units, num_render_units) <= 0:
            raise ValueError("all unit counts must be positive")
        hfu_area = num_hfu * (
            cfus_per_hfu * CFU_AREA_MM2 + ffus_per_hfu * FFU_AREA_MM2
        )
        return AreaBreakdown(
            components={
                "voxel_sorting_unit": num_vsu * VSU_AREA_MM2,
                "hierarchical_filtering_unit": hfu_area,
                "sorting_unit": num_sort_units * SORT_UNIT_AREA_MM2,
                "rendering_unit": num_render_units * RENDER_UNIT_AREA_MM2,
                "sram": total_sram_area_mm2(self.buffers),
            }
        )

    def table1(self) -> AreaBreakdown:
        """The default configuration's breakdown (Table I)."""
        return self.breakdown()
