"""Performance / energy model of the STREAMINGGS accelerator (Sec. IV-V).

The accelerator is a coarse-grained pipeline (Fig. 9): while one voxel's
Gaussians are being filtered, the previous voxel's survivors are being
sorted and rendered and the next voxel is being fetched from DRAM (double-
buffered input buffer).  At frame granularity this means the frame latency
is the maximum of the per-stage busy times (plus the un-hidden fraction of
the DRAM transfer), and the frame energy is the sum of the per-stage
dynamic energies plus DRAM, SRAM and static energy.

The ablation variants of Fig. 11 map onto configuration flags:

* ``use_vq=False, use_coarse_filter=False`` — "w/o VQ+CGF"
* ``use_vq=True,  use_coarse_filter=False`` — "w/o CGF"
* ``use_vq=True,  use_coarse_filter=True``  — STREAMINGGS (full)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.arch.area import AreaModel
from repro.arch.dram import DRAMModel, LPDDR3_4CH
from repro.arch.sram import SRAMModel, default_buffers
from repro.arch.technology import TECH_32NM, TechnologyParameters
from repro.arch.traffic import StreamingTraffic, streaming_traffic
from repro.arch.units import (
    BitonicSortingUnit,
    HierarchicalFilteringUnit,
    RenderingUnitArray,
    VoxelSortingUnit,
)
from repro.arch.workload import FullScaleWorkload

#: Bytes of on-chip state touched per blended fragment (sorted-list entry
#: read from the sorting buffer plus partial-pixel read-modify-write).
SRAM_BYTES_PER_FRAGMENT = 24

#: Bytes decoded from the codebook buffer per fine-filtered Gaussian.
SRAM_BYTES_PER_DECODE = 110


@dataclass(frozen=True)
class AcceleratorConfig:
    """Unit counts and feature flags of one accelerator configuration."""

    num_vsu: int = 1
    num_hfu: int = 4
    cfus_per_hfu: int = 4
    ffus_per_hfu: int = 1
    num_sort_units: int = 2
    num_render_units: int = 64
    group_size: int = 32
    use_vq: bool = True
    use_coarse_filter: bool = True
    #: Scales every on-chip buffer capacity (and hence SRAM area).  Below
    #: 1.0 the codebook buffer no longer holds the full VQ codebook, so a
    #: fraction of decodes miss and fall back to raw second-half fetches.
    sram_scale: float = 1.0
    #: Number of LPDDR3 channels; bandwidth scales linearly from the
    #: 25.6 GB/s-per-channel baseline of Table I's 4-channel part.
    dram_channels: int = 4
    # NOTE: ``group_size`` is the pixel-group edge the VSU orders voxels for
    # and the HFU filters against; 32 px reproduces the paper's filtering
    # effectiveness (Sec. III-B's 76.3 % reduction is measured against the
    # rendered image tile).

    def __post_init__(self) -> None:
        counts = (
            self.num_vsu,
            self.num_hfu,
            self.cfus_per_hfu,
            self.ffus_per_hfu,
            self.num_sort_units,
            self.num_render_units,
            self.group_size,
        )
        if min(counts) <= 0:
            raise ValueError("all unit counts must be positive")
        if not self.sram_scale > 0:
            raise ValueError(f"sram_scale must be > 0, got {self.sram_scale!r}")
        channels = self.dram_channels
        if channels < 1 or int(channels) != channels:
            raise ValueError(
                f"dram_channels must be a positive integer, got {channels!r}"
            )

    @classmethod
    def paper_default(cls) -> "AcceleratorConfig":
        """The configuration of Table I / Sec. V-A."""
        return cls()

    @classmethod
    def variant(cls, name: str) -> "AcceleratorConfig":
        """The ablation variants evaluated in Fig. 11."""
        if name in ("streaminggs", "full"):
            return cls()
        if name == "wo_cgf":
            return cls(use_coarse_filter=False)
        if name == "wo_vq_cgf":
            return cls(use_coarse_filter=False, use_vq=False)
        raise KeyError(f"unknown variant {name!r}")


@dataclass
class PerformanceReport:
    """Per-frame performance / energy report of one hardware model."""

    name: str
    frame_time_s: float
    energy_per_frame_j: float
    dram_bytes: float
    stage_cycles: Dict[str, float] = field(default_factory=dict)
    energy_breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def fps(self) -> float:
        return 1.0 / self.frame_time_s if self.frame_time_s > 0 else float("inf")

    @property
    def power_w(self) -> float:
        return self.energy_per_frame_j / self.frame_time_s if self.frame_time_s > 0 else 0.0

    def speedup_over(self, other: "PerformanceReport") -> float:
        """Speedup of this design over ``other`` (frame-time ratio)."""
        return other.frame_time_s / self.frame_time_s

    def energy_saving_over(self, other: "PerformanceReport") -> float:
        """Energy-saving factor of this design over ``other``."""
        return other.energy_per_frame_j / self.energy_per_frame_j


class StreamingGSAccelerator:
    """The STREAMINGGS accelerator performance / energy model."""

    def __init__(
        self,
        config: AcceleratorConfig = AcceleratorConfig(),
        tech: TechnologyParameters = TECH_32NM,
        dram: DRAMModel = LPDDR3_4CH,
        buffers: Dict[str, SRAMModel] = None,
    ) -> None:
        self.config = config
        self.tech = tech
        if int(config.dram_channels) != dram.channels:
            per_channel = dram.peak_bandwidth_bytes / dram.channels
            dram = replace(
                dram,
                name=f"{dram.name}-x{int(config.dram_channels)}",
                channels=int(config.dram_channels),
                peak_bandwidth_bytes=per_channel * int(config.dram_channels),
            )
        self.dram = dram
        if buffers is None:
            buffers = default_buffers()
            if config.sram_scale != 1.0:
                buffers = {
                    name: replace(
                        buf,
                        size_bytes=max(
                            1024, int(round(buf.size_bytes * config.sram_scale))
                        ),
                    )
                    for name, buf in buffers.items()
                }
        self.buffers = buffers
        self.vsu = VoxelSortingUnit(tech=tech)
        self.hfu = HierarchicalFilteringUnit(
            tech=tech, num_cfu=config.cfus_per_hfu, num_ffu=config.ffus_per_hfu
        )
        self.sorter = BitonicSortingUnit(tech=tech)
        self.renderer = RenderingUnitArray(tech=tech, num_units=config.num_render_units)
        self.area_model = AreaModel(buffers=self.buffers)

    # ------------------------------------------------------------------
    def area_mm2(self) -> float:
        """Total accelerator area for this configuration."""
        return self.area_model.breakdown(
            num_vsu=self.config.num_vsu,
            num_hfu=self.config.num_hfu,
            cfus_per_hfu=self.config.cfus_per_hfu,
            ffus_per_hfu=self.config.ffus_per_hfu,
            num_sort_units=self.config.num_sort_units,
            num_render_units=self.config.num_render_units,
        ).total_mm2

    def traffic(self, workload: FullScaleWorkload) -> StreamingTraffic:
        """Per-frame DRAM traffic under this configuration."""
        return self._traffic(workload.with_group_size(self.config.group_size))

    def _traffic(self, adjusted: FullScaleWorkload) -> StreamingTraffic:
        config = self.config
        traffic = streaming_traffic(
            adjusted,
            use_vq=config.use_vq,
            use_coarse_filter=config.use_coarse_filter,
        )
        if config.use_vq and config.sram_scale < 1.0:
            # An undersized codebook buffer covers only ``sram_scale`` of
            # the VQ codebook; decodes that miss fall back to fetching the
            # raw (uncompressed) second half of those Gaussians from DRAM.
            miss = 1.0 - max(0.0, min(1.0, config.sram_scale))
            fetched = adjusted.second_half_fetched(config.use_coarse_filter)
            extra = miss * fetched * (
                adjusted.second_half_bytes_raw - adjusted.second_half_bytes_vq
            )
            traffic.second_half_bytes += extra
        return traffic

    # ------------------------------------------------------------------
    def evaluate(self, workload: FullScaleWorkload) -> PerformanceReport:
        """Per-frame latency and energy for one scene workload."""
        config = self.config
        adjusted = workload.with_group_size(config.group_size)

        streamed = adjusted.gaussians_streamed
        if config.use_coarse_filter:
            coarse_tested = streamed
            fine_tested = adjusted.coarse_passed
        else:
            coarse_tested = 0.0
            fine_tested = streamed
        # The survivors reaching sorting/rendering are the same either way:
        # without the coarse filter the fine filter performs the rejection.
        survivors = adjusted.survivors
        fragments = adjusted.blended_fragments

        # --- stage busy times (cycles) ---------------------------------
        vsu_cycles = self.vsu.cycles(
            adjusted.num_groups, adjusted.voxels_per_ray, adjusted.voxels_per_group
        ) / config.num_vsu
        hfu_cycles = self.hfu.cycles(
            coarse_tested / config.num_hfu, fine_tested / config.num_hfu
        )
        num_voxel_lists = adjusted.num_groups * adjusted.voxels_per_group
        mean_list = survivors / max(num_voxel_lists, 1.0)
        sort_cycles = self.sorter.cycles(num_voxel_lists, mean_list) / config.num_sort_units
        render_cycles = self.renderer.cycles(fragments)

        stage_cycles = {
            "vsu": vsu_cycles,
            "hfu": hfu_cycles,
            "sorting": sort_cycles,
            "rendering": render_cycles,
        }
        compute_time = max(stage_cycles.values()) * self.tech.cycle_time_s

        traffic = self._traffic(adjusted)
        dram_time = self.dram.transfer_time_s(traffic.total_bytes)
        # Voxel fetches are double-buffered, so DRAM time is overlapped with
        # compute; the frame latency is the slower of the two plus a small
        # fill/drain overhead per pixel group.
        fill_drain = adjusted.num_groups * 64 * self.tech.cycle_time_s
        frame_time = max(compute_time, dram_time) + fill_drain

        # --- energy ------------------------------------------------------
        vsu_energy = self.vsu.energy_j(
            adjusted.num_groups, adjusted.voxels_per_ray, adjusted.voxels_per_group
        )
        hfu_energy = self.hfu.energy_j(coarse_tested, fine_tested)
        sort_energy = self.sorter.energy_j(num_voxel_lists, mean_list)
        render_energy = self.renderer.energy_j(fragments)
        dram_energy = self.dram.transfer_energy_j(traffic.total_bytes)
        sram_bytes = (
            fragments * SRAM_BYTES_PER_FRAGMENT
            + (fine_tested * SRAM_BYTES_PER_DECODE if config.use_vq else 0.0)
            + traffic.first_half_bytes  # staged through the input buffer
        )
        sram_energy = sram_bytes * self.tech.sram_energy_per_byte_j
        static_energy = self.tech.static_power_w * frame_time

        energy_breakdown = {
            "vsu": vsu_energy,
            "hfu": hfu_energy,
            "sorting": sort_energy,
            "rendering": render_energy,
            "sram": sram_energy,
            "dram": dram_energy,
            "static": static_energy,
        }
        return PerformanceReport(
            name="streaminggs"
            if config.use_vq and config.use_coarse_filter
            else ("wo_cgf" if config.use_vq else "wo_vq_cgf"),
            frame_time_s=frame_time,
            energy_per_frame_j=float(sum(energy_breakdown.values())),
            dram_bytes=traffic.total_bytes,
            stage_cycles=stage_cycles,
            energy_breakdown=energy_breakdown,
        )
