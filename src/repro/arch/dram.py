"""LPDDR3 DRAM model (Micron 16 Gb, 4 channels, per the paper's setup).

The model exposes the two quantities the performance/energy models need:
sustained bandwidth (for transfer latency) and energy per byte (for traffic
energy), plus a small helper for burst-rounding transfer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DRAMModel:
    """A DRAM subsystem characterised by bandwidth and energy per byte."""

    name: str
    channels: int
    peak_bandwidth_bytes: float     # aggregate peak bytes/s
    efficiency: float               # sustained fraction of peak (row hits, refresh)
    energy_per_byte_j: float
    burst_bytes: int = 32

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if self.peak_bandwidth_bytes <= 0:
            raise ValueError("peak bandwidth must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.energy_per_byte_j <= 0:
            raise ValueError("energy per byte must be positive")

    @property
    def sustained_bandwidth_bytes(self) -> float:
        """Sustained bytes/s after accounting for access efficiency."""
        return self.peak_bandwidth_bytes * self.efficiency

    def transfer_time_s(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` at sustained bandwidth."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.sustained_bandwidth_bytes

    def transfer_energy_j(self, num_bytes: float) -> float:
        """Energy to move ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.energy_per_byte_j

    def round_burst(self, num_bytes: float) -> int:
        """Round a transfer up to the burst granularity."""
        if num_bytes <= 0:
            return 0
        return int(np.ceil(num_bytes / self.burst_bytes) * self.burst_bytes)

    def required_bandwidth(self, bytes_per_frame: float, fps: float) -> float:
        """Bandwidth (bytes/s) needed to sustain ``fps`` with this traffic."""
        if fps <= 0:
            raise ValueError("fps must be positive")
        return bytes_per_frame * fps


#: The accelerator's DRAM subsystem.  Energy per byte follows the Micron
#: LPDDR3 power-calculator regime the paper cites (including activation and
#: background energy); the package bandwidth is set to the same 102.4 GB/s
#: class as the mobile-SoC baseline so that — as in the paper — the voxel
#: streaming is fully overlapped by the compute pipeline and vector
#: quantization shows up as an energy optimisation rather than a latency
#: one ("VQ has a minimal impact on performance", Sec. V-C).  Streaming
#: voxel reads are long sequential bursts, hence the high sustained
#: efficiency.
LPDDR3_4CH = DRAMModel(
    name="mobile-dram-4ch",
    channels=4,
    peak_bandwidth_bytes=102.4e9,
    efficiency=0.85,
    energy_per_byte_j=80.0e-12,
)

#: The Orin NX memory system (128-bit LPDDR5, 102.4 GB/s) used when the
#: GPU baseline's traffic is expressed as a bandwidth requirement (Fig. 4).
ORIN_NX_DRAM = DRAMModel(
    name="orin-nx-lpddr5",
    channels=8,
    peak_bandwidth_bytes=102.4e9,
    efficiency=0.72,
    energy_per_byte_j=80.0e-12,
)
