"""Technology constants for the 32 nm design point.

The paper synthesises the accelerator with Synopsys/Cadence tools on TSMC
32 nm, estimates SRAM with CACTI 7.0 and DRAM energy with Micron's power
calculators.  None of those tools are available here, so this module
collects per-operation energy, per-unit area and clocking constants that
reproduce the paper's published aggregates (Table I area, the 45.7x/62.9x
speedup/energy headlines) when combined with the workload counts.  Every
constant is documented with the aggregate it was anchored to.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyParameters:
    """Per-operation constants of one technology / design point."""

    name: str
    clock_hz: float
    #: Energy of one multiply-accumulate in the filtering / projection
    #: datapath (fp16-ish precision typical of rendering accelerators).
    mac_energy_j: float
    #: Energy of one blending operation in the rendering unit (a handful of
    #: MACs plus the exponent evaluation).
    blend_energy_j: float
    #: Energy of one compare-exchange in the bitonic sorting network.
    sort_energy_j: float
    #: Energy per byte of on-chip SRAM access (input buffer / codebook).
    sram_energy_per_byte_j: float
    #: Energy per byte of LPDDR3 DRAM traffic (interface + core, per the
    #: Micron power-calculator regime the paper cites).
    dram_energy_per_byte_j: float
    #: Static (leakage + clock tree) power of the accelerator.
    static_power_w: float

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.clock_hz


#: The paper's design point: TSMC 32 nm at 1 GHz.  The per-operation
#: energies include the datapath's register/control overhead (hence they are
#: a few x the bare-ALU energy at this node), and the static power includes
#: the LPDDR3 background/refresh power of the 4-channel DRAM subsystem.
TECH_32NM = TechnologyParameters(
    name="tsmc-32nm-1GHz",
    clock_hz=1.0e9,
    mac_energy_j=2.5e-12,
    blend_energy_j=18.0e-12,
    sort_energy_j=2.0e-12,
    sram_energy_per_byte_j=2.5e-12,
    dram_energy_per_byte_j=80.0e-12,
    static_power_w=1.0,
)


#: Nvidia Orin NX operating point used by the GPU baseline model.
@dataclass(frozen=True)
class GPUParameters:
    """Published / measured characteristics of the mobile GPU baseline."""

    name: str
    peak_flops: float            # FP32 TFLOPS of the Ampere GPU
    dram_bandwidth_bytes: float  # bytes/s
    compute_efficiency: float    # achieved fraction of peak on 3DGS kernels
    bandwidth_efficiency: float  # achieved fraction of peak DRAM bandwidth
    board_power_w: float         # power draw while rendering
    dram_energy_per_byte_j: float
    frame_overhead_s: float      # per-frame launch / driver overhead


#: The compute efficiency and per-frame overhead are calibrated so the six
#: evaluation scenes land in the 2-9 FPS band the paper measures in Fig. 3:
#: the 3DGS CUDA kernels on a mobile Ampere part achieve only a few percent
#: of peak FP32 throughput (divergent per-tile loops, gather-heavy access),
#: and each frame pays tens of milliseconds of sorting-launch / sync
#: overhead.
ORIN_NX = GPUParameters(
    name="nvidia-orin-nx",
    peak_flops=3.7e12,
    dram_bandwidth_bytes=102.4e9,
    compute_efficiency=0.025,
    bandwidth_efficiency=0.62,
    board_power_w=14.0,
    dram_energy_per_byte_j=40.0e-12,
    frame_overhead_s=40.0e-3,
)
