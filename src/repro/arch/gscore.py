"""Model of the GSCore accelerator baseline (Lee et al., ASPLOS 2024).

GSCore is the state-of-the-art tile-centric 3DGS accelerator the paper
compares against (2.1x speedup / 2.3x energy claimed over it).  Following
the paper, we re-implement GSCore from its published specification:

* a Gaussian shape-analysis / culling unit that projects every Gaussian and
  performs an OBB-based intersection test, reducing the tile duplication
  relative to the naive AABB binning;
* bitonic sorting units that sort each tile's list on-chip, so the sort
  touches DRAM only once per (tile, Gaussian) pair instead of the GPU's
  multi-pass radix sort;
* a volume-rendering unit array identical to the one STREAMINGGS adopts.

GSCore keeps the tile-centric dataflow, so the projected per-Gaussian
features and the duplicated pair list still travel through DRAM between
stages — that intermediate traffic is exactly what STREAMINGGS eliminates,
and it is why GSCore ends up partially memory bound on large scenes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import PerformanceReport
from repro.arch.dram import DRAMModel, ORIN_NX_DRAM
from repro.arch.technology import TECH_32NM, TechnologyParameters
from repro.arch.traffic import (
    PAIR_BYTES,
    PROJECTION_READ_BYTES,
    PROJECTION_WRITE_BYTES,
    TILE_PIXEL_WRITE_BYTES,
)
from repro.arch.units import (
    BitonicSortingUnit,
    RenderingUnitArray,
)
from repro.arch.workload import FULL_SCALE_TILE, FullScaleWorkload
from repro.core.hierarchical_filter import FINE_FILTER_MACS

#: Fraction of AABB tile pairs that survive GSCore's OBB intersection test
#: (the shape-aware test removes ~30 % of the duplicated pairs).
OBB_PAIR_REDUCTION = 0.7

#: Per-Gaussian features GSCore re-reads from DRAM per surviving pair during
#: rendering (it keeps a feature cache, so only a compact record travels).
GSCORE_RENDER_FEATURE_BYTES = 16


@dataclass(frozen=True)
class GSCoreConfig:
    """Unit counts of the GSCore configuration (its published design point)."""

    num_culling_units: int = 4     # Gaussian shape-analysis / projection lanes
    num_sort_units: int = 4
    num_render_units: int = 64
    projection_cycles_per_gaussian: float = 1.0


class GSCoreModel:
    """Performance / energy model of the GSCore baseline."""

    def __init__(
        self,
        config: GSCoreConfig = GSCoreConfig(),
        tech: TechnologyParameters = TECH_32NM,
        dram: DRAMModel = ORIN_NX_DRAM,
    ) -> None:
        self.config = config
        self.tech = tech
        self.dram = dram
        self.sorter = BitonicSortingUnit(tech=tech)
        self.renderer = RenderingUnitArray(tech=tech, num_units=config.num_render_units)

    # ------------------------------------------------------------------
    def traffic_bytes(self, workload: FullScaleWorkload) -> float:
        """Per-frame DRAM traffic of GSCore's tile-centric dataflow."""
        pairs = workload.num_pairs * OBB_PAIR_REDUCTION
        model_read = workload.num_gaussians * PROJECTION_READ_BYTES
        feature_write = workload.visible_gaussians * PROJECTION_WRITE_BYTES
        # The pair list is written once after projection and read once by the
        # (on-chip) sorting / rendering stages.
        pair_traffic = pairs * PAIR_BYTES * 2
        render_reads = pairs * GSCORE_RENDER_FEATURE_BYTES
        pixel_writes = workload.num_pixels * TILE_PIXEL_WRITE_BYTES
        return model_read + feature_write + pair_traffic + render_reads + pixel_writes

    # ------------------------------------------------------------------
    def evaluate(self, workload: FullScaleWorkload) -> PerformanceReport:
        """Per-frame latency and energy of GSCore for one scene."""
        config = self.config
        pairs = workload.num_pairs * OBB_PAIR_REDUCTION
        fragments = workload.blended_fragments

        projection_cycles = (
            workload.num_gaussians * config.projection_cycles_per_gaussian
        ) / config.num_culling_units
        pairs_per_tile = pairs / max(workload.num_tiles, 1)
        sort_cycles = (
            self.sorter.cycles(workload.num_tiles, pairs_per_tile) / config.num_sort_units
        )
        render_cycles = self.renderer.cycles(fragments)
        stage_cycles = {
            "projection": projection_cycles,
            "sorting": sort_cycles,
            "rendering": render_cycles,
        }
        compute_time = max(stage_cycles.values()) * self.tech.cycle_time_s

        traffic = self.traffic_bytes(workload)
        dram_time = self.dram.transfer_time_s(traffic)
        fill_drain = workload.num_tiles * 32 * self.tech.cycle_time_s
        frame_time = max(compute_time, dram_time) + fill_drain

        projection_energy = (
            workload.num_gaussians * FINE_FILTER_MACS * self.tech.mac_energy_j
        )
        sort_energy = self.sorter.energy_j(workload.num_tiles, pairs_per_tile)
        render_energy = self.renderer.energy_j(fragments)
        sram_energy = (
            fragments * 24 + pairs * PAIR_BYTES
        ) * self.tech.sram_energy_per_byte_j
        dram_energy = self.dram.transfer_energy_j(traffic)
        static_energy = self.tech.static_power_w * frame_time
        energy_breakdown = {
            "projection": projection_energy,
            "sorting": sort_energy,
            "rendering": render_energy,
            "sram": sram_energy,
            "dram": dram_energy,
            "static": static_energy,
        }
        return PerformanceReport(
            name="gscore",
            frame_time_s=frame_time,
            energy_per_frame_j=float(sum(energy_breakdown.values())),
            dram_bytes=traffic,
            stage_cycles=stage_cycles,
            energy_breakdown=energy_breakdown,
        )
