"""CACTI-style SRAM area/energy estimates at 32 nm.

The paper sizes its 355 KB of on-chip buffers with CACTI 7.0; this model
reproduces the same aggregate (1.95 mm^2 for 355 KB, Table I) with a simple
linear area density plus a per-access energy that scales weakly with the
macro size, which is the regime CACTI reports for small scratchpads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Area density anchored to Table I: 1.95 mm^2 for 355 KB -> ~5.5 um^2/byte.
AREA_PER_BYTE_MM2 = 1.95 / (355 * 1024)

#: Baseline dynamic energy per byte accessed for a 16 KB macro at 32 nm.
BASE_ENERGY_PER_BYTE_J = 0.6e-12

#: Reference macro size for the energy scaling law.
REFERENCE_MACRO_BYTES = 16 * 1024


@dataclass(frozen=True)
class SRAMModel:
    """One on-chip SRAM buffer."""

    name: str
    size_bytes: int
    banks: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.banks <= 0:
            raise ValueError("banks must be positive")

    @property
    def size_kb(self) -> float:
        return self.size_bytes / 1024.0

    @property
    def area_mm2(self) -> float:
        """Macro area (linear in capacity at this size range)."""
        return self.size_bytes * AREA_PER_BYTE_MM2

    @property
    def energy_per_byte_j(self) -> float:
        """Dynamic energy per byte accessed.

        Grows with the square root of the bank size (longer bit/word lines),
        which matches CACTI's trend for small scratchpads.
        """
        bank_bytes = self.size_bytes / self.banks
        scaling = np.sqrt(max(bank_bytes, 1.0) / REFERENCE_MACRO_BYTES)
        return BASE_ENERGY_PER_BYTE_J * float(scaling)

    def access_energy_j(self, num_bytes: float) -> float:
        """Energy of accessing ``num_bytes`` (reads and writes treated alike)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.energy_per_byte_j


def default_buffers() -> dict:
    """The paper's on-chip buffer configuration (Sec. V-A).

    A double-buffered 16 KB input buffer, a 250 KB codebook buffer and
    89 KB of intermediate buffers, totalling 355 KB.
    """
    return {
        "input_buffer": SRAMModel("input_buffer", 16 * 1024, banks=2),
        "codebook_buffer": SRAMModel("codebook_buffer", 250 * 1024, banks=4),
        "intermediate_buffer": SRAMModel("intermediate_buffer", 89 * 1024, banks=4),
    }


def total_sram_bytes(buffers: dict) -> int:
    """Total capacity of a buffer configuration."""
    return sum(buffer.size_bytes for buffer in buffers.values())


def total_sram_area_mm2(buffers: dict) -> float:
    """Total area of a buffer configuration."""
    return sum(buffer.area_mm2 for buffer in buffers.values())
