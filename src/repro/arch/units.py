"""Latency / energy models of the accelerator's functional units (Fig. 9/10).

Each unit model answers two questions for a per-frame workload: how many
cycles does the unit need (assuming its internal pipelining sustains one
operation per lane per cycle), and how much dynamic energy do those
operations consume.  The accelerator model combines the units into a
coarse-grained pipeline where voxel streaming, filtering, sorting and
rendering overlap, so the frame latency is set by the slowest stage plus
the DRAM transfer time not hidden by double buffering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.technology import TECH_32NM, TechnologyParameters
from repro.core.hierarchical_filter import COARSE_FILTER_MACS, FINE_FILTER_MACS

#: MACs of a full (unfiltered) projection per Gaussian on the GPU / GSCore
#: path — the fine-filter datapath plus SH colour evaluation.
FULL_PROJECTION_MACS = FINE_FILTER_MACS + 120

#: Arithmetic operations per blended fragment (conic evaluation, exponent,
#: alpha blending) — used for both GPU FLOP counts and render-unit energy.
BLEND_OPS_PER_FRAGMENT = 60

#: Cycles per ray-sample the VSU spends identifying a voxel and renaming it.
VSU_CYCLES_PER_SAMPLE = 1

#: Cycles per DAG edge for the in-degree table update during topological sort.
VSU_CYCLES_PER_EDGE = 1


@dataclass(frozen=True)
class VoxelSortingUnit:
    """The VSU: ray sampling, renaming, adjacency and topological sort."""

    tech: TechnologyParameters = TECH_32NM
    rays_per_group: int = 64       # the VSU samples a subset of the group's rays
    lanes: int = 4                 # parallel ray-sample lanes

    def cycles(self, num_groups: float, voxels_per_ray: float, voxels_per_group: float) -> float:
        """Cycles to order the voxels of every pixel group of one frame."""
        sample_cycles = (
            num_groups * self.rays_per_group * voxels_per_ray * VSU_CYCLES_PER_SAMPLE
        ) / self.lanes
        # Adjacency construction + Kahn sort touch every (voxel, successor)
        # pair once; the dependency graph is sparse (~2 edges per voxel).
        sort_cycles = num_groups * voxels_per_group * 2.0 * VSU_CYCLES_PER_EDGE
        return sample_cycles + sort_cycles

    def energy_j(self, num_groups: float, voxels_per_ray: float, voxels_per_group: float) -> float:
        """Dynamic energy: each sample / table update costs about one MAC."""
        operations = (
            num_groups * self.rays_per_group * voxels_per_ray
            + num_groups * voxels_per_group * 2.0
        )
        return operations * self.tech.mac_energy_j


@dataclass(frozen=True)
class HierarchicalFilteringUnit:
    """One HFU: ``num_cfu`` coarse filter lanes and ``num_ffu`` fine lanes."""

    tech: TechnologyParameters = TECH_32NM
    num_cfu: int = 4
    num_ffu: int = 1
    #: Cycles per Gaussian in one CFU lane (55 MACs, fully pipelined: one
    #: Gaussian per cycle of initiation interval).
    cfu_cycles_per_gaussian: float = 1.0
    #: Cycles per Gaussian in one FFU lane: the 427-MAC precise projection
    #: plus codebook decode and RGB/conic computation is implemented on a
    #: narrower datapath, giving a 2-cycle initiation interval.  This is the
    #: ratio that makes the coarse filter's early rejection matter for
    #: end-to-end latency (Fig. 11's "w/o CGF" ablation).
    ffu_cycles_per_gaussian: float = 2.0

    def coarse_cycles(self, gaussians: float) -> float:
        return gaussians * self.cfu_cycles_per_gaussian / self.num_cfu

    def fine_cycles(self, gaussians: float) -> float:
        return gaussians * self.ffu_cycles_per_gaussian / self.num_ffu

    def cycles(self, coarse_gaussians: float, fine_gaussians: float) -> float:
        """The HFU is internally pipelined: coarse and fine overlap."""
        return max(self.coarse_cycles(coarse_gaussians), self.fine_cycles(fine_gaussians))

    def energy_j(self, coarse_gaussians: float, fine_gaussians: float) -> float:
        macs = (
            coarse_gaussians * COARSE_FILTER_MACS
            + fine_gaussians * FINE_FILTER_MACS
        )
        return macs * self.tech.mac_energy_j


@dataclass(frozen=True)
class BitonicSortingUnit:
    """The (simplified) bitonic sorting unit adopted from GSCore."""

    tech: TechnologyParameters = TECH_32NM
    comparators: int = 32  # compare-exchange operations per cycle

    def cycles_for_list(self, length: float) -> float:
        """Cycles to sort one list of ``length`` elements."""
        if length <= 1:
            return 0.0
        n = 2 ** int(np.ceil(np.log2(max(length, 2))))
        stages = int(np.log2(n))
        operations = n * stages * (stages + 1) / 4
        return operations / self.comparators

    def cycles(self, num_lists: float, mean_length: float) -> float:
        """Cycles to sort ``num_lists`` lists of ``mean_length`` each."""
        return num_lists * self.cycles_for_list(mean_length)

    def energy_j(self, num_lists: float, mean_length: float) -> float:
        if mean_length <= 1:
            return 0.0
        n = 2 ** int(np.ceil(np.log2(max(mean_length, 2))))
        stages = int(np.log2(n))
        operations = num_lists * n * stages * (stages + 1) / 4
        return operations * self.tech.sort_energy_j


@dataclass(frozen=True)
class RenderingUnitArray:
    """The array of volume-rendering units (identical to GSCore's)."""

    tech: TechnologyParameters = TECH_32NM
    num_units: int = 64
    #: Sustained blending throughput per unit: alpha-test misses and
    #: early-termination bubbles keep each unit below one useful fragment
    #: per cycle (matches GSCore's reported rendering-unit utilisation).
    fragments_per_unit_per_cycle: float = 0.67

    def cycles(self, fragments: float) -> float:
        return fragments / (self.num_units * self.fragments_per_unit_per_cycle)

    def energy_j(self, fragments: float) -> float:
        return fragments * self.tech.blend_energy_j
