"""DRAM traffic models of the tile-centric and streaming pipelines.

The tile-centric model reproduces the characterization of Sec. II-B /
Fig. 2 / Fig. 4: per-frame traffic is dominated by the intermediate data
written and re-read between the projection, sorting and rendering stages.
The streaming model captures the memory-centric pipeline of Sec. III: the
only reads are the (two-half, optionally vector-quantised) voxel streams
and the only writes are the final pixel values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.workload import FullScaleWorkload

#: Bytes read per Gaussian during projection (59 float32 parameters).
PROJECTION_READ_BYTES = 59 * 4

#: Bytes of processed per-Gaussian features written back after projection
#: (2D mean, depth, conic, RGB, opacity, radius, tile range).
PROJECTION_WRITE_BYTES = 56

#: Bytes per duplicated (tile, depth | Gaussian) key/value pair.
PAIR_BYTES = 12

#: Radix-sort passes over the pair array (each pass reads and writes it).
#: The GPU implementation sorts 64-bit (tile | depth) keys 8 bits at a time.
RADIX_PASSES = 8

#: Bytes of per-Gaussian features re-read from DRAM per pair during
#: rendering (compact conic / colour / opacity record; the rest hits cache).
RENDER_FEATURE_BYTES = 20

#: Bytes written per pixel by the tile-centric pipeline (RGBA8 + depth).
TILE_PIXEL_WRITE_BYTES = 8


@dataclass
class TileCentricTraffic:
    """Per-frame, per-stage DRAM bytes of the tile-centric pipeline."""

    projection_bytes: float
    sorting_bytes: float
    rendering_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.projection_bytes + self.sorting_bytes + self.rendering_bytes

    initial_model_read_bytes: float = 0.0
    final_pixel_write_bytes: float = 0.0

    @property
    def intermediate_bytes(self) -> float:
        """Traffic attributable to inter-stage intermediate data.

        Everything except the initial model read and the final pixel write —
        the quantity the paper reports as 85 % of total traffic.
        """
        return (
            self.total_bytes
            - self.initial_model_read_bytes
            - self.final_pixel_write_bytes
        )

    def breakdown(self) -> Dict[str, float]:
        """Stage-name to bytes mapping (Fig. 2 / Fig. 4 series)."""
        return {
            "projection": self.projection_bytes,
            "sorting": self.sorting_bytes,
            "rendering": self.rendering_bytes,
        }

    def fractions(self) -> Dict[str, float]:
        """Stage shares of total traffic."""
        total = max(self.total_bytes, 1e-12)
        return {name: value / total for name, value in self.breakdown().items()}

    def required_bandwidth(self, fps: float = 90.0) -> float:
        """Bytes/s needed to sustain ``fps`` (Fig. 4's y-axis)."""
        return self.total_bytes * fps


def tile_centric_traffic(workload: FullScaleWorkload) -> TileCentricTraffic:
    """Per-stage DRAM traffic of the tile-centric pipeline for one frame."""
    model_read = workload.num_gaussians * PROJECTION_READ_BYTES
    projection = (
        model_read
        + workload.visible_gaussians * PROJECTION_WRITE_BYTES
        + workload.num_pairs * PAIR_BYTES  # key/value generation write
    )
    sorting = workload.num_pairs * PAIR_BYTES * 2 * RADIX_PASSES
    pixel_writes = workload.num_pixels * TILE_PIXEL_WRITE_BYTES
    rendering = (
        workload.num_pairs * (4 + RENDER_FEATURE_BYTES) + pixel_writes
    )
    return TileCentricTraffic(
        projection_bytes=projection,
        sorting_bytes=sorting,
        rendering_bytes=rendering,
        initial_model_read_bytes=model_read,
        final_pixel_write_bytes=pixel_writes,
    )


@dataclass
class StreamingTraffic:
    """Per-frame DRAM bytes of the memory-centric streaming pipeline."""

    first_half_bytes: float
    second_half_bytes: float
    ordering_metadata_bytes: float
    pixel_write_bytes: float

    @property
    def total_bytes(self) -> float:
        return (
            self.first_half_bytes
            + self.second_half_bytes
            + self.ordering_metadata_bytes
            + self.pixel_write_bytes
        )

    @property
    def intermediate_bytes(self) -> float:
        """Inter-stage intermediate traffic — zero by construction."""
        return 0.0

    def breakdown(self) -> Dict[str, float]:
        return {
            "first_half": self.first_half_bytes,
            "second_half": self.second_half_bytes,
            "ordering_metadata": self.ordering_metadata_bytes,
            "pixel_writes": self.pixel_write_bytes,
        }

    def required_bandwidth(self, fps: float = 90.0) -> float:
        return self.total_bytes * fps


def streaming_traffic(
    workload: FullScaleWorkload,
    use_vq: bool = True,
    use_coarse_filter: bool = True,
) -> StreamingTraffic:
    """Per-frame DRAM traffic of the streaming pipeline for one frame.

    The first half of every visible Gaussian is fetched (approximately) once
    per frame; the second half is fetched only for Gaussians that pass the
    coarse filter for at least one pixel group.  Without the coarse filter
    every visible Gaussian's second half is fetched; without VQ it is
    fetched uncompressed — these are the "w/o CGF" and "w/o VQ+CGF"
    ablations of Fig. 11.
    """
    first_half = workload.first_half_fetched * workload.first_half_bytes
    second_half_count = workload.second_half_fetched(use_coarse_filter)
    bytes_per_second_half = (
        workload.second_half_bytes_vq if use_vq else workload.second_half_bytes_raw
    )
    second_half = second_half_count * bytes_per_second_half
    # Voxel ordering metadata: one renamed voxel id per (group, traversed
    # voxel) entry.
    ordering = workload.num_groups * workload.voxels_per_group * 4.0
    pixels = workload.num_pixels * workload.pixel_write_bytes
    return StreamingTraffic(
        first_half_bytes=first_half,
        second_half_bytes=second_half,
        ordering_metadata_bytes=ordering,
        pixel_write_bytes=pixels,
    )
