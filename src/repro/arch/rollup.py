"""Fleet-scale cost rollup over per-frame architecture figures.

The paper characterises one device (Fig. 2's traffic breakdown, Fig. 4's
bandwidth-vs-fps requirement).  A render fleet serves many request classes
at once — different scenes, resolutions and compression settings — so the
datacenter-scale question is the *sum over classes* of per-frame cost
times offered frame rate.  This module performs that rollup: each
:class:`ClassCost` scales one class's per-frame figures (frame time,
energy, DRAM bytes) by the frames it was served over an observation
window, and :func:`fleet_rollup` aggregates classes into fleet totals —
aggregate bandwidth demand, mean power, and the number of devices /
DRAM channels needed to sustain the offered load.

All rates are derived from an explicit observation window rather than an
assumed steady state, so the rollup composes directly with the trace
replay in :mod:`repro.fleet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

from repro.arch.accelerator import PerformanceReport
from repro.arch.dram import LPDDR3_4CH

#: Sustained bytes/s of one LPDDR3 channel — the granularity Fig. 4's
#: bandwidth requirements are provisioned in.
BYTES_PER_DRAM_CHANNEL = LPDDR3_4CH.sustained_bandwidth_bytes / LPDDR3_4CH.channels


@dataclass(frozen=True)
class ClassCost:
    """One request class's cost over an observation window."""

    name: str
    frames: float
    window_s: float
    frame_time_s: float
    energy_per_frame_j: float
    dram_bytes_per_frame: float

    def __post_init__(self) -> None:
        if self.frames < 0:
            raise ValueError("frames must be non-negative")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")

    @property
    def offered_fps(self) -> float:
        """Frame rate this class demanded over the window."""
        return self.frames / self.window_s

    @property
    def dram_bytes_total(self) -> float:
        return self.frames * self.dram_bytes_per_frame

    @property
    def required_bandwidth_bytes(self) -> float:
        """Sustained bytes/s needed to serve this class (Fig. 4 axis)."""
        return self.dram_bytes_per_frame * self.offered_fps

    @property
    def energy_j(self) -> float:
        return self.frames * self.energy_per_frame_j

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / self.window_s

    @property
    def device_seconds(self) -> float:
        """Accelerator busy time consumed rendering this class's frames."""
        return self.frames * self.frame_time_s

    @property
    def devices_required(self) -> float:
        """Accelerators needed to sustain the offered rate (utilisation 1)."""
        return self.device_seconds / self.window_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "frames": float(self.frames),
            "window_s": float(self.window_s),
            "offered_fps": self.offered_fps,
            "frame_time_ms": self.frame_time_s * 1e3,
            "energy_per_frame_mj": self.energy_per_frame_j * 1e3,
            "dram_mb_per_frame": self.dram_bytes_per_frame / 1e6,
            "dram_gb_total": self.dram_bytes_total / 1e9,
            "required_bandwidth_gbs": self.required_bandwidth_bytes / 1e9,
            "energy_j": self.energy_j,
            "mean_power_w": self.mean_power_w,
            "devices_required": self.devices_required,
        }


def class_cost(
    name: str, report: PerformanceReport, frames: float, window_s: float
) -> ClassCost:
    """Roll one hardware report up to a class's offered load."""
    return ClassCost(
        name=name,
        frames=frames,
        window_s=window_s,
        frame_time_s=report.frame_time_s,
        energy_per_frame_j=report.energy_per_frame_j,
        dram_bytes_per_frame=report.dram_bytes,
    )


def class_cost_from_metrics(
    name: str, metrics: Mapping[str, float], frames: float, window_s: float
) -> ClassCost:
    """Roll up from a session result's metrics dict (run_point units)."""
    return ClassCost(
        name=name,
        frames=frames,
        window_s=window_s,
        frame_time_s=float(metrics["frame_time_ms"]) * 1e-3,
        energy_per_frame_j=float(metrics["energy_per_frame_mj"]) * 1e-3,
        dram_bytes_per_frame=float(metrics["dram_mb_per_frame"]) * 1e6,
    )


@dataclass(frozen=True)
class FleetCost:
    """Fleet totals over all request classes."""

    classes: Tuple[ClassCost, ...]

    @property
    def window_s(self) -> float:
        return max((c.window_s for c in self.classes), default=0.0)

    @property
    def frames(self) -> float:
        return sum(c.frames for c in self.classes)

    @property
    def offered_fps(self) -> float:
        return sum(c.offered_fps for c in self.classes)

    @property
    def dram_bytes_total(self) -> float:
        return sum(c.dram_bytes_total for c in self.classes)

    @property
    def required_bandwidth_bytes(self) -> float:
        return sum(c.required_bandwidth_bytes for c in self.classes)

    @property
    def energy_j(self) -> float:
        return sum(c.energy_j for c in self.classes)

    @property
    def mean_power_w(self) -> float:
        return sum(c.mean_power_w for c in self.classes)

    @property
    def devices_required(self) -> float:
        return sum(c.devices_required for c in self.classes)

    @property
    def dram_channels_required(self) -> float:
        """LPDDR3 channels needed fleet-wide for the aggregate bandwidth."""
        return self.required_bandwidth_bytes / BYTES_PER_DRAM_CHANNEL

    def as_dict(self) -> Dict[str, object]:
        return {
            "classes": [c.as_dict() for c in self.classes],
            "frames": float(self.frames),
            "window_s": float(self.window_s),
            "offered_fps": self.offered_fps,
            "dram_gb_total": self.dram_bytes_total / 1e9,
            "required_bandwidth_gbs": self.required_bandwidth_bytes / 1e9,
            "energy_j": self.energy_j,
            "mean_power_w": self.mean_power_w,
            "devices_required": self.devices_required,
            "dram_channels_required": self.dram_channels_required,
        }


def fleet_rollup(costs: Iterable[ClassCost]) -> FleetCost:
    """Aggregate per-class costs into fleet totals (sorted by name)."""
    ordered = tuple(sorted(costs, key=lambda c: c.name))
    return FleetCost(classes=ordered)
