"""Analytical architecture models (Sec. IV and the evaluation's hardware side).

The accelerator is evaluated the way DAC accelerator papers are evaluated:
with performance/energy models driven by per-frame workload counts.  The
counts come from actual runs of the algorithms in :mod:`repro.core` and
:mod:`repro.gaussians` on the simulated scenes, scaled to the paper-scale
scene statistics by :mod:`repro.arch.workload`; the per-operation latency,
energy and area constants live in :mod:`repro.arch.technology`.

Modelled hardware:

* :mod:`repro.arch.accelerator` — the STREAMINGGS accelerator (VSU + HFUs +
  sorting units + rendering units, Fig. 9) and its ablation variants;
* :mod:`repro.arch.gscore` — the GSCore tile-centric accelerator baseline;
* :mod:`repro.arch.gpu` — the Nvidia Orin NX mobile GPU baseline;
* :mod:`repro.arch.dram`, :mod:`repro.arch.sram`, :mod:`repro.arch.area` —
  LPDDR3 DRAM, SRAM and 32 nm area models.
"""

from repro.arch.technology import TechnologyParameters, TECH_32NM
from repro.arch.dram import DRAMModel, LPDDR3_4CH
from repro.arch.sram import SRAMModel
from repro.arch.area import AreaModel, AreaBreakdown
from repro.arch.workload import FullScaleWorkload, build_workload
from repro.arch.accelerator import (
    AcceleratorConfig,
    PerformanceReport,
    StreamingGSAccelerator,
)
from repro.arch.gscore import GSCoreModel
from repro.arch.gpu import OrinNXModel
from repro.arch.traffic import TileCentricTraffic, tile_centric_traffic

__all__ = [
    "TechnologyParameters",
    "TECH_32NM",
    "DRAMModel",
    "LPDDR3_4CH",
    "SRAMModel",
    "AreaModel",
    "AreaBreakdown",
    "FullScaleWorkload",
    "build_workload",
    "AcceleratorConfig",
    "PerformanceReport",
    "StreamingGSAccelerator",
    "GSCoreModel",
    "OrinNXModel",
    "TileCentricTraffic",
    "tile_centric_traffic",
]
