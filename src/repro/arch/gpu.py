"""Roofline-style model of the Nvidia Orin NX mobile GPU baseline.

The paper measures 3DGS on the Orin NX directly (Fig. 3: 2-9 FPS) and uses
its built-in power sensors for energy.  Our substitute is a calibrated
roofline: per-frame FLOPs and DRAM traffic come from the tile-centric
workload model, the achieved compute/bandwidth efficiencies are calibrated
so the six scenes land in the measured 2-9 FPS band, and frame energy is
board power times frame time plus DRAM traffic energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import PerformanceReport
from repro.arch.technology import GPUParameters, ORIN_NX
from repro.arch.traffic import tile_centric_traffic
from repro.arch.units import BLEND_OPS_PER_FRAGMENT, FULL_PROJECTION_MACS
from repro.arch.workload import FullScaleWorkload

#: FLOPs per sorted pair for the GPU radix sort (key handling, scatter).
SORT_OPS_PER_PAIR = 24

#: Extra per-pair overhead in the rendering kernel (list traversal, early
#: termination checks) beyond the per-fragment blend arithmetic.
RENDER_OPS_PER_PAIR = 40


@dataclass
class GPUWorkloadBreakdown:
    """Per-frame FLOPs of the tile-centric pipeline on the GPU."""

    projection_flops: float
    sorting_flops: float
    rendering_flops: float

    @property
    def total_flops(self) -> float:
        return self.projection_flops + self.sorting_flops + self.rendering_flops


def gpu_flops(workload: FullScaleWorkload) -> GPUWorkloadBreakdown:
    """FLOP counts of the three pipeline stages for one frame."""
    projection = workload.num_gaussians * 2.0 * FULL_PROJECTION_MACS
    sorting = workload.num_pairs * SORT_OPS_PER_PAIR
    rendering = (
        workload.blended_fragments * BLEND_OPS_PER_FRAGMENT
        + workload.num_pairs * RENDER_OPS_PER_PAIR
    )
    return GPUWorkloadBreakdown(
        projection_flops=projection,
        sorting_flops=sorting,
        rendering_flops=rendering,
    )


class OrinNXModel:
    """The mobile-GPU baseline."""

    def __init__(self, params: GPUParameters = ORIN_NX) -> None:
        self.params = params

    # ------------------------------------------------------------------
    def evaluate(self, workload: FullScaleWorkload) -> PerformanceReport:
        """Per-frame latency and energy of tile-centric 3DGS on the GPU."""
        flops = gpu_flops(workload)
        traffic = tile_centric_traffic(workload)

        compute_time = flops.total_flops / (
            self.params.peak_flops * self.params.compute_efficiency
        )
        memory_time = traffic.total_bytes / (
            self.params.dram_bandwidth_bytes * self.params.bandwidth_efficiency
        )
        frame_time = max(compute_time, memory_time) + self.params.frame_overhead_s

        dram_energy = traffic.total_bytes * self.params.dram_energy_per_byte_j
        board_energy = self.params.board_power_w * frame_time
        return PerformanceReport(
            name="orin_nx",
            frame_time_s=frame_time,
            energy_per_frame_j=board_energy + dram_energy,
            dram_bytes=traffic.total_bytes,
            stage_cycles={
                "projection_flops": flops.projection_flops,
                "sorting_flops": flops.sorting_flops,
                "rendering_flops": flops.rendering_flops,
            },
            energy_breakdown={"board": board_energy, "dram": dram_energy},
        )

    def fps(self, workload: FullScaleWorkload) -> float:
        """Frames per second for one scene (Fig. 3)."""
        return self.evaluate(workload).fps

    def required_bandwidth(self, workload: FullScaleWorkload, fps: float = 90.0) -> float:
        """DRAM bandwidth needed to hit ``fps`` with tile-centric rendering."""
        return tile_centric_traffic(workload).required_bandwidth(fps)
