"""Supporting quantitative claims from the algorithm sections.

Besides the tables and figures, the paper states three quantitative facts
about its algorithm that the reproduction should exhibit:

* hierarchical filtering removes 76.3 % of the Gaussians processed per
  voxel (Sec. III-B);
* vector quantization removes 92.3 % of the DRAM traffic of the voxel
  streaming's second-half fetches (Sec. III-C);
* the coarse-grained filter reduces the per-Gaussian work from 427 MACs to
  55 MACs (Sec. IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.report import format_table
from repro.api.session import Session, get_default_session
from repro.core.hierarchical_filter import COARSE_FILTER_MACS, FINE_FILTER_MACS

#: Paper values.
PAPER_FILTERING_REDUCTION = 0.763
PAPER_VQ_TRAFFIC_REDUCTION = 0.923
PAPER_COARSE_MACS = 55
PAPER_FINE_MACS = 427


@dataclass
class SupportingClaimsResult:
    """Measured values for the three supporting claims."""

    scene: str
    filtering_reduction: float
    vq_traffic_reduction: float
    coarse_macs: int
    fine_macs: int

    def format(self) -> str:
        rows = [
            [
                "hierarchical filtering reduction",
                f"{100 * PAPER_FILTERING_REDUCTION:.1f}%",
                f"{100 * self.filtering_reduction:.1f}%",
            ],
            [
                "VQ second-half traffic reduction",
                f"{100 * PAPER_VQ_TRAFFIC_REDUCTION:.1f}%",
                f"{100 * self.vq_traffic_reduction:.1f}%",
            ],
            [
                "coarse filter MACs per Gaussian",
                str(PAPER_COARSE_MACS),
                str(self.coarse_macs),
            ],
            [
                "fine filter MACs per Gaussian",
                str(PAPER_FINE_MACS),
                str(self.fine_macs),
            ],
        ]
        return format_table(
            ["claim", "paper", "measured"],
            rows,
            title=f"Supporting claims ({self.scene} scene, paper-scale workload)",
        )


def run_supporting_claims(
    scene: str = "train", session: Optional[Session] = None
) -> SupportingClaimsResult:
    """Measure the three supporting claims on one scene."""
    session = session or get_default_session()
    context = session.context(scene)
    workload = context.workload
    layout = context.streaming_renderer.layout
    return SupportingClaimsResult(
        scene=scene,
        filtering_reduction=workload.filtering_reduction,
        vq_traffic_reduction=layout.second_half_traffic_reduction(),
        coarse_macs=COARSE_FILTER_MACS,
        fine_macs=FINE_FILTER_MACS,
    )
