"""Per-scene evaluation contexts.

Building a scene context is the expensive part of every experiment: it
instantiates the procedural scene, applies the base algorithm
(3DGS / Mini-Splatting / LightGaussian), calibrates the "trained" model to
the paper's PSNR for that (scene, algorithm) pair, renders the tile-centric
reference, runs the streaming pipeline and derives the paper-scale workload.

:func:`build_scene_context` is the pure builder; callers pass the
:class:`~repro.engine.service.RenderService` all rendering goes through.
Caching lives in :class:`repro.api.session.Session`, which memoises
contexts per (scene, algorithm, config, resolution scale) — the
figure/table experiments and the benchmark suite share them through the
process-wide default session.  :func:`get_scene_context` is the historical
module-level entry point and delegates to that default session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.workload import FullScaleWorkload, build_workload
from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer, StreamingRenderOutput
from repro.engine.service import RenderRequest, RenderService, get_default_service
from repro.gaussians.camera import Camera
from repro.gaussians.metrics import psnr
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import RenderOutput
from repro.scenes.fitting import FittedScene, fit_trained_model
from repro.scenes.registry import (
    SCENE_REGISTRY,
    SceneDescriptor,
    build_scene,
    default_eval_camera,
)
from repro.variants.base import get_algorithm


@dataclass
class SceneContext:
    """Everything the experiments need for one (scene, algorithm) pair."""

    descriptor: SceneDescriptor
    algorithm: str
    camera: Camera
    reference: GaussianModel
    trained: GaussianModel
    ground_truth: "object"                 # (H, W, 3) ndarray
    baseline_psnr: float                   # tile-centric PSNR of the trained model
    tile_output: RenderOutput
    streaming_config: StreamingConfig
    streaming_renderer: StreamingRenderer
    streaming_output: StreamingRenderOutput
    streaming_psnr: float
    workload: FullScaleWorkload

    @property
    def scene(self) -> str:
        return self.descriptor.name


def build_scene_context(
    scene: str,
    algorithm: str = "3dgs",
    config: Optional[StreamingConfig] = None,
    resolution_scale: float = 1.0,
    service: Optional[RenderService] = None,
) -> SceneContext:
    """Build one evaluation context (uncached).

    Parameters
    ----------
    scene:
        Registered scene name.
    algorithm:
        Base algorithm (``3dgs``, ``mini_splatting``, ``light_gaussian``).
    config:
        Streaming configuration; ``None`` uses the paper's default voxel
        size for the scene's category.
    resolution_scale:
        Scale factor on the simulated evaluation resolution.
    service:
        Render service every render goes through (the process-wide default
        service when omitted).
    """
    if scene not in SCENE_REGISTRY:
        raise KeyError(f"unknown scene {scene!r}; available: {sorted(SCENE_REGISTRY)}")
    service = service if service is not None else get_default_service()
    descriptor = SCENE_REGISTRY[scene]
    config = config or StreamingConfig(voxel_size=descriptor.default_voxel_size)
    camera = default_eval_camera(scene, resolution_scale=resolution_scale)
    reference = build_scene(scene)

    algo = get_algorithm(algorithm)
    reference_variant = algo.transform(reference, cameras=[camera])

    target = descriptor.target_psnr.get(algorithm, descriptor.target_psnr["3dgs"])
    fitted: FittedScene = fit_trained_model(
        reference_variant,
        camera,
        target_psnr=target,
        rasterizer=service.tile_rasterizer(config),
    )
    trained = fitted.trained
    ground_truth = fitted.ground_truth

    tile_response, streaming_response = service.render_batch(
        [
            RenderRequest(model=trained, camera=camera, config=config, mode="tile"),
            RenderRequest(model=trained, camera=camera, config=config, mode="streaming"),
        ]
    )
    tile_output = tile_response.output
    baseline_psnr = psnr(ground_truth, tile_output.image)

    streaming_renderer = service.streaming_renderer(trained, config)
    streaming_output = streaming_response.output
    streaming_psnr = psnr(ground_truth, streaming_output.image)

    workload = build_workload(
        descriptor=descriptor,
        tile_stats=tile_output.stats,
        projected=tile_output.projected,
        streaming_stats=streaming_output.stats,
        num_voxels=streaming_renderer.grid.num_voxels,
        sim_width=camera.width,
        sim_focal=camera.fx,
        use_vq=config.use_vq,
        second_half_bytes_vq=streaming_renderer.layout.second_half_bytes_per_gaussian,
    )
    return SceneContext(
        descriptor=descriptor,
        algorithm=algorithm,
        camera=camera,
        reference=reference_variant,
        trained=trained,
        ground_truth=ground_truth,
        baseline_psnr=baseline_psnr,
        tile_output=tile_output,
        streaming_config=config,
        streaming_renderer=streaming_renderer,
        streaming_output=streaming_output,
        streaming_psnr=streaming_psnr,
        workload=workload,
    )


def get_scene_context(
    scene: str,
    algorithm: str = "3dgs",
    voxel_size: Optional[float] = None,
    resolution_scale: float = 1.0,
) -> SceneContext:
    """The memoised evaluation context of one (scene, algorithm) pair.

    Delegates to the process-wide default
    :class:`~repro.api.session.Session`, so contexts are shared with every
    experiment running through it.

    Parameters
    ----------
    scene:
        Registered scene name.
    algorithm:
        Base algorithm (``3dgs``, ``mini_splatting``, ``light_gaussian``).
    voxel_size:
        Streaming voxel size; ``None`` uses the paper's default for the
        scene's category (2.0 real-world, 0.4 synthetic).
    resolution_scale:
        Scale factor on the simulated evaluation resolution (1.0 keeps the
        registry default).
    """
    from repro.api.session import get_default_session

    return get_default_session().context(
        scene,
        algorithm=algorithm,
        voxel_size=voxel_size,
        resolution_scale=resolution_scale,
    )


def clear_context_cache() -> None:
    """Drop all memoised contexts and shared renderers (used by tests)."""
    from repro.api.session import reset_default_session
    from repro.engine.service import reset_default_service

    reset_default_session()
    reset_default_service()
