"""Experiment registry front-end and command-line entry point.

Lets a user regenerate any single table or figure without going through the
benchmark harness::

    python -m repro.analysis.runner --list
    python -m repro.analysis.runner fig3 fig4
    python -m repro.analysis.runner fig12 --json
    python -m repro.analysis.runner all

Experiments are defined in :mod:`repro.api.experiments`; every run goes
through the process-wide :class:`~repro.api.session.Session`, so a multi-
experiment invocation shares scene contexts and renderers, and every
experiment returns a typed :class:`~repro.api.result.ExperimentResult`
(``--json`` emits its machine-readable form).
"""

from __future__ import annotations

import argparse
import functools
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.api.experiments import REGISTRY, get_experiment
from repro.api.result import ExperimentResult
from repro.api.session import get_default_session


@dataclass(frozen=True)
class Experiment:
    """One regenerable artefact of the paper's evaluation."""

    name: str
    description: str
    runner: Callable[[], ExperimentResult]


def _run_registered(name: str) -> ExperimentResult:
    return get_experiment(name).build(get_default_session())


#: Name -> experiment view of the :mod:`repro.api.experiments` registry.
EXPERIMENTS: Dict[str, Experiment] = {
    name: Experiment(
        name=name,
        description=definition.description,
        runner=functools.partial(_run_registered, name),
    )
    for name, definition in REGISTRY.items()
}


def run_experiment_result(name: str) -> ExperimentResult:
    """Run one experiment by name and return its typed result."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name].runner()


def run_experiment(name: str) -> str:
    """Run one experiment by name and return its formatted report."""
    return run_experiment_result(name).format()


def list_experiments() -> List[str]:
    """Registered experiment names in presentation order."""
    return list(EXPERIMENTS)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis.runner",
        description="Regenerate tables/figures of the STREAMINGGS evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (e.g. fig3 tab2), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per experiment per line (JSON Lines, "
        "ExperimentResult.to_json) instead of text",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for experiment in EXPERIMENTS.values():
            print(f"{experiment.name:<8} {experiment.description}")
        return 0

    names = (
        list(EXPERIMENTS) if args.experiments == ["all"] else list(args.experiments)
    )
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment(s) {unknown}; available: {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    for name in names:
        result = run_experiment_result(name)
        if args.json:
            print(result.to_json())
        else:
            print(result.format())
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
