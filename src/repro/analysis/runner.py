"""Experiment registry and command-line entry point.

Lets a user regenerate any single table or figure without going through the
benchmark harness::

    python -m repro.analysis.runner --list
    python -m repro.analysis.runner fig3 fig4
    python -m repro.analysis.runner all
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.characterization import run_fig2, run_fig3, run_fig4
from repro.analysis.claims import run_supporting_claims
from repro.analysis.performance import run_fig11
from repro.analysis.quality import run_fig7, run_table2
from repro.analysis.report import format_table
from repro.analysis.sensitivity import run_fig12, run_fig13
from repro.arch.area import AreaModel
from repro.engine.bench import run_kernel_benchmark


def _run_tab1() -> "object":
    """Table I wrapper so every experiment has the same call shape."""
    breakdown = AreaModel().table1()

    class _Tab1Result:
        def format(self) -> str:
            rows = [[name, f"{area:.3f}"] for name, area in breakdown.as_rows()]
            return format_table(
                ["component", "area (mm^2)"], rows, title="Table I — configuration and area"
            )

    return _Tab1Result()


@dataclass(frozen=True)
class Experiment:
    """One regenerable artefact of the paper's evaluation."""

    name: str
    description: str
    runner: Callable[[], object]


EXPERIMENTS: Dict[str, Experiment] = {
    "fig2": Experiment("fig2", "DRAM traffic breakdown of tile-centric 3DGS", run_fig2),
    "fig3": Experiment("fig3", "3DGS FPS on the Orin NX GPU", run_fig3),
    "fig4": Experiment("fig4", "DRAM bandwidth needed for 90 FPS", run_fig4),
    "fig7": Experiment("fig7", "Boundary-aware fine-tuning (train scene)", run_fig7),
    "tab1": Experiment("tab1", "Accelerator configuration and area", _run_tab1),
    "tab2": Experiment("tab2", "Rendering quality (PSNR) comparison", run_table2),
    "fig11": Experiment("fig11", "End-to-end speedup and energy savings", run_fig11),
    "fig12": Experiment("fig12", "Voxel-size sensitivity", run_fig12),
    "fig13": Experiment("fig13", "CFU/FFU sensitivity", run_fig13),
    "claims": Experiment("claims", "Supporting filtering / VQ claims", run_supporting_claims),
    "engine": Experiment(
        "engine", "Blending-kernel micro-benchmark (engine layer)", run_kernel_benchmark
    ),
}


def run_experiment(name: str) -> str:
    """Run one experiment by name and return its formatted report."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    result = EXPERIMENTS[name].runner()
    return result.format()


def list_experiments() -> List[str]:
    """Registered experiment names in presentation order."""
    return list(EXPERIMENTS)


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis.runner",
        description="Regenerate tables/figures of the STREAMINGGS evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (e.g. fig3 tab2), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for experiment in EXPERIMENTS.values():
            print(f"{experiment.name:<8} {experiment.description}")
        return 0

    names = (
        list(EXPERIMENTS) if args.experiments == ["all"] else list(args.experiments)
    )
    for name in names:
        print(run_experiment(name))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
