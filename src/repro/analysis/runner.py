"""Experiment registry front-end and command-line entry point.

Lets a user regenerate any single table or figure without going through the
benchmark harness::

    python -m repro.analysis.runner --list
    python -m repro.analysis.runner fig3 fig4
    python -m repro.analysis.runner fig12 --json
    python -m repro.analysis.runner fig12 --jobs 4 --cache-dir results/
    python -m repro.analysis.runner all

Experiments are defined in :mod:`repro.api.experiments`; every run goes
through the process-wide :class:`~repro.api.session.Session`, so a multi-
experiment invocation shares scene contexts and renderers, and every
experiment returns a typed :class:`~repro.api.result.ExperimentResult`
(``--json`` emits its machine-readable form).

Sweep-shaped experiments (``fig12``, ``fig13``, anything built on
``Session.run_sweep``) honour ``--jobs N`` (sharded parallel evaluation)
and the disk-backed result store: ``--cache-dir DIR`` (or the
``REPRO_CACHE_DIR`` environment variable) persists every evaluated point,
so a warm re-run renders nothing; ``--no-cache`` disables the store even
when the environment configures one.  ``--options '{"voxel_sizes":
[1.0, 2.0]}'`` forwards keyword arguments to each named experiment's
builder (reduced smoke grids in CI); when every top-level key names a
registered experiment and maps to an object, the options are routed per
experiment instead — ``'{"fig12": {"voxel_sizes": [1.0]}, "fig13":
{"cfus": [1, 2]}}'`` — which is how a multi-experiment invocation mixes
builders with different signatures.

``--telemetry-json PATH`` dumps what a run actually did — each sweep's
:class:`~repro.api.executor.ExecutionReport`, the scheduler report of a
multi-experiment ``--jobs`` run, session / render-service counters (frame
telemetry, renderer-cache behaviour) and result-store statistics — as one
JSON object for dashboards.

With ``--jobs N`` and more than one experiment (``runner all --jobs 4``),
whole experiments are scheduled across a process pool
(:func:`repro.api.executor.schedule_experiments`): dispatch is
heaviest-first by each definition's ``cost_hint``, results print in
request order, and a ``[scheduler]`` telemetry line (per-experiment wall
times, worker reuse) goes to stderr.  Single-experiment invocations keep
``--jobs`` at the sweep level and report their sharded execution on an
``[execution]`` line instead.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.api.experiments import REGISTRY, get_experiment
from repro.api.result import ExperimentResult
from repro.api.session import get_default_session


@dataclass(frozen=True)
class Experiment:
    """One regenerable artefact of the paper's evaluation."""

    name: str
    description: str
    runner: Callable[..., ExperimentResult]


def _run_registered(name: str, **kwargs: Any) -> ExperimentResult:
    return get_experiment(name).build(get_default_session(), **kwargs)


#: Name -> experiment view of the :mod:`repro.api.experiments` registry.
EXPERIMENTS: Dict[str, Experiment] = {
    name: Experiment(
        name=name,
        description=definition.description,
        runner=functools.partial(_run_registered, name),
    )
    for name, definition in REGISTRY.items()
}


def run_experiment_result(name: str, **kwargs: Any) -> ExperimentResult:
    """Run one experiment by name and return its typed result."""
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name].runner(**kwargs)


def run_experiment(name: str) -> str:
    """Run one experiment by name and return its formatted report."""
    return run_experiment_result(name).format()


def list_experiments() -> List[str]:
    """Registered experiment names in presentation order."""
    return list(EXPERIMENTS)


def route_options(
    options: Dict[str, Any], names: List[str]
) -> Dict[str, Dict[str, Any]]:
    """Resolve ``--options`` into per-experiment builder kwargs.

    A mapping whose every key is a registered experiment and whose every
    value is an object is *per-experiment*: each named experiment gets its
    entry (others get nothing).  Any other mapping is global: every named
    experiment gets the same kwargs — the historical behaviour.

    Raises ``ValueError`` when a per-experiment mapping routes options to
    an experiment that is not being run — silently dropping them would let
    a typo'd selection run with defaults and still exit 0.
    """
    per_experiment = bool(options) and all(
        key in EXPERIMENTS and isinstance(value, dict)
        for key, value in options.items()
    )
    if per_experiment:
        unused = sorted(set(options) - set(names))
        if unused:
            raise ValueError(
                f"--options routes to experiment(s) {unused} that are not "
                f"selected; running: {list(names)}"
            )
        return {name: dict(options.get(name, {})) for name in names}
    return {name: dict(options) for name in names}


def _rejected_options(error: TypeError) -> bool:
    """Whether a TypeError is a builder rejecting ``--options`` kwargs.

    Only signature mismatches become a clean CLI error; a TypeError raised
    inside experiment code keeps its traceback.
    """
    message = str(error)
    return (
        "unexpected keyword argument" in message
        or "accepts no experiment parameters" in message
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        # ``runner serve ...`` delegates to the service daemon CLI so the
        # daemon is reachable without installing the repro-serve script.
        from repro.service.cli import main as serve_main

        return serve_main(list(argv[1:]))
    if argv and argv[0] == "fleet":
        # ``runner fleet trace|replay|search ...`` — fleet simulator CLI.
        from repro.fleet.cli import main as fleet_main

        return fleet_main(list(argv[1:]))
    if argv and argv[0] == "search":
        # ``runner search --axis ...`` — shortcut for ``fleet search``.
        from repro.fleet.cli import main as fleet_main

        return fleet_main(["search", *argv[1:]])
    parser = argparse.ArgumentParser(
        prog="repro.analysis.runner",
        description="Regenerate tables/figures of the STREAMINGGS evaluation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (e.g. fig3 tab2), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per experiment per line (JSON Lines, "
        "ExperimentResult.to_json) instead of text",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker count for sweep-shaped experiments (sharded parallel "
        "evaluation; default 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR"),
        help="directory of the disk-backed result store (defaults to "
        "$REPRO_CACHE_DIR; unset = no caching)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result store even when --cache-dir / "
        "$REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "--options",
        default=None,
        help="JSON object of keyword arguments forwarded to every named "
        "experiment's builder, e.g. '{\"voxel_sizes\": [1.0, 2.0]}'",
    )
    parser.add_argument(
        "--telemetry-json",
        default=None,
        metavar="PATH",
        help="dump execution telemetry as one JSON object to PATH "
        "(keys: experiments, scheduler, session, store). Serial runs "
        "record per-experiment ExecutionReports and session/render-service "
        "counters; scheduled multi-experiment --jobs runs record the "
        "scheduler report with per-experiment wall times",
    )
    args = parser.parse_args(argv)

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    options: Dict[str, Any] = {}
    if args.options:
        try:
            options = json.loads(args.options)
            if not isinstance(options, dict):
                raise ValueError("not a JSON object")
        except (json.JSONDecodeError, ValueError) as error:
            print(f"error: --options must be a JSON object ({error})", file=sys.stderr)
            return 2

    if args.list or not args.experiments:
        for experiment in EXPERIMENTS.values():
            print(f"{experiment.name:<8} {experiment.description}")
        return 0

    names = (
        list(EXPERIMENTS) if args.experiments == ["all"] else list(args.experiments)
    )
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"error: unknown experiment(s) {unknown}; available: {sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    store = None
    if args.cache_dir and not args.no_cache:
        from repro.api.store import ResultStore

        store = ResultStore(args.cache_dir)
    try:
        options_for = route_options(options, names)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.jobs > 1 and len(names) > 1:
        return _main_scheduled(names, args, options_for, store)

    # The CLI flags apply only to this invocation: the process-wide session
    # keeps whatever jobs/store another in-process caller configured.
    session = get_default_session()
    previous = (session.jobs, session.store)
    session.jobs, session.store = args.jobs, store
    last_report = session.last_execution
    execution_reports: Dict[str, Any] = {}
    try:
        for name in names:
            kwargs = options_for[name]
            try:
                result = run_experiment_result(name, **kwargs)
            except TypeError as error:
                if not kwargs or not _rejected_options(error):
                    raise
                print(
                    f"error: experiment {name!r} rejected --options "
                    f"{sorted(kwargs)}: {error}",
                    file=sys.stderr,
                )
                return 2
            if args.json:
                print(result.to_json())
            else:
                print(result.format())
                print()
            # Sweep-shaped experiments leave their ExecutionReport on the
            # session; record it per experiment and surface it whenever
            # parallelism or the store is on.
            if (
                session.last_execution is not None
                and session.last_execution is not last_report
            ):
                last_report = session.last_execution
                execution_reports[name] = last_report.to_dict()
                if args.jobs > 1 or store is not None:
                    print(
                        f"[execution] {name}: {last_report.summary()}",
                        file=sys.stderr,
                    )
    finally:
        session.jobs, session.store = previous
    if store is not None:
        print(
            f"[result-store] hits={store.hits} misses={store.misses} "
            f"entries={len(store)} dir={store.root}",
            file=sys.stderr,
        )
    if args.telemetry_json:
        _write_telemetry(
            args.telemetry_json,
            {
                "experiments": execution_reports,
                "scheduler": None,
                "session": session.stats(),
                "store": store.stats() if store is not None else None,
            },
        )
    return 0


def _write_telemetry(path: str, payload: Dict[str, Any]) -> None:
    """Dump one telemetry JSON object atomically and note it on stderr."""
    from repro.api.store import atomic_write_json

    atomic_write_json(path, payload)
    print(f"[telemetry] wrote {path}", file=sys.stderr)


def _main_scheduled(names, args, options_for, store) -> int:
    """``runner all --jobs N``: whole experiments across the session pool.

    The fan-out runs on the process-wide default session's persistent
    :class:`~repro.api.pool.WorkerPool` rather than an ephemeral pool, so
    repeated scheduled invocations in one process reuse warm workers.
    """
    from repro.api.executor import schedule_experiments

    try:
        results, report = schedule_experiments(
            names,
            jobs=args.jobs,
            options=options_for,
            cache_dir=str(store.root) if store is not None else None,
            session=get_default_session(),
        )
    except TypeError as error:
        if not any(options_for.values()) or not _rejected_options(error):
            raise
        print(f"error: an experiment rejected --options: {error}", file=sys.stderr)
        return 2
    for result in results:
        if args.json:
            print(result.to_json())
        else:
            print(result.format())
            print()
    for name in names:
        print(f"[scheduler] {name}: {report.elapsed_s[name]:.2f}s", file=sys.stderr)
    print(f"[scheduler] {report.summary()}", file=sys.stderr)
    if store is not None:
        # Hit/miss counters are aggregated from the workers; the entry
        # count is read back from the shared on-disk store.
        print(
            f"[result-store] hits={report.store_hits} misses={report.store_misses} "
            f"entries={len(store)} dir={store.root}",
            file=sys.stderr,
        )
    if args.telemetry_json:
        # Scheduled experiments evaluate in worker processes, so their
        # sweep-level ExecutionReports (and the parent session's counters)
        # are not observable here; the per-experiment wall times live in
        # the scheduler report's ``elapsed_s``.
        _write_telemetry(
            args.telemetry_json,
            {
                "experiments": {
                    name: {"elapsed_s": report.elapsed_s[name]} for name in names
                },
                "scheduler": report.to_dict(),
                "session": None,
                "store": store.stats() if store is not None else None,
            },
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
