"""Experiment harness: regenerates every table and figure of the evaluation.

Each experiment function returns a small result dataclass holding both the
measured series/rows and the paper's reported values, so the benchmark
harness (and EXPERIMENTS.md) can show them side by side.

Experiment index (see DESIGN.md for the full mapping):

* :func:`repro.analysis.characterization.run_fig2` — DRAM traffic breakdown
* :func:`repro.analysis.characterization.run_fig3` — GPU FPS per scene
* :func:`repro.analysis.characterization.run_fig4` — bandwidth @ 90 FPS
* :func:`repro.analysis.quality.run_table2` — rendering quality (PSNR)
* :func:`repro.analysis.quality.run_fig7` — boundary-aware fine-tuning
* :func:`repro.analysis.performance.run_fig11` — speedup & energy savings
* :func:`repro.analysis.sensitivity.run_fig12` — voxel-size sensitivity
* :func:`repro.analysis.sensitivity.run_fig13` — CFU/FFU sensitivity
* :func:`repro.analysis.claims.run_supporting_claims` — filtering / VQ claims
* :func:`repro.arch.area.AreaModel.table1` — Table I (area)
"""

from repro.analysis.context import SceneContext, get_scene_context, clear_context_cache
from repro.analysis.characterization import run_fig2, run_fig3, run_fig4
from repro.analysis.quality import run_table2, run_fig7
from repro.analysis.performance import run_fig11
from repro.analysis.sensitivity import run_fig12, run_fig13
from repro.analysis.claims import run_supporting_claims
from repro.analysis.report import format_table, format_series

__all__ = [
    "SceneContext",
    "get_scene_context",
    "clear_context_cache",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_table2",
    "run_fig7",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_supporting_claims",
    "format_table",
    "format_series",
]
