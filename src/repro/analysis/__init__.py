"""Experiment harness: regenerates every table and figure of the evaluation.

Each experiment function returns a small result dataclass holding both the
measured series/rows and the paper's reported values; the API layer
(:mod:`repro.api.experiments`) adapts them into uniform
:class:`~repro.api.result.ExperimentResult` objects.

Experiment index (see DESIGN.md for the full mapping):

* :func:`repro.analysis.characterization.run_fig2` — DRAM traffic breakdown
* :func:`repro.analysis.characterization.run_fig3` — GPU FPS per scene
* :func:`repro.analysis.characterization.run_fig4` — bandwidth @ 90 FPS
* :func:`repro.analysis.quality.run_table2` — rendering quality (PSNR)
* :func:`repro.analysis.quality.run_fig7` — boundary-aware fine-tuning
* :func:`repro.analysis.performance.run_fig11` — speedup & energy savings
* :func:`repro.analysis.sensitivity.run_fig12` — voxel-size sensitivity
* :func:`repro.analysis.sensitivity.run_fig13` — CFU/FFU sensitivity
* :func:`repro.analysis.claims.run_supporting_claims` — filtering / VQ claims
* :func:`repro.arch.area.AreaModel.table1` — Table I (area)

The experiment modules import the API layer (their runs share the default
:class:`~repro.api.session.Session`), so the re-exports below resolve
lazily to keep ``repro.analysis.report`` importable from inside
``repro.api`` without a cycle.
"""

from importlib import import_module

from repro.analysis.report import format_series, format_table

#: Lazily re-exported name -> defining submodule.
_LAZY = {
    "SceneContext": "repro.analysis.context",
    "build_scene_context": "repro.analysis.context",
    "get_scene_context": "repro.analysis.context",
    "clear_context_cache": "repro.analysis.context",
    "run_fig2": "repro.analysis.characterization",
    "run_fig3": "repro.analysis.characterization",
    "run_fig4": "repro.analysis.characterization",
    "run_table2": "repro.analysis.quality",
    "run_fig7": "repro.analysis.quality",
    "run_fig11": "repro.analysis.performance",
    "run_fig12": "repro.analysis.sensitivity",
    "run_fig13": "repro.analysis.sensitivity",
    "run_supporting_claims": "repro.analysis.claims",
}

__all__ = ["format_table", "format_series"] + sorted(_LAZY)


def __getattr__(name: str):
    if name in _LAZY:
        value = getattr(import_module(_LAZY[name]), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
