"""Sensitivity studies (Fig. 12 and Fig. 13).

Fig. 12 sweeps the voxel size on the train scene and reports energy savings
(over the GPU) together with rendering quality.  Fig. 13 sweeps the number
of coarse- and fine-grained filter units per HFU and reports the speedup
over the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.context import get_scene_context
from repro.analysis.report import format_series, format_table
from repro.arch.accelerator import AcceleratorConfig, StreamingGSAccelerator
from repro.arch.area import AreaModel
from repro.arch.gpu import OrinNXModel

#: Fig. 12 voxel sizes (scene units, train scene).
FIG12_VOXEL_SIZES = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)

#: Fig. 13 CFU / FFU counts.
FIG13_CFUS = (1, 2, 3, 4)
FIG13_FFUS = (1, 2, 3, 4)

#: Paper Fig. 13 corner values (1 CFU/1 FFU and 4 CFU/4 FFU).
PAPER_FIG13_MIN = 20.6
PAPER_FIG13_MAX = 46.8


@dataclass
class Fig12Result:
    """Voxel-size sensitivity of energy savings and rendering quality."""

    voxel_sizes: List[float]
    energy_savings: List[float]
    psnr: List[float]
    scene: str = "train"

    @property
    def quality_monotonic_trend(self) -> float:
        """Correlation between voxel size and PSNR (paper: positive, then flat)."""
        if len(self.voxel_sizes) < 2:
            return 0.0
        return float(np.corrcoef(self.voxel_sizes, self.psnr)[0, 1])

    def format(self) -> str:
        return format_series(
            {
                "energy savings (x)": self.energy_savings,
                "PSNR (dB)": self.psnr,
            },
            "voxel size",
            self.voxel_sizes,
            title=f"Fig. 12 — voxel-size sensitivity ({self.scene} scene)",
        )


def run_fig12(
    scene: str = "train", voxel_sizes: Sequence[float] = FIG12_VOXEL_SIZES
) -> Fig12Result:
    """Reproduce Fig. 12: energy savings and PSNR vs. voxel size."""
    gpu = OrinNXModel()
    energy_savings, quality = [], []
    for voxel_size in voxel_sizes:
        context = get_scene_context(scene, voxel_size=float(voxel_size))
        gpu_report = gpu.evaluate(context.workload)
        accel_report = StreamingGSAccelerator().evaluate(context.workload)
        energy_savings.append(accel_report.energy_saving_over(gpu_report))
        quality.append(context.streaming_psnr)
    return Fig12Result(
        voxel_sizes=list(voxel_sizes),
        energy_savings=energy_savings,
        psnr=quality,
        scene=scene,
    )


@dataclass
class Fig13Result:
    """CFU / FFU sensitivity of the speedup over the GPU."""

    cfus: List[int]
    ffus: List[int]
    speedup: Dict[int, Dict[int, float]] = field(default_factory=dict)
    area_mm2: Dict[int, Dict[int, float]] = field(default_factory=dict)
    scene: str = "train"
    paper_min: float = PAPER_FIG13_MIN
    paper_max: float = PAPER_FIG13_MAX

    def value(self, num_cfu: int, num_ffu: int) -> float:
        return self.speedup[num_cfu][num_ffu]

    def format(self) -> str:
        rows = []
        for num_cfu in self.cfus:
            rows.append(
                [f"{num_cfu} CFU"]
                + [self.speedup[num_cfu][num_ffu] for num_ffu in self.ffus]
            )
        table = format_table(
            ["config"] + [f"{f} FFU" for f in self.ffus],
            rows,
            title=f"Fig. 13 — speedup vs CFU/FFU count ({self.scene} scene)",
        )
        return (
            f"{table}\n"
            f"paper corners: {self.paper_min:.1f}x (1/1) ... {self.paper_max:.1f}x (4/4)"
        )


def run_fig13(
    scene: str = "train",
    cfus: Sequence[int] = FIG13_CFUS,
    ffus: Sequence[int] = FIG13_FFUS,
) -> Fig13Result:
    """Reproduce Fig. 13: speedup as a function of CFU and FFU counts."""
    context = get_scene_context(scene)
    gpu_report = OrinNXModel().evaluate(context.workload)
    area_model = AreaModel()
    result = Fig13Result(cfus=list(cfus), ffus=list(ffus), scene=scene)
    for num_cfu in cfus:
        result.speedup[num_cfu] = {}
        result.area_mm2[num_cfu] = {}
        for num_ffu in ffus:
            config = AcceleratorConfig(cfus_per_hfu=num_cfu, ffus_per_hfu=num_ffu)
            report = StreamingGSAccelerator(config).evaluate(context.workload)
            result.speedup[num_cfu][num_ffu] = report.speedup_over(gpu_report)
            result.area_mm2[num_cfu][num_ffu] = area_model.breakdown(
                cfus_per_hfu=num_cfu, ffus_per_hfu=num_ffu
            ).total_mm2
    return result
