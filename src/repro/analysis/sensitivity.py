"""Sensitivity studies (Fig. 12 and Fig. 13).

Fig. 12 sweeps the voxel size on the train scene and reports energy savings
(over the GPU) together with rendering quality.  Fig. 13 sweeps the number
of coarse- and fine-grained filter units per HFU and reports the speedup
over the GPU.

Both figures are expressed as declarative :func:`repro.api.spec.sweep`
grids run through the shared :class:`~repro.api.session.Session` — the
voxel size routes to a :class:`~repro.core.config.StreamingConfig` override
and the CFU/FFU counts route to
:class:`~repro.arch.accelerator.AcceleratorConfig` options automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import format_series, format_table
from repro.api.session import Session, get_default_session
from repro.api.spec import ExperimentSpec, sweep

#: Fig. 12 voxel sizes (scene units, train scene).
FIG12_VOXEL_SIZES = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)

#: Fig. 13 CFU / FFU counts.
FIG13_CFUS = (1, 2, 3, 4)
FIG13_FFUS = (1, 2, 3, 4)

#: Paper Fig. 13 corner values (1 CFU/1 FFU and 4 CFU/4 FFU).
PAPER_FIG13_MIN = 20.6
PAPER_FIG13_MAX = 46.8


@dataclass
class Fig12Result:
    """Voxel-size sensitivity of energy savings and rendering quality."""

    voxel_sizes: List[float]
    energy_savings: List[float]
    psnr: List[float]
    scene: str = "train"

    @property
    def quality_monotonic_trend(self) -> float:
        """Correlation between voxel size and PSNR (paper: positive, then flat)."""
        if len(self.voxel_sizes) < 2:
            return 0.0
        return float(np.corrcoef(self.voxel_sizes, self.psnr)[0, 1])

    def format(self) -> str:
        return format_series(
            {
                "energy savings (x)": self.energy_savings,
                "PSNR (dB)": self.psnr,
            },
            "voxel size",
            self.voxel_sizes,
            title=f"Fig. 12 — voxel-size sensitivity ({self.scene} scene)",
        )


def run_fig12(
    scene: str = "train",
    voxel_sizes: Sequence[float] = FIG12_VOXEL_SIZES,
    session: Optional[Session] = None,
    resolution_scale: float = 1.0,
    jobs: Optional[int] = None,
    cache: Optional[object] = None,
) -> Fig12Result:
    """Reproduce Fig. 12: energy savings and PSNR vs. voxel size.

    The grid runs on the session's sharded
    :class:`~repro.api.executor.SweepExecutor`; ``jobs``/``cache`` override
    the session defaults (``None`` keeps them), ``resolution_scale``
    shrinks the simulated evaluation resolution for smoke grids.
    """
    session = session or get_default_session()
    specs = sweep(
        ExperimentSpec(
            scene=scene, arch="streaminggs", resolution_scale=resolution_scale
        ),
        voxel_size=[float(v) for v in voxel_sizes],
    )
    points = session.run_sweep(specs, swept=["voxel_size"], jobs=jobs, cache=cache)
    return Fig12Result(
        voxel_sizes=list(voxel_sizes),
        energy_savings=points.metric("energy_savings"),
        psnr=points.metric("streaming_psnr"),
        scene=scene,
    )


@dataclass
class Fig13Result:
    """CFU / FFU sensitivity of the speedup over the GPU."""

    cfus: List[int]
    ffus: List[int]
    speedup: Dict[int, Dict[int, float]] = field(default_factory=dict)
    area_mm2: Dict[int, Dict[int, float]] = field(default_factory=dict)
    scene: str = "train"
    paper_min: float = PAPER_FIG13_MIN
    paper_max: float = PAPER_FIG13_MAX

    def value(self, num_cfu: int, num_ffu: int) -> float:
        return self.speedup[num_cfu][num_ffu]

    def format(self) -> str:
        rows = []
        for num_cfu in self.cfus:
            rows.append(
                [f"{num_cfu} CFU"]
                + [self.speedup[num_cfu][num_ffu] for num_ffu in self.ffus]
            )
        table = format_table(
            ["config"] + [f"{f} FFU" for f in self.ffus],
            rows,
            title=f"Fig. 13 — speedup vs CFU/FFU count ({self.scene} scene)",
        )
        return (
            f"{table}\n"
            f"paper corners: {self.paper_min:.1f}x (1/1) ... {self.paper_max:.1f}x (4/4)"
        )


def run_fig13(
    scene: str = "train",
    cfus: Sequence[int] = FIG13_CFUS,
    ffus: Sequence[int] = FIG13_FFUS,
    session: Optional[Session] = None,
    resolution_scale: float = 1.0,
    jobs: Optional[int] = None,
    cache: Optional[object] = None,
) -> Fig13Result:
    """Reproduce Fig. 13: speedup as a function of CFU and FFU counts.

    Runs on the session's sweep executor like :func:`run_fig12`; every
    point shares one scene context (only accelerator options vary), so the
    grid collapses into a single shard.
    """
    session = session or get_default_session()
    specs = sweep(
        ExperimentSpec(
            scene=scene, arch="streaminggs", resolution_scale=resolution_scale
        ),
        cfus_per_hfu=[int(c) for c in cfus],
        ffus_per_hfu=[int(f) for f in ffus],
    )
    points = session.run_sweep(
        specs, swept=["cfus_per_hfu", "ffus_per_hfu"], jobs=jobs, cache=cache
    )
    result = Fig13Result(cfus=list(cfus), ffus=list(ffus), scene=scene)
    for i, num_cfu in enumerate(result.cfus):
        result.speedup[num_cfu] = {}
        result.area_mm2[num_cfu] = {}
        for j, num_ffu in enumerate(result.ffus):
            point = points[i * len(result.ffus) + j]
            result.speedup[num_cfu][num_ffu] = point.metric("speedup")
            result.area_mm2[num_cfu][num_ffu] = point.metric("area_mm2")
    return result
