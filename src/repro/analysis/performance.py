"""End-to-end performance / energy comparison (Fig. 11).

The figure reports, for each base algorithm (3DGS, Mini-Splatting,
LightGaussian), the speedup and energy savings over the Orin NX GPU of four
hardware points: GSCore, the streaming accelerator without VQ and
coarse-grained filtering, without coarse-grained filtering only, and the
full STREAMINGGS design.  Numbers are averaged over the evaluation scenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import format_table
from repro.api.session import Session, get_default_session
from repro.arch.accelerator import AcceleratorConfig, StreamingGSAccelerator
from repro.arch.gpu import OrinNXModel
from repro.arch.gscore import GSCoreModel

#: Hardware points of Fig. 11 in plotting order.
FIG11_VARIANTS = ("gscore", "wo_vq_cgf", "wo_cgf", "streaminggs")

#: Scenes averaged over (the paper averages its four datasets; we average
#: one representative scene per dataset).
FIG11_SCENES = ("lego", "palace", "truck", "playroom")

#: Base algorithms of Fig. 11.
FIG11_ALGORITHMS = ("3dgs", "mini_splatting", "light_gaussian")

#: Paper headline numbers (averaged over datasets, original 3DGS).
PAPER_SPEEDUP = {
    "gscore": 21.6,
    "wo_vq_cgf": 22.2,
    "wo_cgf": 22.2,
    "streaminggs": 45.7,
}
PAPER_ENERGY_SAVINGS = {
    "gscore": 27.0,
    "wo_vq_cgf": 25.0,
    "wo_cgf": 28.0,
    "streaminggs": 62.9,
}


def _hardware_report(variant: str, workload):
    """Evaluate one hardware point on one workload."""
    if variant == "gscore":
        return GSCoreModel().evaluate(workload)
    config = AcceleratorConfig.variant(
        "streaminggs" if variant == "streaminggs" else variant
    )
    return StreamingGSAccelerator(config).evaluate(workload)


@dataclass
class Fig11Result:
    """Speedup / energy savings of every hardware point per base algorithm."""

    algorithms: List[str]
    variants: List[str]
    speedup: Dict[str, Dict[str, float]] = field(default_factory=dict)
    energy_savings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    paper_speedup: Dict[str, float] = field(default_factory=lambda: dict(PAPER_SPEEDUP))
    paper_energy: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_ENERGY_SAVINGS)
    )

    def mean_speedup(self, variant: str) -> float:
        return float(
            np.mean([self.speedup[algo][variant] for algo in self.algorithms])
        )

    def mean_energy_savings(self, variant: str) -> float:
        return float(
            np.mean([self.energy_savings[algo][variant] for algo in self.algorithms])
        )

    def streaming_vs_gscore_speedup(self) -> float:
        """The paper's 2.1x headline: STREAMINGGS over GSCore."""
        return self.mean_speedup("streaminggs") / self.mean_speedup("gscore")

    def streaming_vs_gscore_energy(self) -> float:
        """The paper's 2.3x headline on energy."""
        return self.mean_energy_savings("streaminggs") / self.mean_energy_savings(
            "gscore"
        )

    def format(self) -> str:
        rows = []
        for algo in self.algorithms:
            for variant in self.variants:
                rows.append(
                    [
                        algo,
                        variant,
                        self.speedup[algo][variant],
                        self.energy_savings[algo][variant],
                    ]
                )
        table = format_table(
            ["algorithm", "hardware", "speedup vs GPU", "energy savings vs GPU"],
            rows,
            title="Fig. 11 — end-to-end speedup and energy savings",
        )
        summary = (
            f"mean speedup: streaminggs {self.mean_speedup('streaminggs'):.1f}x "
            f"(paper 45.7x), gscore {self.mean_speedup('gscore'):.1f}x (paper 21.6x)\n"
            f"mean energy savings: streaminggs {self.mean_energy_savings('streaminggs'):.1f}x "
            f"(paper 62.9x), gscore {self.mean_energy_savings('gscore'):.1f}x\n"
            f"streaminggs vs gscore: {self.streaming_vs_gscore_speedup():.2f}x speedup "
            f"(paper 2.1x), {self.streaming_vs_gscore_energy():.2f}x energy (paper 2.3x)"
        )
        return f"{table}\n{summary}"


def run_fig11(
    scenes: Sequence[str] = FIG11_SCENES,
    algorithms: Sequence[str] = FIG11_ALGORITHMS,
    variants: Sequence[str] = FIG11_VARIANTS,
    session: Optional[Session] = None,
) -> Fig11Result:
    """Reproduce Fig. 11: per-algorithm speedup and energy savings."""
    session = session or get_default_session()
    result = Fig11Result(algorithms=list(algorithms), variants=list(variants))
    gpu = OrinNXModel()
    for algorithm in algorithms:
        speedups: Dict[str, List[float]] = {variant: [] for variant in variants}
        energies: Dict[str, List[float]] = {variant: [] for variant in variants}
        for scene in scenes:
            context = session.context(scene, algorithm=algorithm)
            gpu_report = gpu.evaluate(context.workload)
            for variant in variants:
                report = _hardware_report(variant, context.workload)
                speedups[variant].append(report.speedup_over(gpu_report))
                energies[variant].append(report.energy_saving_over(gpu_report))
        result.speedup[algorithm] = {
            variant: float(np.mean(values)) for variant, values in speedups.items()
        }
        result.energy_savings[algorithm] = {
            variant: float(np.mean(values)) for variant, values in energies.items()
        }
    return result
