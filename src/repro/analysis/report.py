"""Plain-text formatting of experiment results (tables and series).

The benchmark harness prints these so a ``pytest benchmarks/ --benchmark-only``
run reproduces the paper's tables and figure series as text, and
EXPERIMENTS.md embeds the same output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    series: Dict[str, Sequence[float]], x_label: str, x_values: Sequence[object], title: str = ""
) -> str:
    """A table with one x column and one column per named series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    """Format one table cell."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
