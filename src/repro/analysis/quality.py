"""Rendering-quality experiments (Table II and Fig. 7).

Table II compares the PSNR of the original tile-centric pipeline and the
fully streaming pipeline across six scenes and three base algorithms.
Fig. 7 tracks the error-Gaussian ratio and the rendering quality during
boundary-aware fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.report import format_table
from repro.api.session import Session, get_default_session
from repro.core.config import StreamingConfig
from repro.gaussians.metrics import psnr
from repro.scenes.registry import SCENE_REGISTRY
from repro.training.boundary_finetune import BoundaryFinetuneResult, boundary_aware_finetune
from repro.training.color_refinement import dc_color_refinement_step

#: Table II scene order (as printed in the paper).
TABLE2_SCENES = ("train", "truck", "playroom", "drjohnson", "lego", "palace")

#: Table II algorithms.
TABLE2_ALGORITHMS = ("3dgs", "mini_splatting", "light_gaussian")

#: Paper Fig. 7 endpoints (train scene, original 3DGS).
PAPER_FIG7_ERROR_RATIO = (0.023, 0.004)
PAPER_FIG7_PSNR = (21.37, 22.61)

#: Paper Table II average quality drop of the streaming pipeline.
PAPER_MEAN_PSNR_DROP = 0.04


@dataclass
class QualityRow:
    """One (algorithm, scene) cell pair of Table II."""

    algorithm: str
    scene: str
    paper_baseline: float
    paper_ours: float
    measured_baseline: float
    measured_ours: float

    @property
    def measured_drop(self) -> float:
        return self.measured_baseline - self.measured_ours

    @property
    def paper_drop(self) -> float:
        return self.paper_baseline - self.paper_ours


@dataclass
class Table2Result:
    """Table II: PSNR of the original vs. streaming pipeline."""

    rows: List[QualityRow] = field(default_factory=list)

    def mean_measured_drop(self) -> float:
        return float(np.mean([row.measured_drop for row in self.rows])) if self.rows else 0.0

    def rows_for(self, algorithm: str) -> List[QualityRow]:
        return [row for row in self.rows if row.algorithm == algorithm]

    def format(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.algorithm,
                    row.scene,
                    row.paper_baseline,
                    row.paper_ours,
                    row.measured_baseline,
                    row.measured_ours,
                    row.measured_drop,
                ]
            )
        table = format_table(
            [
                "algorithm",
                "scene",
                "paper base",
                "paper ours",
                "model base",
                "model ours",
                "model drop",
            ],
            table_rows,
            title="Table II — rendering quality (PSNR, dB)",
        )
        return (
            f"{table}\n"
            f"mean quality drop: measured {self.mean_measured_drop():.2f} dB "
            f"(paper: {PAPER_MEAN_PSNR_DROP:.2f} dB)"
        )


#: Paper Table II values, ("baseline", "ours") per algorithm and scene.
PAPER_TABLE2: Dict[str, Dict[str, Tuple[float, float]]] = {
    "3dgs": {
        "train": (22.54, 22.52),
        "truck": (26.65, 26.61),
        "playroom": (30.18, 30.27),
        "drjohnson": (29.21, 29.07),
        "lego": (36.11, 36.02),
        "palace": (38.56, 38.52),
    },
    "mini_splatting": {
        "train": (21.49, 21.44),
        "truck": (25.19, 25.11),
        "playroom": (30.32, 30.37),
        "drjohnson": (29.23, 29.34),
        "lego": (36.20, 36.18),
        "palace": (39.00, 38.98),
    },
    "light_gaussian": {
        "train": (22.29, 22.32),
        "truck": (26.02, 25.89),
        "playroom": (28.58, 28.47),
        "drjohnson": (25.87, 25.79),
        "lego": (35.18, 35.15),
        "palace": (37.76, 37.68),
    },
}


def run_table2(
    scenes: Sequence[str] = TABLE2_SCENES,
    algorithms: Sequence[str] = TABLE2_ALGORITHMS,
    session: Optional[Session] = None,
) -> Table2Result:
    """Reproduce Table II.

    For every (algorithm, scene) pair the baseline is the tile-centric
    render of the calibrated trained model and "ours" is the streaming
    render of the same model; both are scored against the same ground-truth
    image.
    """
    session = session or get_default_session()
    result = Table2Result()
    for algorithm in algorithms:
        for scene in scenes:
            context = session.context(scene, algorithm=algorithm)
            paper_baseline, paper_ours = PAPER_TABLE2[algorithm][scene]
            result.rows.append(
                QualityRow(
                    algorithm=algorithm,
                    scene=scene,
                    paper_baseline=paper_baseline,
                    paper_ours=paper_ours,
                    measured_baseline=context.baseline_psnr,
                    measured_ours=context.streaming_psnr,
                )
            )
    return result


@dataclass
class Fig7Result:
    """Fig. 7: error-Gaussian ratio and PSNR during boundary fine-tuning."""

    iterations: List[int]
    error_ratio: List[float]
    quality_psnr: List[float]
    paper_error_ratio: Tuple[float, float] = PAPER_FIG7_ERROR_RATIO
    paper_psnr: Tuple[float, float] = PAPER_FIG7_PSNR

    @property
    def error_ratio_reduction(self) -> float:
        """Factor by which the error ratio shrinks over fine-tuning."""
        if not self.error_ratio or self.error_ratio[-1] == 0:
            return float("inf")
        return self.error_ratio[0] / self.error_ratio[-1]

    @property
    def psnr_gain(self) -> float:
        if not self.quality_psnr:
            return 0.0
        return self.quality_psnr[-1] - self.quality_psnr[0]

    def format(self) -> str:
        rows = [
            [iteration, 100 * ratio, quality]
            for iteration, ratio, quality in zip(
                self.iterations, self.error_ratio, self.quality_psnr
            )
        ]
        table = format_table(
            ["iteration", "error Gaussians %", "PSNR (dB)"],
            rows,
            title="Fig. 7 — boundary-aware fine-tuning (train scene)",
        )
        return (
            f"{table}\n"
            f"paper: error ratio {100 * self.paper_error_ratio[0]:.1f}% -> "
            f"{100 * self.paper_error_ratio[1]:.1f}%, "
            f"PSNR {self.paper_psnr[0]:.2f} -> {self.paper_psnr[1]:.2f} dB"
        )


def run_fig7(
    scene: str = "train",
    iterations: int = 3000,
    probe_every: int = 500,
    session: Optional[Session] = None,
) -> Fig7Result:
    """Reproduce Fig. 7 on the train scene.

    The error probe is a streaming render at the evaluation camera; the
    photometric surrogate refines DC colours against the pre-fine-tuning
    render of the trained model (the stand-in for the training images).
    """
    session = session or get_default_session()
    context = session.context(scene)
    config: StreamingConfig = context.streaming_config
    camera = context.camera
    ground_truth = context.ground_truth
    photometric_target = session.render(
        context.trained, camera, config=config, mode="tile"
    ).image
    # Fine-tuning probes render throwaway parameter snapshots (the loop
    # mutates one model in place between probes, so every probe has a new
    # content fingerprint and builds a new renderer).  A single-slot
    # isolated session keeps them from evicting the shared scene-context
    # renderers and from outliving the experiment.
    probe_session = session.isolated(max_renderers=1)

    def probe(model) -> Tuple[np.ndarray, float, float]:
        output = probe_session.render(model, camera, config=config).output
        stats = output.stats
        return (
            stats.error_gaussian_indices(),
            psnr(ground_truth, output.image),
            stats.error_gaussian_ratio,
        )

    def refiner(model):
        return dc_color_refinement_step(
            model, [camera], [photometric_target], damping=0.4
        )

    finetune: BoundaryFinetuneResult = boundary_aware_finetune(
        context.trained,
        config.voxel_size,
        iterations=iterations,
        learning_rate=0.1,
        error_probe=probe,
        probe_every=probe_every,
        photometric_refiner=refiner,
    )
    return Fig7Result(
        iterations=finetune.iterations,
        error_ratio=finetune.error_gaussian_ratio,
        quality_psnr=finetune.quality,
    )
