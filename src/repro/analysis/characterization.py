"""Characterization experiments (Sec. II-B: Fig. 2, Fig. 3, Fig. 4).

These experiments reproduce the paper's motivation: tile-centric 3DGS is
far below real time on a mobile GPU (Fig. 3), its DRAM bandwidth demand at
90 FPS exceeds the Orin NX's limit on real-world scenes (Fig. 4), and the
intermediate data between projection / sorting / rendering dominates that
traffic (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.api.session import Session, get_default_session
from repro.arch.gpu import OrinNXModel
from repro.arch.technology import ORIN_NX
from repro.arch.traffic import tile_centric_traffic
from repro.scenes.registry import SCENE_REGISTRY, scene_names

#: The ordering used by the paper's characterization figures.
CHARACTERIZATION_SCENES = ("lego", "palace", "train", "playroom", "truck", "drjohnson")

#: Fig. 2's aggregate claim: intermediate data is 85 % of tile-centric traffic.
PAPER_INTERMEDIATE_FRACTION = 0.85

#: Fig. 2 / Sec. II-B stage shares: projection 41 %, sorting 49 %.
PAPER_PROJECTION_SHARE = 0.41
PAPER_SORTING_SHARE = 0.49

#: Orin NX bandwidth limit highlighted in Fig. 4 (GB/s).
ORIN_BANDWIDTH_LIMIT_GBS = 102.4


@dataclass
class TrafficBreakdownResult:
    """Fig. 2: per-stage DRAM traffic shares of the tile-centric pipeline."""

    scenes: List[str]
    stage_fractions: Dict[str, List[float]]        # stage -> per-scene share
    intermediate_fraction: float                   # measured, averaged
    paper_intermediate_fraction: float = PAPER_INTERMEDIATE_FRACTION
    paper_projection_share: float = PAPER_PROJECTION_SHARE
    paper_sorting_share: float = PAPER_SORTING_SHARE

    def mean_share(self, stage: str) -> float:
        values = self.stage_fractions[stage]
        return sum(values) / len(values) if values else 0.0

    def format(self) -> str:
        rows = []
        for i, scene in enumerate(self.scenes):
            rows.append(
                [
                    scene,
                    100 * self.stage_fractions["projection"][i],
                    100 * self.stage_fractions["sorting"][i],
                    100 * self.stage_fractions["rendering"][i],
                ]
            )
        rows.append(
            [
                "mean",
                100 * self.mean_share("projection"),
                100 * self.mean_share("sorting"),
                100 * self.mean_share("rendering"),
            ]
        )
        table = format_table(
            ["scene", "projection %", "sorting %", "rendering %"],
            rows,
            title="Fig. 2 — tile-centric DRAM traffic breakdown",
        )
        return (
            f"{table}\n"
            f"intermediate traffic share: measured {100 * self.intermediate_fraction:.1f}% "
            f"(paper: {100 * self.paper_intermediate_fraction:.0f}%)"
        )


def run_fig2(
    scenes: Sequence[str] = CHARACTERIZATION_SCENES,
    session: Optional[Session] = None,
) -> TrafficBreakdownResult:
    """Reproduce Fig. 2's per-stage traffic proportions."""
    session = session or get_default_session()
    stage_fractions: Dict[str, List[float]] = {
        "projection": [],
        "sorting": [],
        "rendering": [],
    }
    intermediate = []
    for scene in scenes:
        context = session.context(scene)
        traffic = tile_centric_traffic(context.workload)
        fractions = traffic.fractions()
        for stage in stage_fractions:
            stage_fractions[stage].append(fractions[stage])
        intermediate.append(traffic.intermediate_bytes / traffic.total_bytes)
    return TrafficBreakdownResult(
        scenes=list(scenes),
        stage_fractions=stage_fractions,
        intermediate_fraction=sum(intermediate) / len(intermediate),
    )


@dataclass
class GpuFpsResult:
    """Fig. 3: FPS of tile-centric 3DGS on the Orin NX."""

    scenes: List[str]
    measured_fps: List[float]
    paper_fps: List[float]
    categories: List[str] = field(default_factory=list)

    def format(self) -> str:
        rows = [
            [scene, cat, round(paper, 1), round(measured, 1)]
            for scene, cat, paper, measured in zip(
                self.scenes, self.categories, self.paper_fps, self.measured_fps
            )
        ]
        return format_table(
            ["scene", "category", "paper FPS", "model FPS"],
            rows,
            title="Fig. 3 — 3DGS FPS on Orin NX",
        )


def run_fig3(
    scenes: Sequence[str] = CHARACTERIZATION_SCENES,
    session: Optional[Session] = None,
) -> GpuFpsResult:
    """Reproduce Fig. 3: per-scene GPU FPS (paper range: 2-9 FPS)."""
    session = session or get_default_session()
    gpu = OrinNXModel(ORIN_NX)
    measured, paper, categories = [], [], []
    for scene in scenes:
        context = session.context(scene)
        measured.append(gpu.fps(context.workload))
        paper.append(SCENE_REGISTRY[scene].orin_fps)
        categories.append(SCENE_REGISTRY[scene].category)
    return GpuFpsResult(
        scenes=list(scenes),
        measured_fps=measured,
        paper_fps=paper,
        categories=categories,
    )


@dataclass
class BandwidthResult:
    """Fig. 4: DRAM bandwidth required for 90 FPS per scene and stage."""

    scenes: List[str]
    categories: List[str]
    stage_gbs: Dict[str, List[float]]
    total_gbs: List[float]
    bandwidth_limit_gbs: float = ORIN_BANDWIDTH_LIMIT_GBS

    def exceeds_limit(self, scene: str) -> bool:
        index = self.scenes.index(scene)
        return self.total_gbs[index] > self.bandwidth_limit_gbs

    def format(self) -> str:
        rows = []
        for i, scene in enumerate(self.scenes):
            rows.append(
                [
                    scene,
                    self.categories[i],
                    self.stage_gbs["projection"][i],
                    self.stage_gbs["sorting"][i],
                    self.stage_gbs["rendering"][i],
                    self.total_gbs[i],
                    "yes" if self.total_gbs[i] > self.bandwidth_limit_gbs else "no",
                ]
            )
        return format_table(
            [
                "scene",
                "category",
                "proj GB/s",
                "sort GB/s",
                "render GB/s",
                "total GB/s",
                f"> {self.bandwidth_limit_gbs:.1f} GB/s",
            ],
            rows,
            title="Fig. 4 — DRAM bandwidth needed for 90 FPS",
        )


def run_fig4(
    scenes: Sequence[str] = CHARACTERIZATION_SCENES,
    fps: float = 90.0,
    session: Optional[Session] = None,
) -> BandwidthResult:
    """Reproduce Fig. 4: per-stage bandwidth demand at 90 FPS."""
    session = session or get_default_session()
    stage_gbs: Dict[str, List[float]] = {
        "projection": [],
        "sorting": [],
        "rendering": [],
    }
    totals, categories = [], []
    for scene in scenes:
        context = session.context(scene)
        traffic = tile_centric_traffic(context.workload)
        breakdown = traffic.breakdown()
        for stage in stage_gbs:
            stage_gbs[stage].append(breakdown[stage] * fps / 1e9)
        totals.append(traffic.total_bytes * fps / 1e9)
        categories.append(SCENE_REGISTRY[scene].category)
    return BandwidthResult(
        scenes=list(scenes),
        categories=categories,
        stage_gbs=stage_gbs,
        total_gbs=totals,
    )


def characterization_scene_names() -> List[str]:
    """All six evaluation scenes (synthetic first, as in the paper's figures)."""
    return list(scene_names("synthetic")) + list(scene_names("real"))
