"""Disk-backed, content-addressed store of experiment results.

A :class:`ResultStore` persists every
:class:`~repro.api.result.ExperimentResult` as one JSON file keyed by a
canonical hash of the :class:`~repro.api.spec.ExperimentSpec` that produced
it (scene x algorithm x compression x config overrides x arch model x
resolution scale), so repeated sweeps and CI runs skip evaluation points
they have already computed.

Keys are *content addressed*: the hash covers the canonical JSON form of
the spec (sorted keys, so override-dict ordering never matters) together
with the store schema version and the package version — bumping either
automatically invalidates every existing entry without any bookkeeping.
Entries that fail to parse (truncated writes, manual edits) are treated as
misses and dropped, never raised.

All writes — store entries and the benchmark trajectory files
(``BENCH_engine.json`` / ``BENCH_sweep.json``, see
:func:`append_trajectory`) — are atomic: the payload is written to a
temporary file in the same directory and then renamed over the target, so
concurrent or interrupted writers cannot truncate a file mid-read.
"""

from __future__ import annotations

import contextlib
import errno
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

try:  # advisory cross-process locking; POSIX only
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

import repro
from repro.api.result import ExperimentResult, jsonify
from repro.api.spec import ExperimentSpec
from repro.chaos import fault as _chaos_fault

#: Bump when the on-disk entry layout or the spec-hash inputs change; every
#: existing entry becomes invisible (stale files are overwritten lazily).
#: v2: keys hash :meth:`ExperimentSpec.canonical_dict` (default-equal
#: overrides dropped, numerics normalized) instead of the raw ``to_dict``.
STORE_SCHEMA_VERSION = 2


@contextlib.contextmanager
def advisory_file_lock(path: Union[str, Path]) -> Iterator[None]:
    """Exclusive cross-process advisory lock on ``path`` (``flock``).

    Serializes writers that share one store directory — e.g. concurrent
    ``runner all --jobs N`` worker processes putting results into the same
    cache — so a put and the eviction scan it may trigger never interleave
    with another process's.  The lock is *advisory* (readers never take
    it; entry reads stay lock-free because writes are already atomic) and
    degrades to a no-op where ``fcntl`` is unavailable.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def atomic_write_json(path: Union[str, Path], data: Any, indent: Optional[int] = 2) -> None:
    """Write ``data`` as JSON to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    try:
        tmp.write_text(json.dumps(jsonify(data), indent=indent) + "\n")
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed replace
            tmp.unlink()


def append_trajectory(path: Union[str, Path], entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append one entry to a JSON-list trajectory file, atomically.

    Interrupted or concurrent appends can never truncate the file: the
    updated list is written to a temporary sibling and renamed into place.
    An existing file that fails to parse is moved aside to
    ``<name>.corrupt`` and the trajectory restarts from this entry.
    Returns the trajectory including the new entry.
    """
    path = Path(path)
    trajectory: List[Dict[str, Any]] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if not isinstance(loaded, list):
                raise ValueError(f"trajectory {path} is not a JSON list")
        except (json.JSONDecodeError, ValueError):
            path.replace(path.with_name(path.name + ".corrupt"))
        else:
            trajectory = loaded
    trajectory.append(dict(entry))
    atomic_write_json(path, trajectory)
    return trajectory


def spec_key(spec: ExperimentSpec, version: Optional[str] = None) -> str:
    """The canonical content hash of one experiment spec.

    Covers the spec's canonical JSON form
    (:meth:`~repro.api.spec.ExperimentSpec.canonical_dict`: sorted keys, so
    override-dict ordering never matters; overrides that restate a default
    dropped, so equivalent-default specs hash identically), the store
    schema version and the package version.  Two specs describing the same
    evaluation point always hash identically; a schema or package version
    bump changes every key.
    """
    payload = {
        "schema": STORE_SCHEMA_VERSION,
        "version": version if version is not None else repro.__version__,
        "spec": spec.canonical_dict(),
    }
    blob = json.dumps(jsonify(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def resolve_store(cache: Any) -> Optional["ResultStore"]:
    """Normalize a ``cache``/``store`` argument to a store (or ``None``).

    Accepts ``None``/``False`` (no caching), a directory path, or a
    :class:`ResultStore`; ``True`` is rejected as ambiguous.  The one
    normalization used by :class:`~repro.api.session.Session` and
    :class:`~repro.api.executor.SweepExecutor`.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        raise ValueError("cache=True is ambiguous; pass a directory or a ResultStore")
    if isinstance(cache, (str, Path)):
        return ResultStore(cache)
    if isinstance(cache, ResultStore):
        return cache
    raise TypeError(f"cannot use a {type(cache).__name__!r} as a result store")


class ResultStore:
    """Content-addressed on-disk cache of experiment results.

    Parameters
    ----------
    root:
        Directory holding the entries (created on demand).  Entries are
        sharded into 256 two-hex-digit subdirectories by key prefix.
    version:
        Version string folded into every key; defaults to the package
        version, so a release bump invalidates the whole store
        automatically.  Tests override it to exercise invalidation.
    max_bytes:
        Optional size cap on the entries' total on-disk bytes.  Every
        :meth:`put` enforces it by evicting least-recently-used entries
        (by file mtime — :meth:`get` touches entries it returns, so hits
        refresh recency); ``None`` disables eviction.  :meth:`gc` runs the
        same collection on demand.
    """

    def __init__(
        self,
        root: Union[str, Path],
        version: Optional[str] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.version = version if version is not None else repro.__version__
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        # Running estimate of the entries' total bytes, so capped puts only
        # pay a full directory scan when the cap is plausibly crossed (gc
        # recomputes it exactly).  None = not measured yet.
        self._approx_bytes: Optional[int] = None

    # ------------------------------------------------------------------
    def key(self, spec: ExperimentSpec) -> str:
        """The store key of a spec (see :func:`spec_key`)."""
        return spec_key(spec, version=self.version)

    def path(self, spec: ExperimentSpec) -> Path:
        """The entry file a spec maps to."""
        key = self.key(spec)
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, spec: ExperimentSpec) -> Optional[ExperimentResult]:
        """The stored result of ``spec``, or ``None`` on a miss.

        Corrupted entries (truncated JSON, wrong shape, key mismatch) are
        removed and reported as misses, so a damaged cache heals itself on
        the next run instead of failing it.
        """
        path = self.path(spec)
        try:
            entry = json.loads(path.read_text())
            if entry["key"] != self.key(spec):
                raise ValueError("stored entry key mismatch")
            result = ExperimentResult.from_dict(entry["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # refresh recency so eviction is LRU, not FIFO
        except OSError:  # pragma: no cover - entry raced away; still a hit
            pass
        return result

    @property
    def lock_path(self) -> Path:
        """The advisory lock file serializing writers of this store."""
        return self.root / ".lock"

    def put(self, spec: ExperimentSpec, result: ExperimentResult) -> Path:
        """Persist one result under its spec's key (atomic write).

        Writers take the store's advisory file lock
        (:func:`advisory_file_lock`), so concurrent processes sharing the
        directory — sharded sweep workers, ``runner all --jobs N`` — never
        interleave a put with another writer's eviction pass.
        """
        path = self.path(spec)
        if _chaos_fault("store.enospc") is not None:
            # Simulated full disk: callers treat the cache as best-effort,
            # so the request that produced the result still succeeds.
            raise OSError(errno.ENOSPC, "injected: no space left on device", str(path))
        with advisory_file_lock(self.lock_path):
            atomic_write_json(
                path,
                {
                    "key": self.key(spec),
                    "schema": STORE_SCHEMA_VERSION,
                    "version": self.version,
                    "spec": spec.to_dict(),
                    "result": result.to_dict(),
                },
            )
            if _chaos_fault("store.corrupt_entry") is not None:
                # Simulated corruption after the write: the next get()
                # self-heals the entry back to a miss.
                text = path.read_text()
                path.write_text(text[: max(1, len(text) // 2)])
            if self.max_bytes is not None:
                if self._approx_bytes is not None:
                    try:
                        self._approx_bytes += path.stat().st_size
                    except OSError:  # pragma: no cover - raced away after write
                        self._approx_bytes = None
                if self._approx_bytes is None or self._approx_bytes > self.max_bytes:
                    self._collect(protect=path)
        return path

    def gc(
        self, max_bytes: Optional[int] = None, protect: Optional[Path] = None
    ) -> Dict[str, int]:
        """Evict least-recently-used entries until the store fits the cap.

        ``max_bytes`` overrides the store's configured cap for this pass
        (``None`` uses ``self.max_bytes``; a store without a cap collects
        nothing).  ``protect`` names one entry that is never evicted — the
        entry a :meth:`put` just wrote, so a cap smaller than a single
        result still keeps the freshest one.  Returns a summary of the
        collection: entries/bytes removed and entries/bytes remaining.
        """
        with advisory_file_lock(self.lock_path):
            return self._collect(max_bytes=max_bytes, protect=protect)

    def _collect(
        self, max_bytes: Optional[int] = None, protect: Optional[Path] = None
    ) -> Dict[str, int]:
        """Eviction pass body; callers hold the advisory lock."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        summary = {"removed": 0, "removed_bytes": 0, "entries": 0, "bytes": 0}
        entries = []
        if self.root.exists():
            for path in self.root.glob("*/*.json"):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - raced away mid-scan
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        if cap is not None:
            for _, size, path in sorted(entries, key=lambda entry: entry[0]):
                if total <= cap:
                    break
                if protect is not None and path == protect:
                    continue
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleanup is fine
                    continue
                total -= size
                summary["removed"] += 1
                summary["removed_bytes"] += size
                self.evicted += 1
        summary["entries"] = len(entries) - summary["removed"]
        summary["bytes"] = total
        self._approx_bytes = total
        return summary

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.path(spec).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters and the number of entries on disk."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evicted": self.evicted,
            "entries": len(self),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.glob("*/*.json"):
                path.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(root={str(self.root)!r}, version={self.version!r}, entries={len(self)})"
