"""Declarative experiment specifications and grid sweeps.

An :class:`ExperimentSpec` names one point of the evaluation space:

    scene x algorithm variant x compression x streaming-config overrides
          x architecture model (with unit-count overrides)

:func:`sweep` expands parameter grids into spec lists; each grid key is
routed automatically to the right layer (a spec axis, a
:class:`~repro.core.config.StreamingConfig` field, or an
:class:`~repro.arch.accelerator.AcceleratorConfig` unit count), which is how
Fig. 12 / Fig. 13-style sensitivity studies are expressed.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.arch.accelerator import AcceleratorConfig
from repro.core.config import StreamingConfig
from repro.scenes.registry import SCENE_REGISTRY, SceneDescriptor

#: Spec-level axes a sweep can vary directly.
SPEC_AXES = ("scene", "algorithm", "compression", "arch", "resolution_scale", "tag")

#: Compression of the DRAM second half: vector quantization on or off.
COMPRESSION_MODES = ("vq", "none")

#: Hardware models an experiment point can be evaluated on.
ARCH_MODELS = ("gpu", "gscore", "streaminggs", "wo_cgf", "wo_vq_cgf")

#: Architectures built from :class:`AcceleratorConfig` (accept unit-count
#: overrides and report silicon area).
ACCELERATOR_ARCHS = ("streaminggs", "wo_cgf", "wo_vq_cgf")

_CONFIG_FIELDS = frozenset(f.name for f in dataclass_fields(StreamingConfig))

#: AcceleratorConfig fields sweepable through ``arch_options``; the ablation
#: flags are excluded — select them via ``arch=`` / ``compression=`` instead.
_ARCH_OPTION_FIELDS = frozenset(
    f.name for f in dataclass_fields(AcceleratorConfig)
) - {"use_vq", "use_coarse_filter"}

Overrides = Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]]


def _freeze(overrides: Overrides, allowed: frozenset, what: str) -> Tuple[Tuple[str, Any], ...]:
    """Normalize an override mapping to a sorted, hashable tuple of pairs."""
    items = dict(overrides)
    unknown = sorted(set(items) - allowed)
    if unknown:
        raise ValueError(f"unknown {what} override(s) {unknown}; allowed: {sorted(allowed)}")
    return tuple(sorted(items.items()))


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative point of the evaluation space.

    Attributes
    ----------
    scene:
        Registered scene name (see :data:`repro.scenes.registry.SCENE_REGISTRY`).
    algorithm:
        Base algorithm variant (``3dgs``, ``mini_splatting``,
        ``light_gaussian``).
    compression:
        ``"vq"`` streams the DRAM second half as codebook indices (the
        paper's default), ``"none"`` disables vector quantization.
    arch:
        Hardware model evaluated on the resulting workload: ``gpu`` (Orin
        NX), ``gscore``, or the streaming accelerator (``streaminggs``,
        ``wo_cgf``, ``wo_vq_cgf`` ablations).
    config:
        :class:`StreamingConfig` field overrides (``voxel_size``,
        ``blend_kernel``, ``tile_size``, ...).  ``use_vq`` is reserved —
        select it through ``compression`` instead.
    arch_options:
        :class:`AcceleratorConfig` unit-count overrides (``cfus_per_hfu``,
        ``ffus_per_hfu``, ...); only valid for accelerator architectures.
    resolution_scale:
        Scale factor on the simulated evaluation resolution.
    tag:
        Free-form label carried into the result's metadata.
    """

    scene: str = "train"
    algorithm: str = "3dgs"
    compression: str = "vq"
    arch: str = "streaminggs"
    config: Overrides = field(default_factory=tuple)
    arch_options: Overrides = field(default_factory=tuple)
    resolution_scale: float = 1.0
    tag: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", _freeze(self.config, _CONFIG_FIELDS, "StreamingConfig"))
        object.__setattr__(
            self, "arch_options", _freeze(self.arch_options, _ARCH_OPTION_FIELDS, "AcceleratorConfig")
        )
        if self.scene not in SCENE_REGISTRY:
            raise ValueError(f"unknown scene {self.scene!r}; available: {sorted(SCENE_REGISTRY)}")
        from repro.variants.base import list_algorithms

        if self.algorithm not in list_algorithms():
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; available: {list_algorithms()}"
            )
        if self.compression not in COMPRESSION_MODES:
            raise ValueError(
                f"unknown compression {self.compression!r}; available: {list(COMPRESSION_MODES)}"
            )
        if self.arch not in ARCH_MODELS:
            raise ValueError(f"unknown arch {self.arch!r}; available: {list(ARCH_MODELS)}")
        if dict(self.config).get("use_vq") is not None:
            raise ValueError("select VQ through compression=..., not a use_vq config override")
        if self.arch_options and self.arch not in ACCELERATOR_ARCHS:
            raise ValueError(
                f"arch_options only apply to {list(ACCELERATOR_ARCHS)}, not arch={self.arch!r}"
            )
        if self.resolution_scale <= 0:
            raise ValueError(f"resolution_scale must be positive, got {self.resolution_scale}")

    # ------------------------------------------------------------------
    @property
    def config_overrides(self) -> Dict[str, Any]:
        """StreamingConfig overrides as a plain dictionary."""
        return dict(self.config)

    @property
    def arch_overrides(self) -> Dict[str, Any]:
        """AcceleratorConfig overrides as a plain dictionary."""
        return dict(self.arch_options)

    @property
    def descriptor(self) -> SceneDescriptor:
        return SCENE_REGISTRY[self.scene]

    @property
    def label(self) -> str:
        """Short human-readable point label (tag wins when set)."""
        return self.tag or f"{self.scene}/{self.algorithm}/{self.arch}"

    # ------------------------------------------------------------------
    def streaming_config(self) -> StreamingConfig:
        """The resolved :class:`StreamingConfig` of this point.

        Starts from the scene's paper-default voxel size, applies the
        compression axis, then the explicit config overrides.
        """
        base = StreamingConfig(
            voxel_size=self.descriptor.default_voxel_size,
            use_vq=self.compression == "vq",
        )
        overrides = self.config_overrides
        return base.with_options(**overrides) if overrides else base

    def accelerator_config(self) -> AcceleratorConfig:
        """The resolved :class:`AcceleratorConfig` (accelerator archs only)."""
        if self.arch not in ACCELERATOR_ARCHS:
            raise ValueError(f"arch {self.arch!r} is not an accelerator configuration")
        base = AcceleratorConfig.variant(self.arch)
        overrides = self.arch_overrides
        return replace(base, **overrides) if overrides else base

    def with_options(self, **kwargs: Any) -> "ExperimentSpec":
        """A copy with the given spec fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native representation (used in result metadata)."""
        return {
            "scene": self.scene,
            "algorithm": self.algorithm,
            "compression": self.compression,
            "arch": self.arch,
            "config": self.config_overrides,
            "arch_options": self.arch_overrides,
            "resolution_scale": self.resolution_scale,
            "tag": self.tag,
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """The spec reduced to what actually selects its evaluation point.

        Two specs describing the same point must canonicalize identically,
        so this drops overrides that restate a default — a config override
        equal to the resolved base config (scene default voxel size +
        compression axis) or an arch option equal to the arch variant's
        default — and normalizes numeric override values to floats, so
        ``tile_size=8`` and ``tile_size=8.0`` are one point.  ``tag`` is
        kept: it is carried into the result's labels, so differently tagged
        runs are distinct cacheable artifacts.  The result-store hash
        (:func:`repro.api.store.spec_key`) is built on this form.
        """

        def normalize(value: Any) -> Any:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return value
            return float(value)

        base = StreamingConfig(
            voxel_size=self.descriptor.default_voxel_size,
            use_vq=self.compression == "vq",
        )
        config = {
            key: normalize(value)
            for key, value in self.config_overrides.items()
            if getattr(base, key) != value
        }
        arch_options = self.arch_overrides
        if self.arch in ACCELERATOR_ARCHS:
            arch_base = AcceleratorConfig.variant(self.arch)
            arch_options = {
                key: normalize(value)
                for key, value in arch_options.items()
                if getattr(arch_base, key) != value
            }
        return {
            "scene": self.scene,
            "algorithm": self.algorithm,
            "compression": self.compression,
            "arch": self.arch,
            "config": config,
            "arch_options": arch_options,
            "resolution_scale": float(self.resolution_scale),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`to_dict` form (lossless)."""
        known = {field.name for field in dataclass_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown spec field(s) {unknown}; allowed: {sorted(known)}")
        return cls(**{key: data[key] for key in data})

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form; :meth:`from_json` reproduces the spec."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))


def _values_list(key: str, values: Any) -> List[Any]:
    """Normalize one grid axis to a non-empty list of values."""
    if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
        values = [values]
    values = list(values)
    if not values:
        raise ValueError(f"sweep axis {key!r} has no values")
    return values


def sweep(base: Optional[ExperimentSpec] = None, **grid: Any) -> List[ExperimentSpec]:
    """Expand a parameter grid into a list of :class:`ExperimentSpec`.

    Every keyword is one swept axis; its values may be a sequence or a
    scalar.  Keys are routed automatically:

    * spec axes (``scene``, ``algorithm``, ``compression``, ``arch``,
      ``resolution_scale``, ``tag``) replace the base spec's field;
    * :class:`StreamingConfig` fields (``voxel_size``, ``blend_kernel``,
      ``tile_size``, ...) become config overrides;
    * :class:`AcceleratorConfig` unit counts (``cfus_per_hfu``,
      ``ffus_per_hfu``, ...) become arch options.

    The expansion is the cartesian product in keyword order (last axis
    fastest), matching nested for-loops.  Each produced spec gets an
    auto-generated ``tag`` naming its swept values (unless ``tag`` itself is
    swept).

    >>> specs = sweep(ExperimentSpec(scene="train"), voxel_size=(1.0, 2.0))
    >>> [s.config_overrides["voxel_size"] for s in specs]
    [1.0, 2.0]
    """
    base = base if base is not None else ExperimentSpec()
    axes: List[Tuple[str, List[Any]]] = []
    for key, values in grid.items():
        if key not in SPEC_AXES and key not in _CONFIG_FIELDS and key not in _ARCH_OPTION_FIELDS:
            raise ValueError(
                f"unknown sweep axis {key!r}; spec axes: {list(SPEC_AXES)}, "
                f"StreamingConfig fields: {sorted(_CONFIG_FIELDS)}, "
                f"AcceleratorConfig fields: {sorted(_ARCH_OPTION_FIELDS)}"
            )
        axes.append((key, _values_list(key, values)))

    specs: List[ExperimentSpec] = []
    for combo in itertools.product(*(values for _, values in axes)):
        updates: Dict[str, Any] = {}
        config = dict(base.config)
        arch_options = dict(base.arch_options)
        for (key, _), value in zip(axes, combo):
            if key in SPEC_AXES:
                updates[key] = value
            elif key in _CONFIG_FIELDS:
                config[key] = value
            else:
                arch_options[key] = value
        if "tag" not in updates:
            point = ", ".join(f"{key}={value}" for (key, _), value in zip(axes, combo))
            if point:
                updates["tag"] = f"{base.tag}: {point}" if base.tag else point
        specs.append(replace(base, config=config, arch_options=arch_options, **updates))
    return specs
