"""Declarative experiment specifications and grid sweeps.

An :class:`ExperimentSpec` names one point of the evaluation space:

    scene x algorithm variant x compression x streaming-config overrides
          x architecture model (with unit-count overrides)

:func:`sweep` expands parameter grids into spec lists; each grid key is
routed automatically to the right layer (a spec axis, a
:class:`~repro.core.config.StreamingConfig` field, or an
:class:`~repro.arch.accelerator.AcceleratorConfig` unit count), which is how
Fig. 12 / Fig. 13-style sensitivity studies are expressed.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.arch.accelerator import AcceleratorConfig
from repro.core.config import StreamingConfig
from repro.engine.service import RenderOptions
from repro.gaussians.camera import Camera
from repro.scenes.registry import SCENE_REGISTRY, TRAJECTORY_REGISTRY, SceneDescriptor

#: Spec-level axes a sweep can vary directly.
SPEC_AXES = ("scene", "algorithm", "compression", "arch", "resolution_scale", "tag")

#: Compression of the DRAM second half: vector quantization on or off.
COMPRESSION_MODES = ("vq", "none")

#: Hardware models an experiment point can be evaluated on.
ARCH_MODELS = ("gpu", "gscore", "streaminggs", "wo_cgf", "wo_vq_cgf")

#: Architectures built from :class:`AcceleratorConfig` (accept unit-count
#: overrides and report silicon area).
ACCELERATOR_ARCHS = ("streaminggs", "wo_cgf", "wo_vq_cgf")

_CONFIG_FIELDS = frozenset(f.name for f in dataclass_fields(StreamingConfig))

#: AcceleratorConfig fields sweepable through ``arch_options``; the ablation
#: flags are excluded — select them via ``arch=`` / ``compression=`` instead.
_ARCH_OPTION_FIELDS = frozenset(
    f.name for f in dataclass_fields(AcceleratorConfig)
) - {"use_vq", "use_coarse_filter"}

Overrides = Union[Mapping[str, Any], Tuple[Tuple[str, Any], ...]]


def _freeze(overrides: Overrides, allowed: frozenset, what: str) -> Tuple[Tuple[str, Any], ...]:
    """Normalize an override mapping to a sorted, hashable tuple of pairs."""
    items = dict(overrides)
    unknown = sorted(set(items) - allowed)
    if unknown:
        raise ValueError(f"unknown {what} override(s) {unknown}; allowed: {sorted(allowed)}")
    return tuple(sorted(items.items()))


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative point of the evaluation space.

    Attributes
    ----------
    scene:
        Registered scene name (see :data:`repro.scenes.registry.SCENE_REGISTRY`).
    algorithm:
        Base algorithm variant (``3dgs``, ``mini_splatting``,
        ``light_gaussian``).
    compression:
        ``"vq"`` streams the DRAM second half as codebook indices (the
        paper's default), ``"none"`` disables vector quantization.
    arch:
        Hardware model evaluated on the resulting workload: ``gpu`` (Orin
        NX), ``gscore``, or the streaming accelerator (``streaminggs``,
        ``wo_cgf``, ``wo_vq_cgf`` ablations).
    config:
        :class:`StreamingConfig` field overrides (``voxel_size``,
        ``blend_kernel``, ``tile_size``, ...).  ``use_vq`` is reserved —
        select it through ``compression`` instead.
    arch_options:
        :class:`AcceleratorConfig` unit-count overrides (``cfus_per_hfu``,
        ``ffus_per_hfu``, ...); only valid for accelerator architectures.
    resolution_scale:
        Scale factor on the simulated evaluation resolution.
    tag:
        Free-form label carried into the result's metadata.
    """

    scene: str = "train"
    algorithm: str = "3dgs"
    compression: str = "vq"
    arch: str = "streaminggs"
    config: Overrides = field(default_factory=tuple)
    arch_options: Overrides = field(default_factory=tuple)
    resolution_scale: float = 1.0
    tag: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", _freeze(self.config, _CONFIG_FIELDS, "StreamingConfig"))
        object.__setattr__(
            self, "arch_options", _freeze(self.arch_options, _ARCH_OPTION_FIELDS, "AcceleratorConfig")
        )
        if self.scene not in SCENE_REGISTRY:
            raise ValueError(f"unknown scene {self.scene!r}; available: {sorted(SCENE_REGISTRY)}")
        from repro.variants.base import list_algorithms

        if self.algorithm not in list_algorithms():
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; available: {list_algorithms()}"
            )
        if self.compression not in COMPRESSION_MODES:
            raise ValueError(
                f"unknown compression {self.compression!r}; available: {list(COMPRESSION_MODES)}"
            )
        if self.arch not in ARCH_MODELS:
            raise ValueError(f"unknown arch {self.arch!r}; available: {list(ARCH_MODELS)}")
        if dict(self.config).get("use_vq") is not None:
            raise ValueError("select VQ through compression=..., not a use_vq config override")
        if self.arch_options and self.arch not in ACCELERATOR_ARCHS:
            raise ValueError(
                f"arch_options only apply to {list(ACCELERATOR_ARCHS)}, not arch={self.arch!r}"
            )
        if self.resolution_scale <= 0:
            raise ValueError(f"resolution_scale must be positive, got {self.resolution_scale}")

    # ------------------------------------------------------------------
    @property
    def config_overrides(self) -> Dict[str, Any]:
        """StreamingConfig overrides as a plain dictionary."""
        return dict(self.config)

    @property
    def arch_overrides(self) -> Dict[str, Any]:
        """AcceleratorConfig overrides as a plain dictionary."""
        return dict(self.arch_options)

    @property
    def descriptor(self) -> SceneDescriptor:
        return SCENE_REGISTRY[self.scene]

    @property
    def label(self) -> str:
        """Short human-readable point label (tag wins when set)."""
        return self.tag or f"{self.scene}/{self.algorithm}/{self.arch}"

    # ------------------------------------------------------------------
    def streaming_config(self) -> StreamingConfig:
        """The resolved :class:`StreamingConfig` of this point.

        Starts from the scene's paper-default voxel size, applies the
        compression axis, then the explicit config overrides.
        """
        base = StreamingConfig(
            voxel_size=self.descriptor.default_voxel_size,
            use_vq=self.compression == "vq",
        )
        overrides = self.config_overrides
        return base.with_options(**overrides) if overrides else base

    def accelerator_config(self) -> AcceleratorConfig:
        """The resolved :class:`AcceleratorConfig` (accelerator archs only)."""
        if self.arch not in ACCELERATOR_ARCHS:
            raise ValueError(f"arch {self.arch!r} is not an accelerator configuration")
        base = AcceleratorConfig.variant(self.arch)
        overrides = self.arch_overrides
        return replace(base, **overrides) if overrides else base

    def with_options(self, **kwargs: Any) -> "ExperimentSpec":
        """A copy with the given spec fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native representation (used in result metadata)."""
        return {
            "scene": self.scene,
            "algorithm": self.algorithm,
            "compression": self.compression,
            "arch": self.arch,
            "config": self.config_overrides,
            "arch_options": self.arch_overrides,
            "resolution_scale": self.resolution_scale,
            "tag": self.tag,
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """The spec reduced to what actually selects its evaluation point.

        Two specs describing the same point must canonicalize identically,
        so this drops overrides that restate a default — a config override
        equal to the resolved base config (scene default voxel size +
        compression axis) or an arch option equal to the arch variant's
        default — and normalizes numeric override values to floats, so
        ``tile_size=8`` and ``tile_size=8.0`` are one point.  ``tag`` is
        kept: it is carried into the result's labels, so differently tagged
        runs are distinct cacheable artifacts.  The result-store hash
        (:func:`repro.api.store.spec_key`) is built on this form.
        """

        def normalize(value: Any) -> Any:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return value
            return float(value)

        base = StreamingConfig(
            voxel_size=self.descriptor.default_voxel_size,
            use_vq=self.compression == "vq",
        )
        config = {
            key: normalize(value)
            for key, value in self.config_overrides.items()
            if getattr(base, key) != value
        }
        arch_options = self.arch_overrides
        if self.arch in ACCELERATOR_ARCHS:
            arch_base = AcceleratorConfig.variant(self.arch)
            arch_options = {
                key: normalize(value)
                for key, value in arch_options.items()
                if getattr(arch_base, key) != value
            }
        return {
            "scene": self.scene,
            "algorithm": self.algorithm,
            "compression": self.compression,
            "arch": self.arch,
            "config": config,
            "arch_options": arch_options,
            "resolution_scale": float(self.resolution_scale),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`to_dict` form (lossless)."""
        known = {field.name for field in dataclass_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown spec field(s) {unknown}; allowed: {sorted(known)}")
        return cls(**{key: data[key] for key in data})

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form; :meth:`from_json` reproduces the spec."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))


def _values_list(key: str, values: Any) -> List[Any]:
    """Normalize one grid axis to a non-empty list of values."""
    if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
        values = [values]
    values = list(values)
    if not values:
        raise ValueError(f"sweep axis {key!r} has no values")
    return values


def sweep(base: Optional[ExperimentSpec] = None, **grid: Any) -> List[ExperimentSpec]:
    """Expand a parameter grid into a list of :class:`ExperimentSpec`.

    Every keyword is one swept axis; its values may be a sequence or a
    scalar.  Keys are routed automatically:

    * spec axes (``scene``, ``algorithm``, ``compression``, ``arch``,
      ``resolution_scale``, ``tag``) replace the base spec's field;
    * :class:`StreamingConfig` fields (``voxel_size``, ``blend_kernel``,
      ``tile_size``, ...) become config overrides;
    * :class:`AcceleratorConfig` unit counts (``cfus_per_hfu``,
      ``ffus_per_hfu``, ...) become arch options.

    The expansion is the cartesian product in keyword order (last axis
    fastest), matching nested for-loops.  Each produced spec gets an
    auto-generated ``tag`` naming its swept values (unless ``tag`` itself is
    swept).

    >>> specs = sweep(ExperimentSpec(scene="train"), voxel_size=(1.0, 2.0))
    >>> [s.config_overrides["voxel_size"] for s in specs]
    [1.0, 2.0]
    """
    base = base if base is not None else ExperimentSpec()
    axes: List[Tuple[str, List[Any]]] = []
    for key, values in grid.items():
        if key not in SPEC_AXES and key not in _CONFIG_FIELDS and key not in _ARCH_OPTION_FIELDS:
            raise ValueError(
                f"unknown sweep axis {key!r}; spec axes: {list(SPEC_AXES)}, "
                f"StreamingConfig fields: {sorted(_CONFIG_FIELDS)}, "
                f"AcceleratorConfig fields: {sorted(_ARCH_OPTION_FIELDS)}"
            )
        axes.append((key, _values_list(key, values)))

    specs: List[ExperimentSpec] = []
    for combo in itertools.product(*(values for _, values in axes)):
        updates: Dict[str, Any] = {}
        config = dict(base.config)
        arch_options = dict(base.arch_options)
        for (key, _), value in zip(axes, combo):
            if key in SPEC_AXES:
                updates[key] = value
            elif key in _CONFIG_FIELDS:
                config[key] = value
            else:
                arch_options[key] = value
        if "tag" not in updates:
            point = ", ".join(f"{key}={value}" for (key, _), value in zip(axes, combo))
            if point:
                updates["tag"] = f"{base.tag}: {point}" if base.tag else point
        specs.append(replace(base, config=config, arch_options=arch_options, **updates))
    return specs


# ----------------------------------------------------------------------
# Trajectory specifications.
# ----------------------------------------------------------------------

#: RenderOptions fields adjustable through ``TrajectorySpec.options``;
#: ``resolution_scale`` is reserved — it is a spec axis (it shapes the
#: generated cameras, not just the render call).
_TRAJECTORY_OPTION_FIELDS = frozenset(
    f.name for f in dataclass_fields(RenderOptions)
) - {"resolution_scale"}

#: Keys of one explicit camera pose in a :class:`TrajectorySpec` path.
_POSE_REQUIRED = ("rotation", "translation", "width", "height", "fx", "fy")
_POSE_OPTIONAL = ("near", "far")


def _freeze_pose(pose: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalize one explicit pose (Camera or mapping) to a hashable tuple.

    The frozen form is JSON-native scalars only — rotation as nine floats,
    translation as three — so explicit trajectories stay hashable,
    canonicalizable and wire-expressible exactly like named ones.
    """
    if isinstance(pose, Camera):
        pose = {
            "rotation": pose.rotation.reshape(-1).tolist(),
            "translation": pose.translation.tolist(),
            "width": pose.width,
            "height": pose.height,
            "fx": pose.fx,
            "fy": pose.fy,
            "near": pose.near,
            "far": pose.far,
        }
    items = dict(pose)
    missing = sorted(set(_POSE_REQUIRED) - set(items))
    if missing:
        raise ValueError(f"explicit pose missing field(s) {missing}")
    unknown = sorted(set(items) - set(_POSE_REQUIRED) - set(_POSE_OPTIONAL))
    if unknown:
        raise ValueError(
            f"unknown pose field(s) {unknown}; "
            f"allowed: {sorted(_POSE_REQUIRED + _POSE_OPTIONAL)}"
        )
    rotation = tuple(float(v) for v in items["rotation"])
    if len(rotation) != 9:
        raise ValueError(f"pose rotation must have 9 entries, got {len(rotation)}")
    translation = tuple(float(v) for v in items["translation"])
    if len(translation) != 3:
        raise ValueError(
            f"pose translation must have 3 entries, got {len(translation)}"
        )
    frozen = {
        "rotation": rotation,
        "translation": translation,
        "width": int(items["width"]),
        "height": int(items["height"]),
        "fx": float(items["fx"]),
        "fy": float(items["fy"]),
        "near": float(items.get("near", 0.05)),
        "far": float(items.get("far", 1000.0)),
    }
    return tuple(sorted(frozen.items()))


def _pose_camera(pose: Tuple[Tuple[str, Any], ...]) -> Camera:
    """Rebuild a :class:`Camera` from a frozen pose tuple."""
    import numpy as np

    items = dict(pose)
    return Camera(
        rotation=np.array(items["rotation"], dtype=np.float64).reshape(3, 3),
        translation=np.array(items["translation"], dtype=np.float64),
        width=items["width"],
        height=items["height"],
        fx=items["fx"],
        fy=items["fy"],
        near=items["near"],
        far=items["far"],
    )


def _pose_dict(pose: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    """JSON-native form of a frozen pose tuple."""
    items = dict(pose)
    return {
        "rotation": list(items["rotation"]),
        "translation": list(items["translation"]),
        "width": items["width"],
        "height": items["height"],
        "fx": items["fx"],
        "fy": items["fy"],
        "near": items["near"],
        "far": items["far"],
    }


@dataclass(frozen=True)
class TrajectorySpec:
    """One declarative trajectory workload: a scene, a camera path, options.

    The trajectory-side sibling of :class:`ExperimentSpec` — same frozen /
    hashable / canonicalizable contract, so trajectory runs are cacheable
    in a :class:`~repro.api.store.ResultStore` and expressible over the
    service wire protocol.

    Attributes
    ----------
    scene:
        Registered scene name.
    path:
        Either a registered trajectory name (``orbit``, ``walkthrough``,
        ``dolly`` — see
        :data:`repro.scenes.registry.TRAJECTORY_REGISTRY`) or an explicit
        pose list (:class:`~repro.gaussians.camera.Camera` objects or pose
        mappings with ``rotation``/``translation``/``width``/``height``/
        ``fx``/``fy`` and optional ``near``/``far``).
    frames:
        Frame count of a named path.  For an explicit pose list the count
        is derived from the list (the field is overwritten to match).
    config:
        :class:`StreamingConfig` field overrides applied on top of the
        trajectory base config — the scene's paper-default voxel size with
        ``temporal_mode="carry"`` (trajectories default to the coherence
        fast path; override ``temporal_mode="off"`` to force cold frames).
    options:
        :class:`~repro.engine.service.RenderOptions` field overrides
        (``tile_workers``, ``tile_mode``, ``streaming_kernel``,
        ``temporal_mode``).  ``resolution_scale`` is reserved — set it on
        the spec, where it shapes the generated cameras.
    resolution_scale:
        Scale factor on the trajectory's camera resolution.
    tag:
        Free-form label carried into result metadata (kept in the
        canonical form: differently tagged runs are distinct artifacts).
    """

    scene: str = "train"
    path: Union[str, Tuple[Tuple[Tuple[str, Any], ...], ...], List[Any]] = "orbit"
    frames: int = 16
    config: Overrides = field(default_factory=tuple)
    options: Overrides = field(default_factory=tuple)
    resolution_scale: float = 1.0
    tag: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "config", _freeze(self.config, _CONFIG_FIELDS, "StreamingConfig")
        )
        object.__setattr__(
            self,
            "options",
            _freeze(self.options, _TRAJECTORY_OPTION_FIELDS, "RenderOptions"),
        )
        if self.scene not in SCENE_REGISTRY:
            raise ValueError(
                f"unknown scene {self.scene!r}; available: {sorted(SCENE_REGISTRY)}"
            )
        if isinstance(self.path, str):
            if self.path not in TRAJECTORY_REGISTRY:
                raise ValueError(
                    f"unknown trajectory {self.path!r}; "
                    f"available: {sorted(TRAJECTORY_REGISTRY)}"
                )
            if self.frames < 1:
                raise ValueError(f"frames must be >= 1, got {self.frames}")
        else:
            poses = tuple(_freeze_pose(pose) for pose in self.path)
            if not poses:
                raise ValueError("explicit trajectory path has no poses")
            object.__setattr__(self, "path", poses)
            object.__setattr__(self, "frames", len(poses))
        if self.resolution_scale <= 0:
            raise ValueError(
                f"resolution_scale must be positive, got {self.resolution_scale}"
            )
        # Instantiate eagerly so invalid option values fail at spec
        # construction, not at render time.
        self.render_options()

    # ------------------------------------------------------------------
    @property
    def config_overrides(self) -> Dict[str, Any]:
        """StreamingConfig overrides as a plain dictionary."""
        return dict(self.config)

    @property
    def option_overrides(self) -> Dict[str, Any]:
        """RenderOptions overrides as a plain dictionary."""
        return dict(self.options)

    @property
    def descriptor(self) -> SceneDescriptor:
        return SCENE_REGISTRY[self.scene]

    @property
    def path_name(self) -> str:
        """The path's display name (``custom`` for explicit pose lists)."""
        return self.path if isinstance(self.path, str) else "custom"

    @property
    def label(self) -> str:
        """Short human-readable label (tag wins when set)."""
        return self.tag or f"{self.scene}/{self.path_name}x{self.frames}"

    # ------------------------------------------------------------------
    def _base_config(self) -> StreamingConfig:
        return StreamingConfig(
            voxel_size=self.descriptor.default_voxel_size, temporal_mode="carry"
        )

    def streaming_config(self) -> StreamingConfig:
        """The resolved :class:`StreamingConfig` of this trajectory.

        Starts from the scene's paper-default voxel size with the temporal
        carry path on, then applies the explicit config overrides.
        """
        overrides = self.config_overrides
        base = self._base_config()
        return base.with_options(**overrides) if overrides else base

    def render_options(self) -> RenderOptions:
        """The resolved :class:`~repro.engine.service.RenderOptions`.

        ``resolution_scale`` stays ``1.0`` here: the spec applies it while
        generating the cameras (:meth:`cameras`), so the render path never
        scales twice.
        """
        return RenderOptions(**self.option_overrides)

    def cameras(self) -> List[Camera]:
        """The trajectory's camera list at the spec's resolution scale."""
        if isinstance(self.path, str):
            from repro.scenes.registry import trajectory_cameras

            return trajectory_cameras(
                self.scene,
                self.path,
                self.frames,
                resolution_scale=self.resolution_scale,
            )
        cameras = [_pose_camera(pose) for pose in self.path]
        if self.resolution_scale != 1.0:
            cameras = [camera.scaled(self.resolution_scale) for camera in cameras]
        return cameras

    def with_options(self, **kwargs: Any) -> "TrajectorySpec":
        """A copy with the given spec fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-native representation (used in result metadata / the wire)."""
        path: Any = (
            self.path
            if isinstance(self.path, str)
            else [_pose_dict(pose) for pose in self.path]
        )
        return {
            "scene": self.scene,
            "path": path,
            "frames": self.frames,
            "config": self.config_overrides,
            "options": self.option_overrides,
            "resolution_scale": self.resolution_scale,
            "tag": self.tag,
        }

    def canonical_dict(self) -> Dict[str, Any]:
        """The spec reduced to what actually selects its workload.

        Mirrors :meth:`ExperimentSpec.canonical_dict`: config overrides
        that restate the trajectory base config (scene default voxel size,
        ``temporal_mode="carry"``) and option overrides that restate the
        :class:`RenderOptions` defaults are dropped, numeric values are
        normalized to floats, and ``tag`` is kept.  The result-store hash
        (:func:`repro.api.store.spec_key`) is built on this form.
        """

        def normalize(value: Any) -> Any:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return value
            return float(value)

        base = self._base_config()
        config = {
            key: normalize(value)
            for key, value in self.config_overrides.items()
            if getattr(base, key) != value
        }
        defaults = RenderOptions()
        options = {
            key: normalize(value)
            for key, value in self.option_overrides.items()
            if getattr(defaults, key) != value
        }
        path: Any = (
            self.path
            if isinstance(self.path, str)
            else [_pose_dict(pose) for pose in self.path]
        )
        return {
            "scene": self.scene,
            "path": path,
            "frames": int(self.frames),
            "config": config,
            "options": options,
            "resolution_scale": float(self.resolution_scale),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrajectorySpec":
        """Rebuild a spec from its :meth:`to_dict` form (lossless)."""
        known = {field.name for field in dataclass_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown trajectory field(s) {unknown}; allowed: {sorted(known)}"
            )
        return cls(**{key: data[key] for key in data})

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form; :meth:`from_json` reproduces the spec."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TrajectorySpec":
        return cls.from_dict(json.loads(text))
