"""Typed experiment results.

Every experiment in the repository — a single point run, a paper
figure/table, or a sweep — returns an :class:`ExperimentResult` (or a
:class:`SweepResult` wrapping many of them) with one uniform interface:

* :meth:`~ExperimentResult.format` — the human-readable report (the exact
  text the analysis runner prints);
* :attr:`~ExperimentResult.metrics` — scalar headline numbers, machine
  readable;
* :attr:`~ExperimentResult.payload` — the full structured data behind the
  report, JSON-native;
* :meth:`~ExperimentResult.to_dict` / :meth:`~ExperimentResult.to_json` —
  lossless serialization; ``from_json(r.to_json())`` reproduces the result,
  including its formatted report.

This replaces the repository's previous informal convention of returning
anonymous objects that happened to have a ``format()`` method.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.analysis.report import format_table


def jsonify(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-native types.

    NumPy scalars and arrays, tuples, sets and non-string dictionary keys
    are all normalized so the output survives a ``json.dumps``/``loads``
    round trip unchanged.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(item) for item in value]
    raise TypeError(f"cannot serialize {type(value).__name__!r} value {value!r}")


@dataclass
class ExperimentResult:
    """Uniform result of one experiment.

    Attributes
    ----------
    name:
        Registered experiment name (``fig12``, ``tab1``, ...) or ``point``
        for a single :class:`~repro.api.spec.ExperimentSpec` run.
    title:
        One-line human-readable title.
    text:
        The formatted report; :meth:`format` returns it verbatim, so the
        report survives serialization.
    metrics:
        Scalar headline numbers (floats), e.g. ``speedup`` or
        ``streaming_psnr``.
    payload:
        The full structured data behind the report (JSON-native).
    meta:
        Provenance: the spec that produced the result, session info, etc.
    """

    name: str
    title: str
    text: str
    metrics: Dict[str, float] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.metrics = {str(k): float(v) for k, v in dict(self.metrics).items()}
        self.payload = jsonify(dict(self.payload))
        self.meta = jsonify(dict(self.meta))

    # ------------------------------------------------------------------
    def format(self) -> str:
        """The human-readable report."""
        return self.text

    def metric(self, name: str) -> float:
        """One scalar metric by name (raises ``KeyError`` if absent)."""
        if name not in self.metrics:
            raise KeyError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            )
        return self.metrics[name]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-native dictionary representation (lossless)."""
        return {
            "name": self.name,
            "title": self.title,
            "text": self.text,
            "metrics": dict(self.metrics),
            "payload": self.payload,
            "meta": self.meta,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON representation; ``from_json`` reproduces the result."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            name=data["name"],
            title=data["title"],
            text=data["text"],
            metrics=data.get("metrics", {}),
            payload=data.get("payload", {}),
            meta=data.get("meta", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))


@dataclass
class SweepResult:
    """Ordered collection of point results produced by one sweep.

    Indexing and iteration yield the underlying
    :class:`ExperimentResult` objects in grid order (the cartesian product
    of the swept axes, last axis fastest).

    ``meta`` carries run telemetry — notably ``meta["execution"]``, the
    :class:`~repro.api.executor.ExecutionReport` of the sweep that produced
    the results (mode, shards, sub-shards, worker reuse, store hits).  It
    describes *how* the sweep ran, never *what* it computed: tables and
    metrics are byte-identical across serial and parallel runs while their
    ``meta`` legitimately differs, so parity checks compare
    ``to_dict()["results"]`` (or :meth:`format`), not the full dictionary.
    """

    results: List[ExperimentResult] = field(default_factory=list)
    swept: List[str] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.meta = jsonify(dict(self.meta))

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ExperimentResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> ExperimentResult:
        return self.results[index]

    # ------------------------------------------------------------------
    def metric(self, name: str) -> List[float]:
        """One metric across every point, in grid order."""
        return [result.metric(name) for result in self.results]

    def labels(self) -> List[str]:
        """The per-point labels (the sweep's auto-generated tags)."""
        return [str(result.meta.get("label", result.name)) for result in self.results]

    def table(
        self, metrics: Optional[Sequence[str]] = None, title: str = ""
    ) -> str:
        """A text table with one row per point and one column per metric.

        A metric absent from some points (e.g. ``area_mm2`` on a GPU point
        of a mixed-arch sweep) renders as ``-`` there; a metric absent from
        every point raises ``KeyError``.
        """
        if metrics is None:
            metrics = list(self.results[0].metrics) if self.results else []
        for metric in metrics:
            if self.results and not any(metric in r.metrics for r in self.results):
                available = sorted({name for r in self.results for name in r.metrics})
                raise KeyError(f"unknown metric {metric!r}; available: {available}")
        rows = [
            [label] + [result.metrics.get(metric, "-") for metric in metrics]
            for label, result in zip(self.labels(), self.results)
        ]
        return format_table(["point"] + list(metrics), rows, title=title)

    def format(self) -> str:
        title = "sweep" + (f" over {', '.join(self.swept)}" if self.swept else "")
        return self.table(title=f"{title} ({len(self.results)} points)")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "swept": list(self.swept),
            "results": [result.to_dict() for result in self.results],
            "meta": dict(self.meta),
        }

    def table_dict(self) -> Dict[str, Any]:
        """The comparable payload: :meth:`to_dict` without ``meta``.

        The one form parity checks compare — serial and parallel runs of
        the same grid must produce equal ``table_dict()`` even though
        their execution telemetry differs.
        """
        data = self.to_dict()
        del data["meta"]
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepResult":
        return cls(
            results=[ExperimentResult.from_dict(r) for r in data.get("results", [])],
            swept=list(data.get("swept", [])),
            meta=data.get("meta", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))
