"""Parallel, sharded execution of experiment sweeps.

:class:`SweepExecutor` evaluates a list of
:class:`~repro.api.spec.ExperimentSpec` points by

1. resolving every point it can against an optional
   :class:`~repro.api.store.ResultStore` (so warm sweeps re-render
   nothing),
2. grouping the remaining specs into *shards* by the scene context they
   need (scene x algorithm x resolution scale x resolved streaming
   config) — the expensive part of a point is building that context, and
   every spec in a shard shares it through
   :meth:`~repro.api.session.Session.run_many`,
3. fanning the shards out over a process pool (``jobs`` workers; small
   grids fall back to a thread pool, one-shard grids to the caller's own
   session), and
4. merging the per-shard outputs back into one
   :class:`~repro.api.result.SweepResult` in the original spec order —
   the result is bit-identical to a serial run regardless of worker
   scheduling, because every evaluation is deterministic and results are
   placed by input index, never by completion order.

The executor is what :meth:`Session.run_sweep` runs on; callers normally
reach it through ``session.sweep(..., jobs=4, cache="results/")``.
"""

from __future__ import annotations

import concurrent.futures
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.result import ExperimentResult, SweepResult
from repro.api.spec import ExperimentSpec
from repro.api.store import ResultStore, resolve_store

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.api.session import Session

#: Execution strategies (``auto`` picks per grid, see
#: :meth:`SweepExecutor.choose_mode`).
EXECUTOR_MODES = ("auto", "serial", "thread", "process")

#: Below this many pending specs, ``auto`` prefers a thread pool — process
#: startup and re-import cost more than the grid itself on small sweeps.
PROCESS_MIN_SPECS = 6


def context_group_key(spec: ExperimentSpec) -> Tuple:
    """The shard key of a spec: everything that selects its scene context.

    Specs with equal keys share one calibrated scene context (model
    fitting, reference render, streaming render, workload derivation), so
    they are evaluated back to back in one worker.
    """
    return (
        spec.scene,
        spec.algorithm,
        float(spec.resolution_scale),
        spec.streaming_config(),
    )


def group_by_context(
    pairs: Iterable[Tuple[int, ExperimentSpec]]
) -> "OrderedDict[Tuple, List[Tuple[int, ExperimentSpec]]]":
    """Group (index, spec) pairs by :func:`context_group_key`, first-seen order.

    The one grouping primitive behind sharding and
    :meth:`Session.run_many`: specs in one group share a scene context and
    are evaluated back to back.
    """
    groups: "OrderedDict[Tuple, List[Tuple[int, ExperimentSpec]]]" = OrderedDict()
    for index, spec in pairs:
        groups.setdefault(context_group_key(spec), []).append((index, spec))
    return groups


def _evaluate_shard(
    specs: Sequence[ExperimentSpec], seed: int
) -> List[Dict]:
    """Worker entry point: evaluate one shard in a fresh session.

    Runs in a pool worker (process or thread); builds a private
    :class:`~repro.api.session.Session` so no state is shared with the
    caller, and returns plain ``to_dict()`` payloads (cheap to pickle,
    lossless to reconstruct).
    """
    from repro.api.session import Session

    session = Session(seed=seed)
    return [result.to_dict() for result in session.run_many(list(specs))]


@dataclass
class ExecutionReport:
    """What one :meth:`SweepExecutor.run` actually did."""

    mode: str = "serial"
    jobs: int = 1
    shards: int = 0
    specs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shard_sizes: List[int] = field(default_factory=list)


class SweepExecutor:
    """Sharded sweep runner with optional disk-backed result caching.

    Parameters
    ----------
    jobs:
        Worker count; ``1`` evaluates serially through the calling
        session.
    store:
        Optional :class:`ResultStore` (or a directory path for one)
        consulted before evaluation and updated after it.
    mode:
        ``auto`` (default), ``serial``, ``thread`` or ``process``.
        ``auto`` picks serially for one shard or one job, threads for
        small grids, processes otherwise; a pool that cannot be created
        degrades to the next cheaper mode instead of failing.
    seed:
        Seed of the private worker sessions.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[Union[ResultStore, str, Path]] = None,
        mode: str = "auto",
        seed: int = 0,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"unknown mode {mode!r}; available: {list(EXECUTOR_MODES)}")
        self.jobs = jobs
        self.store = resolve_store(store)
        self.mode = mode
        self.seed = seed
        self.report = ExecutionReport()

    # ------------------------------------------------------------------
    def shard(
        self, specs: Sequence[ExperimentSpec]
    ) -> "OrderedDict[Tuple, List[Tuple[int, ExperimentSpec]]]":
        """Group (index, spec) pairs by shared scene context, in first-seen order."""
        return group_by_context(enumerate(specs))

    def choose_mode(self, num_shards: int, num_specs: int) -> str:
        """Resolve ``auto`` against the pending grid."""
        if self.mode != "auto":
            return self.mode
        if self.jobs <= 1 or num_shards <= 1:
            return "serial"
        if num_specs < PROCESS_MIN_SPECS:
            return "thread"
        return "process"

    # ------------------------------------------------------------------
    def run(
        self,
        specs: Sequence[ExperimentSpec],
        swept: Optional[Sequence[str]] = None,
        session: Optional["Session"] = None,
    ) -> SweepResult:
        """Evaluate every spec and return results in input order.

        ``session`` is used for serial evaluation (so warm contexts are
        reused) and supplies the worker seed; a private one is created
        when omitted.
        """
        specs = list(specs)
        results: List[Optional[ExperimentResult]] = [None] * len(specs)
        self.report = ExecutionReport(jobs=self.jobs, specs=len(specs))

        pending: List[Tuple[int, ExperimentSpec]] = []
        for index, spec in enumerate(specs):
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, spec))
        self.report.cache_hits = len(specs) - len(pending)
        self.report.cache_misses = len(pending)

        if pending:
            anchored = list(group_by_context(pending).values())
            self.report.shards = len(anchored)
            self.report.shard_sizes = [len(members) for members in anchored]
            mode = self.choose_mode(len(anchored), len(pending))
            self.report.mode = mode

            if mode == "serial":
                self._run_serial(anchored, results, session)
            else:
                self._run_pool(anchored, results, mode, session)

            if self.store is not None:
                for index, spec in pending:
                    self.store.put(spec, results[index])

        missing = [i for i, result in enumerate(results) if result is None]
        if missing:  # pragma: no cover - defensive; pools propagate errors
            raise RuntimeError(f"sweep left {len(missing)} specs unevaluated: {missing}")
        return SweepResult(results=list(results), swept=list(swept or []))

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        shards: List[List[Tuple[int, ExperimentSpec]]],
        results: List[Optional[ExperimentResult]],
        session: Optional["Session"],
    ) -> None:
        if session is None:
            from repro.api.session import Session

            session = Session(seed=self.seed)
        ordered = [pair for members in shards for pair in members]
        evaluated = session.run_many([spec for _, spec in ordered])
        for (index, _), result in zip(ordered, evaluated):
            results[index] = result

    def _run_pool(
        self,
        shards: List[List[Tuple[int, ExperimentSpec]]],
        results: List[Optional[ExperimentResult]],
        mode: str,
        session: Optional["Session"],
    ) -> None:
        seed = session.seed if session is not None else self.seed
        workers = min(self.jobs, len(shards))
        if mode == "process":
            # Process pools can fail lazily: construction succeeds but the
            # workers die at submit/fork time (rlimits, sandboxes, missing
            # /dev/shm).  Either way, degrade to threads and recompute —
            # shard evaluation is deterministic, so a partial first pass is
            # simply overwritten.
            try:
                with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                    self._collect(pool, shards, results, seed)
                return
            except (
                concurrent.futures.process.BrokenProcessPool,
                OSError,
                ValueError,
                NotImplementedError,
            ):
                self.report.mode = "thread"
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            self._collect(pool, shards, results, seed)

    @staticmethod
    def _collect(
        pool: concurrent.futures.Executor,
        shards: List[List[Tuple[int, ExperimentSpec]]],
        results: List[Optional[ExperimentResult]],
        seed: int,
    ) -> None:
        futures = {
            pool.submit(_evaluate_shard, [spec for _, spec in members], seed): members
            for members in shards
        }
        for future in concurrent.futures.as_completed(futures):
            members = futures[future]
            for (index, _), payload in zip(members, future.result()):
                results[index] = ExperimentResult.from_dict(payload)
