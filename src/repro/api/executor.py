"""Parallel, sharded execution of experiment sweeps — and of experiments.

:class:`SweepExecutor` evaluates a list of
:class:`~repro.api.spec.ExperimentSpec` points by

1. resolving every point it can against an optional
   :class:`~repro.api.store.ResultStore` (so warm sweeps re-render
   nothing),
2. grouping the remaining specs into *shards* by the scene context they
   need (scene x algorithm x resolution scale x resolved streaming
   config) — the expensive part of a point is building that context, and
   every spec in a shard shares it through
   :meth:`~repro.api.session.Session.run_many`,
3. **splitting** shards whose spec count crosses a threshold into
   sub-shards: the caller builds the shared scene context once, and every
   sub-shard worker receives it via the context-broadcast path
   (:meth:`Session.adopt_context`), so a Fig. 13-shaped grid — one scene
   context, dozens of cheap per-spec accelerator evaluations — fans out
   across all workers instead of collapsing onto one,
4. fanning the dispatch units out over the calling session's **persistent
   worker pool** (:class:`~repro.api.pool.WorkerPool`; an ephemeral pool
   when no session is given), and
5. merging the per-unit outputs back into one
   :class:`~repro.api.result.SweepResult` in the original spec order —
   the tables are byte-identical to a serial run regardless of worker
   scheduling, because every evaluation is deterministic and results are
   placed by input index, never by completion order.

What one run actually did — mode, shards, sub-shards, per-unit wall
times, store hits, pool reuse — is recorded in an :class:`ExecutionReport`
and surfaced as ``SweepResult.meta["execution"]``.

:func:`schedule_experiments` applies the same machinery one level up:
whole registry experiments (``fig2`` ... ``engine``) are dispatched across
a process pool for ``runner all --jobs N``.  Experiments are mutually
independent (dependency-free), so ordering only affects makespan; dispatch
is by descending :attr:`~repro.api.experiments.ExperimentDefinition.cost_hint`
(heaviest first), while results return in request order.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool
from concurrent.futures.thread import BrokenThreadPool
import math
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.result import ExperimentResult, SweepResult
from repro.api.shm import ShmPackage, ShmRegistry
from repro.api.spec import ExperimentSpec
from repro.api.store import ResultStore, resolve_store

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.context import SceneContext
    from repro.api.session import Session

#: Execution strategies (``auto`` picks per grid, see
#: :meth:`SweepExecutor.choose_mode`).
EXECUTOR_MODES = ("auto", "serial", "thread", "process")

#: Below this many pending specs, ``auto`` prefers a thread pool — process
#: startup and re-import cost more than the grid itself on small sweeps.
PROCESS_MIN_SPECS = 6

#: Shards with at least this many specs are split into sub-shards that
#: share one broadcast scene context (the static default; sessions adapt
#: it from observed per-spec cost, see :func:`adaptive_split_threshold`).
SHARD_SPLIT_THRESHOLD = 8

#: A split never produces sub-shards smaller than this — below it the
#: dispatch overhead outweighs the per-spec work.
SUB_SHARD_MIN_SPECS = 4

#: A shard is worth splitting when its estimated evaluation time crosses
#: this, so the adaptive threshold is ~this many seconds of observed
#: per-spec cost.
SPLIT_MIN_SHARD_SECONDS = 0.25


def adaptive_split_threshold(per_spec_seconds: Optional[float]) -> int:
    """Shard-split threshold seeded from observed per-spec evaluation cost.

    The static cutoff (:data:`SHARD_SPLIT_THRESHOLD` specs) under-splits
    grids of expensive points: a 6-spec shard of 2-second evaluations is
    12 seconds of serial work that five idle workers could share.  Given
    the mean per-spec seconds observed in a previous run
    (:attr:`ExecutionReport.shard_times_s` over its cache misses), the
    threshold becomes the spec count at which a shard crosses
    :data:`SPLIT_MIN_SHARD_SECONDS` of estimated work — clamped to
    ``[SUB_SHARD_MIN_SPECS, SHARD_SPLIT_THRESHOLD]`` so cheap grids never
    split below the dispatch-overhead floor and the policy is never more
    conservative than the static default.  ``None`` (nothing observed
    yet) returns the static default.
    """
    if per_spec_seconds is None or per_spec_seconds <= 0.0:
        return SHARD_SPLIT_THRESHOLD
    threshold = math.ceil(SPLIT_MIN_SHARD_SECONDS / per_spec_seconds)
    return max(SUB_SHARD_MIN_SPECS, min(SHARD_SPLIT_THRESHOLD, threshold))

#: Pool-level failures that trigger graceful degradation to a cheaper
#: mode.  ``RuntimeError`` covers thread-spawn exhaustion; user errors are
#: wrapped in :class:`SpecEvaluationError` and always re-raised first.
_POOL_FAILURES = (
    BrokenProcessPool,
    BrokenThreadPool,
    OSError,
    ValueError,
    NotImplementedError,
    RuntimeError,
)


class SpecEvaluationError(RuntimeError):
    """One spec of a batch failed; names the offending point.

    Raised by :meth:`Session.run_many` (and therefore by every executor
    path, serial or pooled) wrapping the original exception, so a sweep
    failure always says *which* grid point died — not just that a worker
    raised somewhere.  The original exception is ``__cause__`` and
    :attr:`error`.
    """

    def __init__(self, spec: ExperimentSpec, error: BaseException) -> None:
        self.spec = spec
        self.error = error
        super().__init__(
            f"evaluating spec {spec.label!r} ({spec.to_dict()}) failed: "
            f"{type(error).__name__}: {error}"
        )

    def __reduce__(self):  # pool workers pickle exceptions back to the caller
        return (type(self), (self.spec, self.error))


def context_group_key(spec: ExperimentSpec) -> Tuple:
    """The shard key of a spec: everything that selects its scene context.

    Specs with equal keys share one calibrated scene context (model
    fitting, reference render, streaming render, workload derivation), so
    they are evaluated back to back in one worker.
    """
    return (
        spec.scene,
        spec.algorithm,
        float(spec.resolution_scale),
        spec.streaming_config(),
    )


def group_by_context(
    pairs: Iterable[Tuple[int, ExperimentSpec]]
) -> "OrderedDict[Tuple, List[Tuple[int, ExperimentSpec]]]":
    """Group (index, spec) pairs by :func:`context_group_key`, first-seen order.

    The one grouping primitive behind sharding and
    :meth:`Session.run_many`: specs in one group share a scene context and
    are evaluated back to back.
    """
    groups: "OrderedDict[Tuple, List[Tuple[int, ExperimentSpec]]]" = OrderedDict()
    for index, spec in pairs:
        groups.setdefault(context_group_key(spec), []).append((index, spec))
    return groups


@dataclass
class ShardUnit:
    """One dispatch unit: a whole shard, or a sub-shard of a split one.

    Sub-shards carry the scene context the caller built (``context``); the
    worker adopts it instead of rebuilding, which is what makes splitting a
    single-context grid profitable.  For process dispatch the context
    additionally travels as a shared-memory ``package``
    (:class:`~repro.api.shm.ShmPackage`) — the pickled payload is metadata
    plus small fields, the model/image arrays stay in shared segments — so
    broadcasting never copies the heavy state per task.
    """

    members: List[Tuple[int, ExperimentSpec]]
    is_sub_shard: bool = False
    context: Optional["SceneContext"] = None
    package: Optional[ShmPackage] = None


def _worker_id() -> str:
    """Identity of the executing worker (process id / thread id)."""
    import os
    import threading

    return f"{os.getpid()}:{threading.get_ident()}"


def _evaluate_shard(
    specs: Sequence[ExperimentSpec],
    seed: int,
    context: Optional["SceneContext"] = None,
    package: Optional[ShmPackage] = None,
) -> Dict[str, Any]:
    """Worker entry point: evaluate one dispatch unit.

    Runs in a pool worker.  Process workers keep one **warm session**
    alive across tasks and sweeps (:func:`repro.api.pool.worker_session`),
    so a context already built or adopted by an earlier task is a cache
    hit — no rebuild per task; thread workers get a private session so no
    state is shared with the caller.  A broadcast context arrives either
    by reference (``context``, thread dispatch) or as a shared-memory
    package (``package``, process dispatch) and is adopted only when the
    warm session does not already hold it.  Returns plain ``to_dict()``
    payloads (cheap to pickle, lossless to reconstruct) plus unit
    telemetry, including how many contexts this task actually built
    (``context_builds`` — the rebuild accounting of the zero-copy claim).
    """
    from repro.api.pool import worker_session

    start = time.perf_counter()
    session = worker_session(seed)
    warm = session.has_context(specs[0])
    if not warm:
        if context is None and package is not None:
            context = package.unpack()
        if context is not None:
            session.adopt_context(specs[0], context)
    builds_before = session.context_misses
    payloads = [result.to_dict() for result in session.run_many(list(specs))]
    return {
        "results": payloads,
        "elapsed_s": time.perf_counter() - start,
        "worker": _worker_id(),
        "context_builds": session.context_misses - builds_before,
        "warm_context": warm,
    }


@dataclass
class ExecutionReport:
    """What one :meth:`SweepExecutor.run` actually did.

    ``shards`` counts context groups, ``sub_shards`` the dispatch units
    after splitting (equal when nothing was split).  ``worker_reuse`` is
    the session pool's cumulative reuse counter — how many times a sweep
    got handed an already-warm pool instead of paying startup.
    """

    mode: str = "serial"
    jobs: int = 1
    shards: int = 0
    sub_shards: int = 0
    split_shards: int = 0
    broadcast_contexts: int = 0
    specs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    shard_sizes: List[int] = field(default_factory=list)
    shard_times_s: List[float] = field(default_factory=list)
    workers: int = 0
    workers_used: int = 0
    pool: str = "none"
    worker_reuse: int = 0
    wall_time_s: float = 0.0
    split_threshold: int = SHARD_SPLIT_THRESHOLD
    #: Zero-copy transport accounting: shared-memory segments referenced by
    #: dispatched context packages, bytes actually pickled across the
    #: process boundary (specs + package payloads — not the arrays), and
    #: how many scene contexts pool workers *built* rather than received
    #: via broadcast or warm-session reuse (0 = fully zero-rebuild).
    shm_segments: int = 0
    shm_bytes: int = 0
    pickled_bytes: int = 0
    #: Small-array remainder bundled into one consolidated segment per
    #: context package — bytes that used to inflate ``pickled_bytes``.
    consolidated_arrays: int = 0
    consolidated_bytes: int = 0
    context_rebuilds: int = 0
    warm_contexts: int = 0
    #: Degradation bookkeeping: the mode the run started in (empty when it
    #: never degraded), why it degraded, and the mode each dispatch unit
    #: actually executed in.  ``mode`` reports the majority unit mode.
    degraded_from: str = ""
    degraded_reason: str = ""
    unit_modes: List[str] = field(default_factory=list)

    @property
    def per_spec_seconds(self) -> Optional[float]:
        """Mean observed evaluation seconds per rendered (non-cached) spec.

        The signal the adaptive split policy feeds on; ``None`` when the
        run evaluated nothing (every point was a store hit) or recorded no
        unit timings.
        """
        if self.cache_misses <= 0 or not self.shard_times_s:
            return None
        return sum(self.shard_times_s) / self.cache_misses

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native form (stored in ``SweepResult.meta["execution"]``)."""
        return {
            "mode": self.mode,
            "jobs": self.jobs,
            "shards": self.shards,
            "sub_shards": self.sub_shards,
            "split_shards": self.split_shards,
            "split_threshold": self.split_threshold,
            "broadcast_contexts": self.broadcast_contexts,
            "specs": self.specs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "shard_sizes": list(self.shard_sizes),
            "shard_times_s": [round(t, 6) for t in self.shard_times_s],
            "workers": self.workers,
            "workers_used": self.workers_used,
            "pool": self.pool,
            "worker_reuse": self.worker_reuse,
            "wall_time_s": round(self.wall_time_s, 6),
            "shm_segments": self.shm_segments,
            "shm_bytes": self.shm_bytes,
            "pickled_bytes": self.pickled_bytes,
            "consolidated_arrays": self.consolidated_arrays,
            "consolidated_bytes": self.consolidated_bytes,
            "context_rebuilds": self.context_rebuilds,
            "warm_contexts": self.warm_contexts,
            "degraded_from": self.degraded_from,
            "degraded_reason": self.degraded_reason,
            "unit_modes": list(self.unit_modes),
        }

    def summary(self) -> str:
        """One-line telemetry (the runner's ``[execution]`` line)."""
        line = (
            f"mode={self.mode} jobs={self.jobs} shards={self.shards} "
            f"sub_shards={self.sub_shards} specs={self.specs} "
            f"store_hits={self.cache_hits} store_misses={self.cache_misses} "
            f"pool={self.pool} reuse={self.worker_reuse} "
            f"shm_segments={self.shm_segments} "
            f"pickled_bytes={self.pickled_bytes} "
            f"context_rebuilds={self.context_rebuilds} "
            f"wall={self.wall_time_s:.2f}s"
        )
        if self.degraded_from:
            line += (
                f" degraded_from={self.degraded_from}"
                f" degraded_reason={self.degraded_reason!r}"
            )
        return line


class SweepExecutor:
    """Sharded sweep runner with optional disk-backed result caching.

    Parameters
    ----------
    jobs:
        Worker count; ``1`` evaluates serially through the calling
        session.
    store:
        Optional :class:`ResultStore` (or a directory path for one)
        consulted before evaluation and updated after it.
    mode:
        ``auto`` (default), ``serial``, ``thread`` or ``process``.
        ``auto`` picks serially for one dispatch unit or one job, threads
        for small grids, processes otherwise; a pool that cannot be
        created degrades to the next cheaper mode instead of failing.
    seed:
        Seed of the private worker sessions.
    split_threshold:
        Shards with at least this many specs are split into sub-shards
        sharing a broadcast context (0 disables splitting).  Sessions pass
        an adaptive value derived from observed per-spec cost
        (:func:`adaptive_split_threshold`).
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[Union[ResultStore, str, Path]] = None,
        mode: str = "auto",
        seed: int = 0,
        split_threshold: int = SHARD_SPLIT_THRESHOLD,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"unknown mode {mode!r}; available: {list(EXECUTOR_MODES)}")
        if split_threshold < 0:
            raise ValueError(f"split_threshold must be >= 0, got {split_threshold}")
        self.jobs = jobs
        self.store = resolve_store(store)
        self.mode = mode
        self.seed = seed
        self.split_threshold = split_threshold
        self.report = ExecutionReport()
        #: Registry backing broadcast packages of session-less runs,
        #: created on demand and unlinked at the end of :meth:`run`.
        self._local_registry: Optional[ShmRegistry] = None
        self._unit_done: List[bool] = []

    # ------------------------------------------------------------------
    def shard(
        self, specs: Sequence[ExperimentSpec]
    ) -> "OrderedDict[Tuple, List[Tuple[int, ExperimentSpec]]]":
        """Group (index, spec) pairs by shared scene context, in first-seen order."""
        return group_by_context(enumerate(specs))

    def split(
        self, shards: List[List[Tuple[int, ExperimentSpec]]]
    ) -> List[ShardUnit]:
        """Split oversized shards into sub-shards for context broadcast.

        A shard of at least ``split_threshold`` specs becomes
        ``min(jobs, ceil(size / SUB_SHARD_MIN_SPECS))`` contiguous
        sub-shards; everything else dispatches whole.  Splitting never
        reorders members, so the input-order merge is unaffected.
        """
        units: List[ShardUnit] = []
        for members in shards:
            size = len(members)
            pieces = (
                min(self.jobs, math.ceil(size / SUB_SHARD_MIN_SPECS))
                if self.split_threshold and size >= self.split_threshold
                else 1
            )
            if pieces <= 1:
                units.append(ShardUnit(members))
                continue
            chunk = math.ceil(size / pieces)
            units.extend(
                ShardUnit(members[start : start + chunk], is_sub_shard=True)
                for start in range(0, size, chunk)
            )
        return units

    def choose_mode(self, num_units: int, num_specs: int) -> str:
        """Resolve ``auto`` against the pending dispatch units."""
        if self.mode != "auto":
            return self.mode
        if self.jobs <= 1 or num_units <= 1:
            return "serial"
        if num_specs < PROCESS_MIN_SPECS:
            return "thread"
        return "process"

    # ------------------------------------------------------------------
    def run(
        self,
        specs: Sequence[ExperimentSpec],
        swept: Optional[Sequence[str]] = None,
        session: Optional["Session"] = None,
    ) -> SweepResult:
        """Evaluate every spec and return results in input order.

        ``session`` is used for serial evaluation (so warm contexts are
        reused), supplies the worker seed, builds the broadcast contexts
        of split shards, and provides the persistent worker pool; a
        private session (and an ephemeral pool) is used when omitted.
        """
        started = time.perf_counter()
        specs = list(specs)
        results: List[Optional[ExperimentResult]] = [None] * len(specs)
        self.report = ExecutionReport(
            jobs=self.jobs, specs=len(specs), split_threshold=self.split_threshold
        )

        pending: List[Tuple[int, ExperimentSpec]] = []
        for index, spec in enumerate(specs):
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, spec))
        self.report.cache_hits = len(specs) - len(pending)
        self.report.cache_misses = len(pending)

        if pending:
            shards = list(group_by_context(pending).values())
            self.report.shards = len(shards)
            units = self.split(shards) if self.jobs > 1 else [ShardUnit(m) for m in shards]
            self.report.sub_shards = len(units)
            self.report.split_shards = len(shards) - sum(
                1 for unit in units if not unit.is_sub_shard
            )
            self.report.shard_sizes = [len(unit.members) for unit in units]
            mode = self.choose_mode(len(units), len(pending))
            self.report.mode = mode

            try:
                if mode == "serial":
                    # Serial never splits: one session walks the shards whole.
                    units = [ShardUnit(m) for m in shards]
                    self.report.sub_shards = len(units)
                    self.report.split_shards = 0
                    self.report.shard_sizes = [len(unit.members) for unit in units]
                    self.report.unit_modes = ["serial"] * len(units)
                    self._run_serial(units, results, session)
                else:
                    self._run_pool(units, results, mode, session)
            finally:
                # Segments published for an ephemeral (session-less) run
                # are unlinked here — session-owned registries live until
                # ``Session.close()`` so later sweeps reuse the packages.
                if self._local_registry is not None:
                    self._local_registry.close()
                    self._local_registry = None

            if self.store is not None:
                for index, spec in pending:
                    try:
                        self.store.put(spec, results[index])
                    except OSError:
                        # Best-effort cache: losing the entry only costs a
                        # future hit, never the sweep that computed it.
                        continue

        missing = [i for i, result in enumerate(results) if result is None]
        if missing:  # pragma: no cover - defensive; pools propagate errors
            raise RuntimeError(f"sweep left {len(missing)} specs unevaluated: {missing}")
        self.report.wall_time_s = time.perf_counter() - started
        return SweepResult(
            results=list(results),
            swept=list(swept or []),
            meta={"execution": self.report.to_dict()},
        )

    # ------------------------------------------------------------------
    def _run_serial(
        self,
        units: List[ShardUnit],
        results: List[Optional[ExperimentResult]],
        session: Optional["Session"],
    ) -> None:
        if session is None:
            from repro.api.session import Session

            session = Session(seed=self.seed)
        self.report.shard_times_s = []
        self.report.workers = 1
        self.report.workers_used = 1
        builds_before = session.context_misses
        for unit in units:
            start = time.perf_counter()
            evaluated = session.run_many([spec for _, spec in unit.members])
            self.report.shard_times_s.append(time.perf_counter() - start)
            for (index, _), result in zip(unit.members, evaluated):
                results[index] = result
        self.report.context_rebuilds += session.context_misses - builds_before

    def _broadcast_contexts(
        self, units: List[ShardUnit], session: Optional["Session"], mode: str
    ) -> None:
        """Build each split shard's scene context once and attach it.

        Sub-shards of one shard share a single context object: threads get
        it by reference; process workers receive a shared-memory package
        (heavy arrays in shm segments, pickled payload is metadata-sized),
        so a split shard costs one context build — in the calling session,
        where both the context *and* its package stay cached for later
        sweeps — and near-zero pickling per dispatch.
        """
        if not any(unit.is_sub_shard for unit in units):
            return
        if session is None:
            from repro.api.session import Session

            session = Session(seed=self.seed)
            if mode == "process":
                # Session-less runs own their segments for just this run.
                self._local_registry = ShmRegistry()
        contexts: Dict[Tuple, "SceneContext"] = {}
        packages: Dict[Tuple, ShmPackage] = {}
        for unit in units:
            if not unit.is_sub_shard:
                continue
            first_spec = unit.members[0][1]
            key = context_group_key(first_spec)
            if key not in contexts:
                contexts[key] = session.spec_context(first_spec)
            unit.context = contexts[key]
            if mode == "process":
                if key not in packages:
                    if self._local_registry is not None:
                        packages[key] = ShmPackage.pack(
                            contexts[key], self._local_registry
                        )
                    else:
                        packages[key] = session.context_package(first_spec)
                unit.package = packages[key]
        self.report.broadcast_contexts = len(contexts)
        distinct = {id(p): p for p in packages.values()}
        self.report.shm_segments = sum(
            len(p.segments) for p in distinct.values()
        )
        self.report.shm_bytes = sum(
            p.shared_bytes + p.consolidated_bytes for p in distinct.values()
        )
        self.report.consolidated_arrays = sum(
            p.consolidated_arrays for p in distinct.values()
        )
        self.report.consolidated_bytes = sum(
            p.consolidated_bytes for p in distinct.values()
        )

    def _run_pool(
        self,
        units: List[ShardUnit],
        results: List[Optional[ExperimentResult]],
        mode: str,
        session: Optional["Session"],
    ) -> None:
        seed = session.seed if session is not None else self.seed
        workers = min(self.jobs, len(units))
        self.report.workers = workers
        self._broadcast_contexts(units, session, mode)
        owner = session.worker_pool() if session is not None else None
        self.report.pool = "persistent" if owner is not None else "ephemeral"
        self._unit_done = [False] * len(units)
        self.report.unit_modes = [""] * len(units)
        self.report.shard_times_s = [0.0] * len(units)
        self._seen_workers: set = set()

        degraded = False
        if mode == "process":
            # Process pools can fail lazily: construction succeeds but the
            # workers die at submit/fork time (rlimits, sandboxes, missing
            # /dev/shm).  Either way, degrade to threads — recomputing only
            # the units that never completed; unit evaluation is
            # deterministic, so completed process units stand as-is.
            try:
                self._collect_on(owner, "process", workers, units, results, seed)
            except SpecEvaluationError:
                raise  # a grid point failed — that is the caller's error
            except _POOL_FAILURES as error:
                if owner is not None:
                    owner.discard("process")
                self.report.degraded_from = "process"
                self.report.degraded_reason = f"{type(error).__name__}: {error}"
                degraded = True
        if mode == "thread" or degraded:
            try:
                self._collect_on(owner, "thread", workers, units, results, seed)
            except SpecEvaluationError:
                raise
            except _POOL_FAILURES as error:
                # Even threads cannot be spawned: finish the job serially.
                if owner is not None:
                    owner.discard("thread")
                if not self.report.degraded_from:
                    self.report.degraded_from = mode
                self.report.degraded_reason = f"{type(error).__name__}: {error}"
                self.report.pool = "none"
                self._run_units_serial(units, results, session)
        if owner is not None:
            self.report.worker_reuse = owner.reuse_count
        self.report.workers_used = max(
            self.report.workers_used, len(self._seen_workers)
        )
        self.report.mode = self._majority_mode(self.report.mode)

    def _majority_mode(self, fallback: str) -> str:
        """The mode that executed most dispatch units (ties: heavier mode)."""
        modes = [m for m in self.report.unit_modes if m]
        if not modes:
            return fallback
        priority = {"process": 2, "thread": 1, "serial": 0}
        counts: Dict[str, int] = {}
        for m in modes:
            counts[m] = counts.get(m, 0) + 1
        return max(counts, key=lambda m: (counts[m], priority.get(m, -1)))

    def _run_units_serial(
        self,
        units: List[ShardUnit],
        results: List[Optional[ExperimentResult]],
        session: Optional["Session"],
    ) -> None:
        """Serial last-resort pass over the units no pool completed."""
        if session is None:
            from repro.api.session import Session

            session = Session(seed=self.seed)
        builds_before = session.context_misses
        for position, unit in enumerate(units):
            if self._unit_done[position]:
                continue
            start = time.perf_counter()
            evaluated = session.run_many([spec for _, spec in unit.members])
            self.report.shard_times_s[position] = time.perf_counter() - start
            for (index, _), result in zip(unit.members, evaluated):
                results[index] = result
            self._unit_done[position] = True
            self.report.unit_modes[position] = "serial"
        self.report.context_rebuilds += session.context_misses - builds_before

    def _collect_on(
        self,
        owner,
        mode: str,
        workers: int,
        units: List[ShardUnit],
        results: List[Optional[ExperimentResult]],
        seed: int,
    ) -> None:
        """Run the units on a pool of ``mode``: persistent when a session
        owns one, ephemeral (created and torn down here) otherwise."""
        if owner is not None:
            pool = owner.executor(mode, workers)
            self._collect(pool, units, results, seed, mode)
            self.report.worker_reuse = owner.reuse_count
        elif mode == "process":
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                self._collect(pool, units, results, seed, mode)
        else:
            with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
                self._collect(pool, units, results, seed, mode)

    def _collect(
        self,
        pool: concurrent.futures.Executor,
        units: List[ShardUnit],
        results: List[Optional[ExperimentResult]],
        seed: int,
        mode: str,
    ) -> None:
        futures = {}
        for position, unit in enumerate(units):
            if self._unit_done[position]:
                continue
            specs = [spec for _, spec in unit.members]
            # Threads share the caller's address space: the context rides
            # by reference and nothing is pickled.  Processes get the
            # shared-memory package (or nothing, for unsplit shards whose
            # workers build — and then keep — the context themselves).
            context = unit.context if mode == "thread" else None
            package = unit.package if mode == "process" else None
            if mode == "process":
                self.report.pickled_bytes += len(
                    pickle.dumps(specs, protocol=pickle.HIGHEST_PROTOCOL)
                )
                if package is not None:
                    self.report.pickled_bytes += package.pickled_bytes
            futures[
                pool.submit(_evaluate_shard, specs, seed, context, package)
            ] = (position, unit)
        for future in concurrent.futures.as_completed(futures):
            position, unit = futures[future]
            payload = future.result()
            self.report.shard_times_s[position] = payload["elapsed_s"]
            self._seen_workers.add(payload["worker"])
            for (index, _), result in zip(unit.members, payload["results"]):
                results[index] = ExperimentResult.from_dict(result)
            self._unit_done[position] = True
            self.report.unit_modes[position] = mode
            self.report.context_rebuilds += int(payload.get("context_builds", 0))
            self.report.warm_contexts += int(bool(payload.get("warm_context")))


# ----------------------------------------------------------------------
# Experiment-level scheduling (``runner all --jobs N``).
# ----------------------------------------------------------------------
@dataclass
class ScheduleReport:
    """What one :func:`schedule_experiments` call actually did."""

    mode: str = "serial"
    jobs: int = 1
    experiments: int = 0
    workers: int = 0
    workers_used: int = 0
    worker_reuse: int = 0
    wall_time_s: float = 0.0
    elapsed_s: Dict[str, float] = field(default_factory=dict)
    store_hits: int = 0
    store_misses: int = 0
    pool: str = "none"
    degraded_reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "jobs": self.jobs,
            "experiments": self.experiments,
            "workers": self.workers,
            "workers_used": self.workers_used,
            "worker_reuse": self.worker_reuse,
            "wall_time_s": round(self.wall_time_s, 6),
            "elapsed_s": {name: round(t, 6) for name, t in self.elapsed_s.items()},
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "pool": self.pool,
            "degraded_reason": self.degraded_reason,
        }

    def summary(self) -> str:
        """One-line telemetry (the runner's ``[scheduler]`` line)."""
        line = (
            f"mode={self.mode} jobs={self.jobs} experiments={self.experiments} "
            f"workers={self.workers} pool={self.pool} "
            f"worker_reuse={self.worker_reuse} "
            f"wall={self.wall_time_s:.2f}s"
        )
        if self.degraded_reason:
            line += f" degraded_reason={self.degraded_reason!r}"
        return line


def schedule_experiments(
    names: Sequence[str],
    jobs: int = 1,
    options: Optional[Mapping[str, Mapping[str, Any]]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    session: Optional["Session"] = None,
) -> Tuple[List[ExperimentResult], ScheduleReport]:
    """Run registry experiments, fanned out over a process pool.

    Experiments are mutually independent, so the schedule is dependency
    free; dispatch order is by descending ``cost_hint`` (heaviest first
    minimises makespan), results come back in the order of ``names``.
    ``options`` maps experiment names to builder kwargs; ``cache_dir``
    points every worker at one shared disk store.  ``session`` routes the
    fan-out through the session's persistent
    :class:`~repro.api.pool.WorkerPool` — ``runner all`` passes the
    process-wide default session, so repeated scheduled runs (and any
    sweeps inside the experiments) reuse one warm pool instead of paying
    worker startup per invocation; without a session an ephemeral pool is
    created and torn down here.  A pool that cannot be created — or that
    breaks mid-run — degrades to in-process serial execution of whatever
    is still missing, with the reason recorded in the report.
    """
    from repro.api.experiments import get_experiment, run_experiment_payload

    names = list(names)
    options = dict(options or {})
    definitions = {name: get_experiment(name) for name in names}  # validates early
    report = ScheduleReport(jobs=jobs, experiments=len(names))
    started = time.perf_counter()
    payloads: Dict[str, Dict[str, Any]] = {}

    workers = min(jobs, len(names))
    if workers > 1:
        dispatch = sorted(
            names, key=lambda name: definitions[name].cost_hint, reverse=True
        )
        owner = session.worker_pool() if session is not None else None
        report.pool = "persistent" if owner is not None else "ephemeral"

        def _fan_out(pool: concurrent.futures.Executor) -> None:
            futures = {
                pool.submit(
                    run_experiment_payload,
                    name,
                    options.get(name),
                    str(cache_dir) if cache_dir else None,
                ): name
                for name in dispatch
            }
            for future in concurrent.futures.as_completed(futures):
                payloads[futures[future]] = future.result()

        try:
            if owner is not None:
                _fan_out(owner.executor("process", workers))
            else:
                with concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers
                ) as pool:
                    _fan_out(pool)
            report.mode = "process"
            report.workers = workers
        except (KeyboardInterrupt, SystemExit):
            raise
        except _POOL_FAILURES as error:
            # Keep whatever completed; the serial pass below fills the rest.
            if owner is not None:
                owner.discard("process")
            report.pool = "none"
            report.degraded_reason = f"{type(error).__name__}: {error}"

    # Reuse is a pool property: only experiments that actually completed on
    # pool workers count, so a serial fallback never fabricates reuse.
    pool_workers = {payload["worker"] for payload in payloads.values()}
    report.worker_reuse = max(0, len(payloads) - len(pool_workers))

    for name in names:
        if name not in payloads:
            payloads[name] = run_experiment_payload(
                name, options.get(name), str(cache_dir) if cache_dir else None
            )

    report.workers_used = len({payload["worker"] for payload in payloads.values()})
    report.elapsed_s = {name: payloads[name]["elapsed_s"] for name in names}
    report.store_hits = sum(p["store_hits"] for p in payloads.values())
    report.store_misses = sum(p["store_misses"] for p in payloads.values())
    report.wall_time_s = time.perf_counter() - started
    return (
        [ExperimentResult.from_dict(payloads[name]["result"]) for name in names],
        report,
    )
