"""Registry of the paper's regenerable artifacts as API experiments.

Every table and figure of the evaluation is registered here as an
:class:`ExperimentDefinition` whose builder runs the underlying analysis
code through a shared :class:`~repro.api.session.Session` and returns a
uniform :class:`~repro.api.result.ExperimentResult`.  The CLI runner
(``python -m repro.analysis.runner``) and ``Session.run("fig12")`` both
resolve names against this registry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.analysis.report import format_table
from repro.api.result import ExperimentResult
from repro.api.session import Session
from repro.arch.area import AreaModel


@dataclass(frozen=True)
class ExperimentDefinition:
    """One registered experiment: a name, a description, and a builder.

    ``build(session, **kwargs)`` runs the experiment through the given
    session (kwargs narrow the experiment, e.g. fewer scenes) and returns
    an :class:`ExperimentResult`.  ``cost_hint`` is the experiment's rough
    relative wall time (1.0 = one full-resolution scene context); the
    experiment-level scheduler dispatches heaviest-first to minimise
    makespan.  Experiments are mutually independent — nothing here depends
    on another experiment's output — so any dispatch order is valid.
    """

    name: str
    description: str
    build: Callable[..., ExperimentResult]
    cost_hint: float = 1.0


REGISTRY: "OrderedDict[str, ExperimentDefinition]" = OrderedDict()


def register(name: str, description: str, cost_hint: float = 1.0):
    """Decorator adding a builder to the experiment registry."""

    def _add(build: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        REGISTRY[name] = ExperimentDefinition(
            name=name, description=description, build=build, cost_hint=cost_hint
        )
        return build

    return _add


def get_experiment(name: str) -> ExperimentDefinition:
    """Look up a registered experiment by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(REGISTRY)}")
    return REGISTRY[name]


def experiment_names() -> List[str]:
    """Registered experiment names in presentation order."""
    return list(REGISTRY)


def run_experiment_payload(
    name: str,
    options: Any = None,
    cache_dir: Any = None,
) -> Dict[str, Any]:
    """Run one experiment and return a pickle-friendly payload.

    The worker entry point of the experiment-level scheduler
    (:func:`repro.api.executor.schedule_experiments`): runs ``name``
    through this process's default session (so experiments scheduled onto
    the same worker share scene contexts and renderers — that sharing *is*
    the pool's reuse win), optionally against a shared disk store rooted at
    ``cache_dir``, and returns the result as ``to_dict()`` data plus
    telemetry (elapsed wall time, worker id, store counters).
    """
    import time

    from repro.api.executor import _worker_id
    from repro.api.session import get_default_session
    from repro.api.store import ResultStore

    session = get_default_session()
    store = ResultStore(cache_dir) if cache_dir else None
    previous = (session.jobs, session.store)
    # Workers run sweeps serially (jobs=1): parallelism already lives at
    # the experiment level, and nested pools would oversubscribe the host.
    session.jobs, session.store = 1, store
    start = time.perf_counter()
    try:
        result = get_experiment(name).build(session, **dict(options or {}))
    finally:
        session.jobs, session.store = previous
    return {
        "name": name,
        "result": result.to_dict(),
        "elapsed_s": time.perf_counter() - start,
        "worker": _worker_id(),
        "store_hits": store.hits if store is not None else 0,
        "store_misses": store.misses if store is not None else 0,
    }


# ----------------------------------------------------------------------
# Builders: characterization (Sec. II-B).
# ----------------------------------------------------------------------
@register("fig2", "DRAM traffic breakdown of tile-centric 3DGS", cost_hint=3.0)
def _fig2(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.characterization import run_fig2

    result = run_fig2(session=session, **kwargs)
    return ExperimentResult(
        name="fig2",
        title="Fig. 2 — tile-centric DRAM traffic breakdown",
        text=result.format(),
        metrics={
            "intermediate_fraction": result.intermediate_fraction,
            "mean_projection_share": result.mean_share("projection"),
            "mean_sorting_share": result.mean_share("sorting"),
            "mean_rendering_share": result.mean_share("rendering"),
        },
        payload={
            "scenes": result.scenes,
            "stage_fractions": result.stage_fractions,
            "paper_intermediate_fraction": result.paper_intermediate_fraction,
        },
    )


@register("fig3", "3DGS FPS on the Orin NX GPU", cost_hint=3.0)
def _fig3(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.characterization import run_fig3

    result = run_fig3(session=session, **kwargs)
    mean = lambda values: sum(values) / len(values) if values else 0.0
    return ExperimentResult(
        name="fig3",
        title="Fig. 3 — 3DGS FPS on Orin NX",
        text=result.format(),
        metrics={
            "mean_measured_fps": mean(result.measured_fps),
            "mean_paper_fps": mean(result.paper_fps),
            "max_measured_fps": max(result.measured_fps),
        },
        payload={
            "scenes": result.scenes,
            "categories": result.categories,
            "measured_fps": result.measured_fps,
            "paper_fps": result.paper_fps,
        },
    )


@register("fig4", "DRAM bandwidth needed for 90 FPS", cost_hint=3.0)
def _fig4(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.characterization import run_fig4

    result = run_fig4(session=session, **kwargs)
    over = [
        scene
        for scene, total in zip(result.scenes, result.total_gbs)
        if total > result.bandwidth_limit_gbs
    ]
    return ExperimentResult(
        name="fig4",
        title="Fig. 4 — DRAM bandwidth needed for 90 FPS",
        text=result.format(),
        metrics={
            "max_total_gbs": max(result.total_gbs),
            "bandwidth_limit_gbs": result.bandwidth_limit_gbs,
            "scenes_over_limit": float(len(over)),
        },
        payload={
            "scenes": result.scenes,
            "categories": result.categories,
            "stage_gbs": result.stage_gbs,
            "total_gbs": result.total_gbs,
            "scenes_over_limit": over,
        },
    )


# ----------------------------------------------------------------------
# Builders: algorithm quality (Sec. III).
# ----------------------------------------------------------------------
@register("fig7", "Boundary-aware fine-tuning (train scene)", cost_hint=4.0)
def _fig7(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.quality import run_fig7

    result = run_fig7(session=session, **kwargs)
    return ExperimentResult(
        name="fig7",
        title="Fig. 7 — boundary-aware fine-tuning",
        text=result.format(),
        metrics={
            "error_ratio_reduction": result.error_ratio_reduction,
            "psnr_gain": result.psnr_gain,
            "initial_error_ratio": result.error_ratio[0] if result.error_ratio else 0.0,
            "final_error_ratio": result.error_ratio[-1] if result.error_ratio else 0.0,
        },
        payload={
            "iterations": result.iterations,
            "error_ratio": result.error_ratio,
            "quality_psnr": result.quality_psnr,
            "paper_error_ratio": result.paper_error_ratio,
            "paper_psnr": result.paper_psnr,
        },
    )


@register("tab1", "Accelerator configuration and area", cost_hint=0.1)
def _tab1(session: Session, **kwargs: Any) -> ExperimentResult:
    if kwargs:
        raise TypeError(f"tab1 accepts no experiment parameters, got {sorted(kwargs)}")
    breakdown = AreaModel().table1()
    rows = [[name, f"{area:.3f}"] for name, area in breakdown.as_rows()]
    text = format_table(
        ["component", "area (mm^2)"], rows, title="Table I — configuration and area"
    )
    return ExperimentResult(
        name="tab1",
        title="Table I — configuration and area",
        text=text,
        metrics={"total_mm2": breakdown.total_mm2},
        payload={"rows": [[name, area] for name, area in breakdown.as_rows()]},
    )


@register("tab2", "Rendering quality (PSNR) comparison", cost_hint=6.0)
def _tab2(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.quality import PAPER_MEAN_PSNR_DROP, run_table2

    result = run_table2(session=session, **kwargs)
    return ExperimentResult(
        name="tab2",
        title="Table II — rendering quality (PSNR)",
        text=result.format(),
        metrics={
            "mean_measured_drop": result.mean_measured_drop(),
            "paper_mean_drop": PAPER_MEAN_PSNR_DROP,
        },
        payload={
            "rows": [
                {
                    "algorithm": row.algorithm,
                    "scene": row.scene,
                    "paper_baseline": row.paper_baseline,
                    "paper_ours": row.paper_ours,
                    "measured_baseline": row.measured_baseline,
                    "measured_ours": row.measured_ours,
                }
                for row in result.rows
            ]
        },
    )


# ----------------------------------------------------------------------
# Builders: end-to-end evaluation (Sec. V).
# ----------------------------------------------------------------------
@register("fig11", "End-to-end speedup and energy savings", cost_hint=6.0)
def _fig11(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.performance import run_fig11

    result = run_fig11(session=session, **kwargs)
    return ExperimentResult(
        name="fig11",
        title="Fig. 11 — end-to-end speedup and energy savings",
        text=result.format(),
        metrics={
            "mean_speedup_streaminggs": result.mean_speedup("streaminggs"),
            "mean_speedup_gscore": result.mean_speedup("gscore"),
            "mean_energy_savings_streaminggs": result.mean_energy_savings("streaminggs"),
            "streaming_vs_gscore_speedup": result.streaming_vs_gscore_speedup(),
            "streaming_vs_gscore_energy": result.streaming_vs_gscore_energy(),
        },
        payload={
            "algorithms": result.algorithms,
            "variants": result.variants,
            "speedup": result.speedup,
            "energy_savings": result.energy_savings,
            "paper_speedup": result.paper_speedup,
            "paper_energy": result.paper_energy,
        },
    )


@register("fig12", "Voxel-size sensitivity", cost_hint=6.0)
def _fig12(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.sensitivity import run_fig12

    result = run_fig12(session=session, **kwargs)
    return ExperimentResult(
        name="fig12",
        title="Fig. 12 — voxel-size sensitivity",
        text=result.format(),
        metrics={
            "quality_monotonic_trend": result.quality_monotonic_trend,
            "max_energy_savings": max(result.energy_savings),
            "min_energy_savings": min(result.energy_savings),
        },
        payload={
            "scene": result.scene,
            "voxel_sizes": result.voxel_sizes,
            "energy_savings": result.energy_savings,
            "psnr": result.psnr,
        },
    )


@register("fig13", "CFU/FFU sensitivity", cost_hint=1.5)
def _fig13(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.sensitivity import run_fig13

    result = run_fig13(session=session, **kwargs)
    speedups = [result.value(c, f) for c in result.cfus for f in result.ffus]
    return ExperimentResult(
        name="fig13",
        title="Fig. 13 — CFU/FFU sensitivity",
        text=result.format(),
        metrics={
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
            "paper_min": result.paper_min,
            "paper_max": result.paper_max,
        },
        payload={
            "scene": result.scene,
            "cfus": result.cfus,
            "ffus": result.ffus,
            "speedup": result.speedup,
            "area_mm2": result.area_mm2,
        },
    )


@register("claims", "Supporting filtering / VQ claims", cost_hint=1.0)
def _claims(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.analysis.claims import run_supporting_claims

    result = run_supporting_claims(session=session, **kwargs)
    return ExperimentResult(
        name="claims",
        title="Supporting claims",
        text=result.format(),
        metrics={
            "filtering_reduction": result.filtering_reduction,
            "vq_traffic_reduction": result.vq_traffic_reduction,
            "coarse_macs": float(result.coarse_macs),
            "fine_macs": float(result.fine_macs),
        },
        payload={"scene": result.scene},
    )


@register(
    "trajectory",
    "Temporal-coherence trajectory workload (carry fast path)",
    cost_hint=3.0,
)
def _trajectory(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.api.spec import TrajectorySpec

    return session.run_trajectory(TrajectorySpec.from_dict(kwargs))


@register("engine", "Blending-kernel micro-benchmark (engine layer)", cost_hint=1.0)
def _engine(session: Session, **kwargs: Any) -> ExperimentResult:
    from repro.engine.bench import run_kernel_benchmark

    result = run_kernel_benchmark(**kwargs)
    return ExperimentResult(
        name="engine",
        title="Engine blending-kernel micro-benchmark",
        text=result.format(),
        metrics={
            "speedup": result.speedup,
            "max_image_delta": result.max_image_delta,
        },
        payload=result.as_dict(),
    )
