"""The :class:`Session` — the single front-end for running anything here.

A session owns a :class:`~repro.engine.service.RenderService` (shared
renderers and prepared frames), a scene-context cache (calibrated models,
ground truths and paper-scale workloads), and a seeded RNG, so repeated
runs share prepared state.  Everything the repository can do is reachable
from it:

* ``session.render(model, camera)`` — one render through the shared engine;
* ``session.render("train", "orbit", frames=24)`` — a whole trajectory
  workload (named path or explicit camera list, or a full
  :class:`~repro.api.spec.TrajectorySpec`) through the temporal-coherence
  fast path, with :meth:`Session.run_trajectory` producing the cacheable
  :class:`~repro.api.result.ExperimentResult` form;
* ``session.context(scene)`` — the cached evaluation context of a scene;
* ``session.run(spec)`` — one declarative experiment point
  (:class:`~repro.api.spec.ExperimentSpec`) evaluated end to end, returning
  an :class:`~repro.api.result.ExperimentResult`;
* ``session.run(name)`` — a registered paper artifact (``fig12``,
  ``tab2``, ...);
* ``session.run_many(specs)`` — a batch of points grouped by shared scene
  context, so each context is built once and its renders are batched;
* ``session.sweep(base, voxel_size=[...])`` — a parameter-grid sensitivity
  study returning a :class:`~repro.api.result.SweepResult`; ``jobs=`` and
  ``cache=`` route it through the sharded
  :class:`~repro.api.executor.SweepExecutor` and the disk-backed
  :class:`~repro.api.store.ResultStore`.

Parallel sweeps run on the session's persistent
:class:`~repro.api.pool.WorkerPool`: created lazily by the first sweep,
reused by every later one, shut down by :meth:`Session.close` (sessions
are context managers: ``with Session(jobs=4) as s: ...``) or at
interpreter exit.  Each sweep's telemetry lands in
``SweepResult.meta["execution"]`` and ``session.last_execution``.

A process-wide default session is available via
:func:`get_default_session`; the analysis harness and the CLI runner go
through it so independent experiments share scene contexts and renderers
within one process.
"""

from __future__ import annotations

import atexit
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.context import SceneContext, build_scene_context
from repro.analysis.report import format_table
from repro.api.pool import WorkerPool
from repro.api.result import ExperimentResult, SweepResult
from repro.api.spec import ExperimentSpec, TrajectorySpec, sweep
from repro.api.store import ResultStore, resolve_store
from repro.arch.gpu import OrinNXModel
from repro.arch.gscore import GSCoreModel
from repro.arch.accelerator import StreamingGSAccelerator
from repro.core.config import StreamingConfig
from repro.engine.service import (
    DEFAULT_RENDERER_CACHE_SIZE,
    RenderOptions,
    RenderRequest,
    RenderResponse,
    RenderService,
)
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.scenes.registry import SCENE_REGISTRY, build_scene

#: Scene contexts kept alive per session (each owns a calibrated model,
#: ground-truth image and workload).
DEFAULT_CONTEXT_CACHE_SIZE = 64

#: Metric presentation order of a point result's formatted report.
_POINT_METRIC_ORDER = (
    "baseline_psnr",
    "streaming_psnr",
    "psnr_drop",
    "frame_time_ms",
    "fps",
    "energy_per_frame_mj",
    "dram_mb_per_frame",
    "speedup",
    "energy_savings",
    "filtering_reduction",
    "area_mm2",
)


class Session:
    """Shared-state front-end for rendering and experiments.

    Parameters
    ----------
    service:
        Render service to use; a private one is created when omitted.
    seed:
        Seed of the session's RNG (``session.rng``), the one source of
        randomness experiment code running under the session should use.
    max_renderers:
        Renderer-cache size of a privately created service.
    max_contexts:
        Scene contexts kept alive (LRU).
    jobs:
        Default worker count of :meth:`run_sweep` / :meth:`sweep`
        (``1`` = serial in-process).
    store:
        Default :class:`~repro.api.store.ResultStore` (or a directory path
        for one) consulted by sweeps; ``None`` disables result caching.
    """

    def __init__(
        self,
        service: Optional[RenderService] = None,
        seed: int = 0,
        max_renderers: int = DEFAULT_RENDERER_CACHE_SIZE,
        max_contexts: int = DEFAULT_CONTEXT_CACHE_SIZE,
        jobs: int = 1,
        store: Optional[Union["ResultStore", str, Path]] = None,
    ) -> None:
        if max_contexts <= 0:
            raise ValueError("max_contexts must be positive")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        #: Whether the session built its service (and may close it); a
        #: service passed in — e.g. the process-wide default — is shared
        #: state the session must not tear down.
        self._owns_service = service is None
        self.service = service if service is not None else RenderService(max_renderers=max_renderers)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.max_contexts = max_contexts
        self.jobs = jobs
        self.store = resolve_store(store)
        self._contexts: "OrderedDict[Tuple, SceneContext]" = OrderedDict()
        #: Procedural scene models built by name-based renders (cheap next
        #: to a full SceneContext, but not free — one build per scene).
        self._scene_models: Dict[str, GaussianModel] = {}
        self._pool: Optional[WorkerPool] = None
        #: Shared-memory registry + per-context-key package cache backing
        #: zero-copy context broadcast (created lazily by parallel sweeps).
        self._shm_registry = None
        self._context_packages: Dict[Tuple, Any] = {}
        #: :class:`~repro.api.executor.ExecutionReport` of the most recent
        #: :meth:`run_sweep` (telemetry; also in ``SweepResult.meta``).
        self.last_execution = None
        self.points_run = 0
        self.context_hits = 0
        self.context_misses = 0

    # ------------------------------------------------------------------
    # Rendering (delegates to the shared engine service).
    # ------------------------------------------------------------------
    def scene_model(self, scene: str) -> GaussianModel:
        """The cached procedural Gaussian model of a registered scene."""
        model = self._scene_models.get(scene)
        if model is None:
            model = build_scene(scene)
            self._scene_models[scene] = model
        return model

    def render(
        self,
        scene: Union[GaussianModel, str, TrajectorySpec],
        camera_or_trajectory: Union[Camera, str, Sequence[Camera], None] = None,
        config: Optional[StreamingConfig] = None,
        mode: str = "streaming",
        tag: str = "",
        options: Optional[RenderOptions] = None,
        frames: int = 16,
    ) -> Union[RenderResponse, List[RenderResponse]]:
        """Render one frame or a whole trajectory through the session's engine.

        The public single-frame/trajectory entry point.  Accepted forms:

        * ``render(model, camera)`` — the original single-frame form
          (returns one :class:`RenderResponse`);
        * ``render("train", camera)`` — same, with the scene's cached
          procedural model resolved by name;
        * ``render("train", "orbit", frames=24)`` — a registered trajectory
          workload (returns the per-frame response list; see
          :data:`repro.scenes.registry.TRAJECTORY_REGISTRY`);
        * ``render(model_or_scene, [cam0, cam1, ...])`` — an explicit
          camera path;
        * ``render(trajectory_spec)`` — a full
          :class:`~repro.api.spec.TrajectorySpec` workload.

        ``options`` (:class:`~repro.engine.service.RenderOptions`) controls
        execution — tile workers, kernel/temporal overrides, resolution
        scale.  Trajectory forms leave their aggregated telemetry in
        ``session.service.last_trajectory``; named trajectories default to
        ``temporal_mode="carry"`` (via :meth:`TrajectorySpec.streaming_config`),
        explicit camera lists render with ``config`` as passed.
        """
        if isinstance(scene, TrajectorySpec):
            if camera_or_trajectory is not None:
                raise TypeError(
                    "a TrajectorySpec already carries its cameras; "
                    "pass it as the only positional argument"
                )
            return self.render_trajectory(scene, config=config, options=options)
        if camera_or_trajectory is None:
            raise TypeError("render() needs a camera, trajectory name or camera list")
        model = self.scene_model(scene) if isinstance(scene, str) else scene
        target = camera_or_trajectory
        if isinstance(target, Camera):
            return self.service.render(
                RenderRequest(
                    model=model, camera=target, config=config, mode=mode, tag=tag
                ),
                options=options,
            )
        if mode != "streaming":
            raise ValueError("trajectory renders are streaming-only")
        if isinstance(target, str):
            if not isinstance(scene, str):
                raise TypeError(
                    "a named trajectory needs a registered scene name, not a model"
                )
            spec = TrajectorySpec(scene=scene, path=target, frames=frames, tag=tag)
            return self.render_trajectory(spec, config=config, options=options)
        return self.service.render_trajectory(
            model, list(target), config=config, options=options, tag=tag
        )

    def render_trajectory(
        self,
        spec: TrajectorySpec,
        config: Optional[StreamingConfig] = None,
        options: Optional[RenderOptions] = None,
    ) -> List[RenderResponse]:
        """Render a trajectory spec's camera path, one response per frame.

        ``config`` / ``options`` override the spec's resolved streaming
        config (scene default + carry) and render options when given.
        Aggregated telemetry (warm frames, coherence hit rate) lands in
        ``session.service.last_trajectory``.
        """
        model = self.scene_model(spec.scene)
        return self.service.render_trajectory(
            model,
            spec.cameras(),
            config=config if config is not None else spec.streaming_config(),
            options=options if options is not None else spec.render_options(),
            tag=spec.tag,
        )

    def run_trajectory(
        self,
        spec: TrajectorySpec,
        cache: Optional[Union[ResultStore, str, Path, bool]] = None,
    ) -> ExperimentResult:
        """Run a trajectory workload end to end, with result-store caching.

        Renders the spec (:meth:`render_trajectory`), folds the per-frame
        telemetry into an :class:`~repro.api.result.ExperimentResult`
        (coherence counters, wall seconds, image checksums) and caches it
        under the spec's canonical key — same contract as experiment
        points, so trajectory runs share the
        :class:`~repro.api.store.ResultStore` machinery.
        """
        store = self.store if cache is None else resolve_store(cache)
        if store is not None:
            cached = store.get(spec)
            if cached is not None:
                return cached
        responses = self.render_trajectory(spec)
        summary = dict(self.service.last_trajectory or {})
        per_frame = summary.pop("per_frame", [])
        seconds = [float(f.get("seconds", 0.0)) for f in per_frame]
        metrics = {
            "frames": float(summary.get("frames", len(responses))),
            "warm_frames": float(summary.get("warm_frames", 0)),
            "cold_frames": float(summary.get("cold_frames", 0)),
            "coherence_hit_rate": float(summary.get("coherence_hit_rate", 0.0)),
            "carried_voxels": float(summary.get("carried_voxels", 0)),
            "revalidated": float(summary.get("revalidated", 0)),
            "total_seconds": float(sum(seconds)),
            "mean_frame_ms": (
                1e3 * float(np.mean(seconds)) if seconds else 0.0
            ),
        }
        title = f"trajectory — {spec.label}"
        rows = [[name, value] for name, value in metrics.items()]
        result = ExperimentResult(
            name="trajectory",
            title=title,
            text=format_table(["metric", "value"], rows, title=title),
            metrics=metrics,
            payload={
                "spec": spec.to_dict(),
                "summary": summary,
                "per_frame": per_frame,
                "image_checksums": [
                    float(np.abs(response.image).sum()) for response in responses
                ],
            },
            meta={"label": spec.label, "tag": spec.tag},
        )
        self.points_run += 1
        if store is not None:
            try:
                store.put(spec, result)
            except OSError:
                # The cache is best-effort: a full/broken disk must not
                # fail the run that already produced the result.
                pass
        return result

    def render_batch(self, requests: Iterable[RenderRequest]) -> List[RenderResponse]:
        """Serve many render requests, sharing renderers and frames."""
        return self.service.render_batch(requests)

    def render_pair(
        self,
        model: GaussianModel,
        camera: Camera,
        config: Optional[StreamingConfig] = None,
    ):
        """Tile-centric reference and streaming render of the same scene."""
        return self.service.render_pair(model, camera, config=config)

    def streaming_renderer(
        self, model: GaussianModel, config: Optional[StreamingConfig] = None
    ):
        """The shared streaming renderer of a (model, config) pair."""
        return self.service.streaming_renderer(model, config)

    def tile_rasterizer(self, config: Optional[StreamingConfig] = None):
        """A tile-centric rasterizer matching the streaming configuration."""
        return self.service.tile_rasterizer(config)

    def isolated(self, max_renderers: int = 1) -> "Session":
        """A fresh session sharing nothing with this one.

        Used for throwaway renders (e.g. fine-tuning probes of mutating
        parameter snapshots) that must not evict this session's shared
        renderers.
        """
        return Session(seed=self.seed, max_renderers=max_renderers)

    # ------------------------------------------------------------------
    # Scene contexts.
    # ------------------------------------------------------------------
    def context(
        self,
        scene: str,
        algorithm: str = "3dgs",
        voxel_size: Optional[float] = None,
        resolution_scale: float = 1.0,
        config: Optional[Union[StreamingConfig, Mapping[str, Any]]] = None,
    ) -> SceneContext:
        """The cached evaluation context of one (scene, algorithm) pair.

        Parameters
        ----------
        scene:
            Registered scene name.
        algorithm:
            Base algorithm (``3dgs``, ``mini_splatting``, ``light_gaussian``).
        voxel_size:
            Streaming voxel size; ``None`` (or non-positive) uses the
            paper's default for the scene's category.
        resolution_scale:
            Scale factor on the simulated evaluation resolution.
        config:
            Full :class:`StreamingConfig` or a mapping of field overrides;
            mutually exclusive with ``voxel_size``.
        """
        if scene not in SCENE_REGISTRY:
            raise KeyError(f"unknown scene {scene!r}; available: {sorted(SCENE_REGISTRY)}")
        if config is not None and voxel_size is not None:
            raise ValueError("pass voxel_size or config, not both")
        descriptor = SCENE_REGISTRY[scene]
        if config is None:
            effective = voxel_size if voxel_size and voxel_size > 0 else descriptor.default_voxel_size
            resolved = StreamingConfig(voxel_size=float(effective))
        elif isinstance(config, StreamingConfig):
            resolved = config
        else:
            resolved = StreamingConfig(voxel_size=descriptor.default_voxel_size).with_options(
                **dict(config)
            )
        key = (scene, algorithm, resolved, float(resolution_scale))
        context = self._contexts.get(key)
        if context is not None:
            self._contexts.move_to_end(key)
            self.context_hits += 1
            return context
        self.context_misses += 1
        context = build_scene_context(
            scene,
            algorithm=algorithm,
            config=resolved,
            resolution_scale=float(resolution_scale),
            service=self.service,
        )
        self._contexts[key] = context
        while len(self._contexts) > self.max_contexts:
            self._contexts.popitem(last=False)
        return context

    def spec_context(self, spec: ExperimentSpec) -> SceneContext:
        """The evaluation context behind one experiment spec."""
        return self.context(
            spec.scene,
            algorithm=spec.algorithm,
            resolution_scale=spec.resolution_scale,
            config=spec.streaming_config(),
        )

    def has_context(self, spec: ExperimentSpec) -> bool:
        """Whether ``spec``'s scene context is already cached (no counters).

        Pool workers use this to decide if a broadcast context even needs
        unpacking: a warm worker session that evaluated the same context
        group before skips both the unpack and the adopt.
        """
        key = (
            spec.scene,
            spec.algorithm,
            spec.streaming_config(),
            float(spec.resolution_scale),
        )
        return key in self._contexts

    def context_package(self, spec: ExperimentSpec) -> "ShmPackage":
        """The shared-memory package of ``spec``'s scene context, cached.

        Packs the context once per context key into the session's
        :class:`~repro.api.shm.ShmRegistry` — model parameters, images and
        workload arrays land in shared segments; the package payload that
        gets pickled per pool dispatch is metadata-sized.  Cached, so
        repeated sweeps over the same context republish nothing.  The
        backing segments are unlinked by :meth:`close` (or at interpreter
        exit).
        """
        from repro.api.shm import ShmPackage

        key = (
            spec.scene,
            spec.algorithm,
            spec.streaming_config(),
            float(spec.resolution_scale),
        )
        package = self._context_packages.get(key)
        if package is None:
            package = ShmPackage.pack(self.spec_context(spec), self.shm_registry())
            self._context_packages[key] = package
        return package

    def shm_registry(self) -> "ShmRegistry":
        """The session's shared-memory registry, created lazily.

        Owns every segment the session publishes (context packages,
        broadcast payloads); :meth:`close` unlinks them all, with an
        ``atexit`` backstop inside the registry itself for forgotten
        sessions.
        """
        from repro.api.shm import ShmRegistry

        if self._shm_registry is None or self._shm_registry.closed:
            self._shm_registry = ShmRegistry()
        return self._shm_registry

    def adopt_context(self, spec: ExperimentSpec, context: SceneContext) -> None:
        """Seed the context cache with an externally built context.

        The context-broadcast path of sub-shard execution: the sweep
        executor builds a split shard's scene context once in the calling
        session and every worker session adopts it (threads by reference,
        processes as a pickled copy), so :meth:`spec_context` hits the
        cache instead of re-rendering.  The caller vouches that ``context``
        is the one ``spec`` would build.
        """
        key = (
            spec.scene,
            spec.algorithm,
            spec.streaming_config(),
            float(spec.resolution_scale),
        )
        self._contexts[key] = context
        self._contexts.move_to_end(key)
        while len(self._contexts) > self.max_contexts:
            self._contexts.popitem(last=False)

    # ------------------------------------------------------------------
    # Experiments.
    # ------------------------------------------------------------------
    def run(
        self, spec: Union[ExperimentSpec, str], **overrides: Any
    ) -> ExperimentResult:
        """Run one experiment.

        ``spec`` is either an :class:`ExperimentSpec` (a single evaluation
        point; keyword overrides are applied with
        :meth:`ExperimentSpec.with_options`) or the name of a registered
        paper artifact (``fig2`` ... ``engine``; keywords are passed to the
        experiment builder).
        """
        if isinstance(spec, str):
            from repro.api.experiments import get_experiment

            return get_experiment(spec).build(self, **overrides)
        if overrides:
            spec = spec.with_options(**overrides)
        return self.run_point(spec)

    def run_point(self, spec: ExperimentSpec) -> ExperimentResult:
        """Evaluate one spec end to end: render, workload, hardware model."""
        context = self.spec_context(spec)
        workload = context.workload
        gpu_report = OrinNXModel().evaluate(workload)
        accelerator = None
        if spec.arch == "gpu":
            report = gpu_report
        elif spec.arch == "gscore":
            report = GSCoreModel().evaluate(workload)
        else:
            accelerator = StreamingGSAccelerator(spec.accelerator_config())
            report = accelerator.evaluate(workload)

        metrics = {
            "baseline_psnr": context.baseline_psnr,
            "streaming_psnr": context.streaming_psnr,
            "psnr_drop": context.baseline_psnr - context.streaming_psnr,
            "frame_time_ms": report.frame_time_s * 1e3,
            "fps": report.fps,
            "energy_per_frame_mj": report.energy_per_frame_j * 1e3,
            "dram_mb_per_frame": report.dram_bytes / 1e6,
            "speedup": report.speedup_over(gpu_report),
            "energy_savings": report.energy_saving_over(gpu_report),
            "filtering_reduction": workload.filtering_reduction,
        }
        if accelerator is not None:
            # The accelerator's own area model sees the (possibly
            # sram_scale-adjusted) buffers, so area tracks the SRAM knob.
            metrics["area_mm2"] = accelerator.area_mm2()

        config = context.streaming_config
        title = f"experiment point — {spec.label}"
        rows = [[name, metrics[name]] for name in _POINT_METRIC_ORDER if name in metrics]
        text = format_table(["metric", "value"], rows, title=title)
        self.points_run += 1
        return ExperimentResult(
            name="point",
            title=title,
            text=text,
            metrics=metrics,
            payload={
                "spec": spec.to_dict(),
                "scene_category": context.descriptor.category,
                "hardware": report.name,
                "config": {
                    "voxel_size": config.voxel_size,
                    "tile_size": config.tile_size,
                    "blend_kernel": config.blend_kernel,
                    "use_vq": config.use_vq,
                    "use_coarse_filter": config.use_coarse_filter,
                },
                "workload": {
                    "num_gaussians": workload.num_gaussians,
                    "visible_gaussians": workload.visible_gaussians,
                    "num_pairs": workload.num_pairs,
                    "gaussians_streamed": workload.gaussians_streamed,
                },
            },
            meta={"label": spec.label, "tag": spec.tag},
        )

    def run_many(self, specs: Sequence[ExperimentSpec]) -> List[ExperimentResult]:
        """Evaluate a batch of points, grouped by shared scene context.

        Specs needing the same context (same scene, algorithm, resolution
        scale and resolved streaming config) are evaluated back to back, so
        each context — whose construction batches its renders through
        :meth:`~repro.engine.service.RenderService.render_batch` — is built
        once even when the input interleaves contexts and the LRU cache is
        small.  Results come back in input order.

        A point that raises is re-raised as a
        :class:`~repro.api.executor.SpecEvaluationError` naming the
        offending spec, so batch (and pool-worker) failures always say
        which grid point died.
        """
        from repro.api.executor import SpecEvaluationError, group_by_context

        results: List[Optional[ExperimentResult]] = [None] * len(specs)
        for members in group_by_context(enumerate(specs)).values():
            for index, spec in members:
                try:
                    results[index] = self.run_point(spec)
                except SpecEvaluationError:
                    raise
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as error:
                    raise SpecEvaluationError(spec, error) from error
        return results  # type: ignore[return-value]

    def run_sweep(
        self,
        specs: Sequence[ExperimentSpec],
        swept: Optional[Sequence[str]] = None,
        jobs: Optional[int] = None,
        cache: Optional[Union[ResultStore, str, Path, bool]] = None,
    ) -> SweepResult:
        """Run a list of point specs on the sharded sweep executor.

        Parameters
        ----------
        specs, swept:
            The grid points and the names of the swept axes.
        jobs:
            Worker count; ``None`` uses the session default (``self.jobs``),
            ``1`` evaluates serially through this session's shared state.
        cache:
            ``None`` uses the session default store, ``False`` disables
            caching for this sweep, a path or :class:`ResultStore` selects
            one explicitly.
        """
        from repro.api.executor import SweepExecutor

        store = self.store if cache is None else resolve_store(cache)
        executor = SweepExecutor(
            jobs=self.jobs if jobs is None else jobs,
            store=store,
            seed=self.seed,
            split_threshold=self.split_threshold(),
        )
        result = executor.run(specs, swept=swept, session=self)
        self.last_execution = executor.report
        return result

    def split_threshold(self) -> int:
        """The shard-split threshold the next sweep will run with.

        Adaptive: seeded from the mean per-spec evaluation seconds the
        previous sweep observed (``last_execution.shard_times_s``), so
        grids of expensive points split earlier than the static default
        while cheap grids keep the overhead floor — see
        :func:`repro.api.executor.adaptive_split_threshold`.  Splitting
        only changes scheduling, never results (parallel output stays
        byte-identical to serial).
        """
        from repro.api.executor import adaptive_split_threshold

        report = self.last_execution
        observed = report.per_spec_seconds if report is not None else None
        return adaptive_split_threshold(observed)

    def sweep(
        self,
        base: Optional[ExperimentSpec] = None,
        *,
        jobs: Optional[int] = None,
        cache: Optional[Union[ResultStore, str, Path, bool]] = None,
        **grid: Any,
    ) -> SweepResult:
        """Expand a parameter grid (:func:`repro.api.spec.sweep`) and run it."""
        return self.run_sweep(sweep(base, **grid), swept=list(grid), jobs=jobs, cache=cache)

    def pareto_search(
        self,
        base: Optional[ExperimentSpec] = None,
        *,
        max_evals: Optional[int] = None,
        **axes: Any,
    ):
        """Pareto frontier search over accelerator design axes.

        Unlike :meth:`sweep`, the design space is *navigated* — lattice
        corners and centre are evaluated first and the frontier's
        neighbours are refined until closure — instead of enumerated, so
        large spaces cost a fraction of the grid.  Point evaluations go
        through :meth:`run_sweep` and are therefore cached in (and
        resumed from) the session's :class:`ResultStore`.  See
        :func:`repro.fleet.search.pareto_search`.
        """
        from repro.fleet.search import pareto_search

        return pareto_search(self, base, axes=axes, max_evals=max_evals)

    # ------------------------------------------------------------------
    # Worker-pool lifecycle.
    # ------------------------------------------------------------------
    def worker_pool(self) -> WorkerPool:
        """The session's persistent :class:`~repro.api.pool.WorkerPool`.

        Created lazily on the first parallel sweep and reused by every
        later one (the sweep executor's ``worker_reuse`` counter tracks
        this), so repeated ``run_sweep`` calls in one process pay worker
        startup once.  Shut down by :meth:`close` — or at interpreter exit
        via the ``atexit`` hook registered here, so forgotten sessions
        never wedge shutdown.
        """
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool()
            atexit.register(self._pool.shutdown)
        return self._pool

    def close(self) -> None:
        """Release everything the session holds.

        Shuts the persistent worker pool down (and unregisters its atexit
        hook), then drops cached contexts — and cached renderers too, but
        only when the session built its own service: a shared service
        (e.g. the process-wide default) belongs to every session using it
        and is left untouched.  The session remains usable — the next
        parallel sweep simply builds a fresh pool — so ``close()`` is safe
        to call between phases of a long process to return memory and
        worker processes.
        """
        if self._pool is not None:
            atexit.unregister(self._pool.shutdown)
            self._pool.shutdown()
            self._pool = None
        self._contexts.clear()
        self._scene_models.clear()
        self._context_packages.clear()
        if self._shm_registry is not None:
            # Unlink every shared segment the session published; workers
            # of the (just shut down) pool held only attachments, which
            # never block an unlink.
            self._shm_registry.close()
            self._shm_registry = None
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: points run, context cache, pool, render service."""
        return {
            "points_run": self.points_run,
            "context_hits": self.context_hits,
            "context_misses": self.context_misses,
            "contexts_alive": len(self._contexts),
            "pool": self._pool.stats() if self._pool is not None else None,
            "service": self.service.stats(),
        }

    def clear(self) -> None:
        """Drop cached contexts, models and renderers (counters are kept)."""
        self._contexts.clear()
        self._scene_models.clear()
        self.service.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(contexts={len(self._contexts)}, "
            f"renderers={len(self.service._renderers)}, seed={self.seed})"
        )


_DEFAULT_SESSION: Optional[Session] = None


def get_default_session() -> Session:
    """The process-wide shared :class:`Session`.

    Wraps the process-wide engine service, so code rendering through
    :func:`repro.engine.service.get_default_service` and code running
    experiments through the default session share renderers.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        from repro.engine.service import get_default_service

        _DEFAULT_SESSION = Session(service=get_default_service())
    return _DEFAULT_SESSION


def reset_default_session() -> None:
    """Replace the process-wide session (used by tests).

    The outgoing session is closed, not orphaned: its worker pool and
    any shared-memory segments its registry published are released now
    rather than at interpreter exit (the shared engine service is left
    untouched, as for any :meth:`Session.close`).
    """
    global _DEFAULT_SESSION
    outgoing, _DEFAULT_SESSION = _DEFAULT_SESSION, None
    if outgoing is not None:
        outgoing.close()
