"""Persistent worker pools shared across sweeps.

PR 3's executor built a fresh process pool for every sweep, so repeated
``run_sweep`` calls in one process paid worker startup (interpreter spawn,
NumPy import) each time.  :class:`WorkerPool` keeps one
``concurrent.futures`` executor per mode (``process`` / ``thread``) alive
between sweeps; :class:`~repro.api.session.Session` owns one lazily and
hands it to every :class:`~repro.api.executor.SweepExecutor` run, so the
second sweep of a session reuses warm workers.

Lifecycle: the pool is created on first use, grown (recreated larger) when
a sweep asks for more workers than it holds, discarded when a pool breaks
mid-run, and shut down by ``Session.close()`` — or by the ``atexit`` hook
the session registers, so leaked sessions never hang interpreter exit.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.api.session import Session

#: Pool modes a :class:`WorkerPool` can serve.
POOL_MODES = ("process", "thread")

# ----------------------------------------------------------------------
# Warm per-worker sessions.
# ----------------------------------------------------------------------
#: The warm session of *this* process when it is a pool worker: one
#: session per worker process, kept across tasks and sweeps, so scene
#: contexts built (or adopted from a broadcast package) by an earlier task
#: are cache hits — the "no rebuild of non-broadcast contexts per task"
#: half of the zero-copy execution layer.  Never populated in the main
#: process.
_WORKER_SESSION: Optional["Session"] = None


def worker_session(seed: int) -> "Session":
    """The session a pool worker should evaluate tasks in.

    In a worker *process* (anything with a parent process) this returns a
    warm session kept for the process's lifetime — rebuilt only when the
    requested seed changes, so repeated sweeps with one seed share every
    context the worker ever built.  In the main process (thread-pool
    workers, direct calls) it returns a fresh private session: threads
    must not share mutable session state with each other or the caller.
    """
    global _WORKER_SESSION
    from repro.api.session import Session

    if multiprocessing.parent_process() is None:
        return Session(seed=seed)
    if _WORKER_SESSION is None or _WORKER_SESSION.seed != seed:
        _WORKER_SESSION = Session(seed=seed)
    return _WORKER_SESSION


def reset_worker_session() -> None:
    """Drop the warm worker session (tests)."""
    global _WORKER_SESSION
    _WORKER_SESSION = None


class WorkerPool:
    """Lazily created, reusable executor pools keyed by mode.

    ``executor(mode, workers)`` returns a live
    :class:`concurrent.futures.Executor`; an existing pool of the same mode
    with at least ``workers`` workers is reused (``reuse_count`` increments),
    a smaller one is transparently replaced by a bigger one.  Callers never
    shut the returned executor down — the pool owns it; a broken pool is
    dropped with :meth:`discard` and the next request creates a fresh one.
    """

    def __init__(self) -> None:
        self._executors: Dict[str, concurrent.futures.Executor] = {}
        self._sizes: Dict[str, int] = {}
        self.created = 0
        self.reuse_count = 0
        self.closed = False

    # ------------------------------------------------------------------
    def executor(self, mode: str, workers: int) -> concurrent.futures.Executor:
        """A live executor of ``mode`` with capacity for ``workers`` tasks."""
        if mode not in POOL_MODES:
            raise ValueError(f"unknown pool mode {mode!r}; available: {list(POOL_MODES)}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if self.closed:
            raise RuntimeError("worker pool is closed")
        existing = self._executors.get(mode)
        if existing is not None:
            if self._sizes[mode] >= workers:
                self.reuse_count += 1
                return existing
            # Too small for this sweep: replace with a bigger pool.  The old
            # workers finish nothing (the pool is only handed out between
            # sweeps), so a non-waiting shutdown is safe.
            existing.shutdown(wait=False)
        if mode == "process":
            pool: concurrent.futures.Executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            )
        else:
            pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        self._executors[mode] = pool
        self._sizes[mode] = workers
        self.created += 1
        return pool

    def size(self, mode: str) -> int:
        """Worker count of the live pool of ``mode`` (0 when none exists)."""
        return self._sizes.get(mode, 0)

    def discard(self, mode: str) -> None:
        """Drop the pool of ``mode`` (used after a pool breaks mid-run)."""
        pool = self._executors.pop(mode, None)
        self._sizes.pop(mode, None)
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:  # pragma: no cover - broken pools may refuse
                pass

    def shutdown(self) -> None:
        """Shut every pool down; the pool object is unusable afterwards."""
        for mode in list(self._executors):
            self.discard(mode)
        self.closed = True

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counter snapshot: pools created, reuses, live pools."""
        return {
            "created": self.created,
            "reuse_count": self.reuse_count,
            "alive": len(self._executors),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        live = {mode: self._sizes[mode] for mode in self._executors}
        return f"WorkerPool(live={live}, created={self.created}, reuses={self.reuse_count})"
