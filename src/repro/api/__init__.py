"""Declarative front-end for running anything in the repository.

The public surface:

* :class:`~repro.api.session.Session` — owns a render service, a scene
  cache and a seeded RNG; everything runs through it.
* :class:`~repro.api.spec.ExperimentSpec` — one declarative evaluation
  point (scene x algorithm x compression x config overrides x arch model).
* :class:`~repro.api.spec.TrajectorySpec` — one declarative trajectory
  workload (scene x camera path x frames x render options), rendered
  through the temporal-coherence fast path via ``Session.render`` /
  ``Session.run_trajectory``.
* :class:`~repro.engine.service.RenderOptions` — how a render executes
  (tile workers, kernel/temporal overrides, resolution scale).
* :func:`~repro.api.spec.sweep` — expands parameter grids into spec lists
  (Fig. 12 / Fig. 13-style sensitivity studies).
* :class:`~repro.api.result.ExperimentResult` /
  :class:`~repro.api.result.SweepResult` — uniform typed results with
  ``.format()``, ``.metrics``, ``.to_dict()`` / ``.to_json()``.
* ``repro.api.experiments`` — the registry of the paper's regenerable
  artifacts (``fig2`` ... ``engine``), reachable via ``Session.run(name)``
  and the CLI runner.
* :class:`~repro.api.executor.SweepExecutor` — sharded parallel sweep
  evaluation (``session.sweep(..., jobs=4)``) with deterministic merge
  order, shard-splitting for single-context grids (broadcast scene
  contexts), and an :class:`~repro.api.executor.ExecutionReport` in
  ``SweepResult.meta["execution"]``.
* :class:`~repro.api.pool.WorkerPool` — the persistent worker pool a
  session keeps warm across sweeps (``Session.close()`` / ``atexit`` shut
  it down).
* :func:`~repro.api.executor.schedule_experiments` — whole registry
  experiments fanned out over a process pool (``runner all --jobs N``).
* :class:`~repro.api.store.ResultStore` — disk-backed, content-addressed
  result cache keyed by a canonical spec hash; warm sweeps re-render
  nothing.  ``max_bytes=`` caps its size (LRU-by-mtime eviction via
  ``store.gc()``).

Quickstart::

    from repro.api import ExperimentSpec, Session

    session = Session()
    result = session.run(ExperimentSpec(scene="train"))
    print(result.format())
    print(result.metrics["speedup"], result.metrics["streaming_psnr"])

    study = session.sweep(ExperimentSpec(scene="train"),
                          voxel_size=(1.0, 2.0, 3.0))
    print(study.table(["energy_savings", "streaming_psnr"]))
"""

from repro.api.result import ExperimentResult, SweepResult, jsonify
from repro.api.spec import (
    ARCH_MODELS,
    COMPRESSION_MODES,
    ExperimentSpec,
    TrajectorySpec,
    sweep,
)
from repro.api.store import ResultStore, append_trajectory, spec_key
from repro.api.pool import WorkerPool
from repro.api.shm import (
    SharedArrayHandle,
    SharedMemoryUnavailable,
    ShmPackage,
    ShmRegistry,
    leaked_segments,
    shm_available,
)
from repro.api.executor import (
    ExecutionReport,
    ScheduleReport,
    SpecEvaluationError,
    SweepExecutor,
    schedule_experiments,
)
from repro.api.session import Session, get_default_session, reset_default_session
from repro.engine.service import RenderOptions

# The public API surface.  Internals stay importable from their modules
# (``repro.api.pool.worker_session``, ``repro.api.store.atomic_write_json``)
# but are not re-exported here; ``tests/api/test_api_surface.py`` asserts
# the module's importable names match this list exactly.
__all__ = [
    "ARCH_MODELS",
    "COMPRESSION_MODES",
    "ExecutionReport",
    "ExperimentResult",
    "ExperimentSpec",
    "RenderOptions",
    "ResultStore",
    "ScheduleReport",
    "Session",
    "SharedArrayHandle",
    "SharedMemoryUnavailable",
    "ShmPackage",
    "ShmRegistry",
    "SpecEvaluationError",
    "SweepExecutor",
    "SweepResult",
    "TrajectorySpec",
    "WorkerPool",
    "append_trajectory",
    "get_default_session",
    "jsonify",
    "leaked_segments",
    "reset_default_session",
    "schedule_experiments",
    "shm_available",
    "spec_key",
    "sweep",
]
