"""Zero-copy shared-memory transport for large arrays.

Process-based parallelism in this repository moves two kinds of payloads
between the caller and its workers: *scene state* (model parameter arrays,
ground-truth images, prepared frames, 3D-DDA traversal outputs) and
*render outputs* (image / alpha buffers, per-Gaussian weight
accumulators).  Pickling them per task is what made the PR 4 process pool
lose to serial — a scene context is tens of megabytes and every shard
paid the copy twice (serialize + deserialize).

This module makes those transfers metadata-only:

* :class:`SharedArrayHandle` — a reference to an ndarray living in a
  ``multiprocessing.shared_memory`` segment.  It pickles as *metadata*
  (segment name, shape, dtype) and reattaches lazily in the receiving
  process; attaching maps the same physical pages, so the bytes are never
  copied.  When shared memory is unavailable (no ``/dev/shm``, sandboxed
  hosts) the handle degrades to carrying the array inline — callers keep
  working, and the fallback is visible in the accounting.
* :class:`ShmRegistry` — owns the segments a process creates: publishes
  read-only arrays, allocates writable output buffers, guarantees
  ``unlink`` on :meth:`ShmRegistry.close` / interpreter exit (``atexit``),
  and keeps leak accounting (``segments_created`` / ``segments_unlinked``
  / :meth:`active_segments`).  Registries are fork-safe: a child process
  inheriting one never unlinks the parent's segments.
* :class:`ShmPackage` — shm-aware pickling of *arbitrary* objects.  A
  custom pickler routes every large ndarray inside the object graph
  (scene contexts, frame preparations, whole renderers) through the
  registry and replaces it with a handle; everything else pickles
  normally.  ``pack`` returns a package whose pickled size is what
  actually crosses the process boundary — the zero-copy claim is
  measurable, not asserted (``ExecutionReport.pickled_bytes``).

Attached arrays are **read-only views**: mutating shared scene state from
a worker would be a cross-process data race, so NumPy's writeable flag is
dropped on attach.  Writable buffers (render outputs) are allocated
explicitly via :meth:`ShmRegistry.allocate` and attached with
``writable=True`` by the worker that owns the disjoint region.

Python < 3.13 registers *attached* segments with the resource tracker as
if the attaching process owned them, which both spams "leaked
shared_memory" warnings and lets a worker's exit unlink segments the
parent still uses; :func:`_attach_segment` suppresses the attach-time
registration so cleanup stays with the creating registry.
"""

from __future__ import annotations

import atexit
import contextlib
import io
import os
import pickle
import secrets
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.chaos import fault as _chaos_fault

try:  # pragma: no cover - import guard for exotic builds without _posixshmem
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Arrays at least this large are routed through shared memory by
#: :meth:`ShmPackage.pack`; smaller ones pickle faster than a segment
#: create + mmap round trip.
DEFAULT_SHARE_THRESHOLD_BYTES = 1 << 15  # 32 KiB

#: Prefix of every segment name this module creates; leak checks (and the
#: fault-injection tests) scan ``/dev/shm`` for it.
SEGMENT_PREFIX = "rg"

#: Tag marking a persistent-id entry of the shm pickler.
_PICKLE_TAG = "repro.shm.array"

#: Tag marking a small array bundled into the package's consolidated
#: segment (the persistent id carries an index into the entry table).
_PACKED_TAG = "repro.shm.packed"

#: Small arrays at least this large join the consolidated segment; below
#: it plain pickling is already as compact as the entry metadata.
DEFAULT_CONSOLIDATE_MIN_BYTES = 64

#: Offsets inside the consolidated segment are aligned to this, so every
#: reconstructed view is itemsize-aligned for any standard dtype.
_CONSOLIDATE_ALIGN = 16


class SharedMemoryUnavailable(RuntimeError):
    """Shared-memory segments cannot be created on this host."""


# ----------------------------------------------------------------------
# Process-wide attachment cache.
# ----------------------------------------------------------------------
# One SharedMemory object per attached segment per process: the mapping
# must stay alive as long as any array view into it does, and re-attaching
# per handle would mmap the same pages repeatedly.  Guarded by a lock —
# thread-pool workers attach concurrently.
_ATTACHMENTS: Dict[str, "_shared_memory.SharedMemory"] = {}
_ATTACH_LOCK = threading.Lock()
_ATTACH_PID = os.getpid()


def _attach_segment(name: str) -> "_shared_memory.SharedMemory":
    """Map an existing segment, once per process, tracker-neutral."""
    global _ATTACH_PID
    if _shared_memory is None:  # pragma: no cover - guarded import
        raise SharedMemoryUnavailable("multiprocessing.shared_memory is unavailable")
    if _chaos_fault("shm.attach_fail") is not None:
        # Simulated attach failure (e.g. the segment's creator is gone or
        # /dev/shm is exhausted); callers fall back to inline payloads.
        raise SharedMemoryUnavailable(f"injected: cannot attach segment {name!r}")
    with _ATTACH_LOCK:
        # A forked child inherits the parent's cache; its SharedMemory
        # objects (fds, mmaps) survive the fork, so inherited entries are
        # usable as-is — only the pid stamp needs refreshing.
        if _ATTACH_PID != os.getpid():
            _ATTACH_PID = os.getpid()
        segment = _ATTACHMENTS.get(name)
        if segment is None:
            # Attaching registers with the resource tracker as if this
            # process owned the segment (fixed in 3.13).  Registering and
            # then unregistering is not atomic across processes — two
            # workers attaching the same segment can interleave as
            # REG/REG/UNREG/UNREG, where the second UNREG hits an empty
            # tracker cache (KeyError noise at exit) — so suppress the
            # registration instead of undoing it.  The creator's create-
            # time registration stands and cleanup stays exactly once
            # with the owning registry.
            with _suppressed_tracker_register():
                segment = _shared_memory.SharedMemory(name=name)
            _ATTACHMENTS[name] = segment
        return segment


@contextlib.contextmanager
def _suppressed_tracker_register():
    """No-op the resource tracker's ``register`` for the enclosed attach.

    Serialized by ``_ATTACH_LOCK``; only this process's view of the module
    is patched, so concurrent attaches in *other* processes are unaffected
    (each suppresses its own registration independently).
    """
    try:  # pragma: no cover - version/platform dependent
        from multiprocessing import resource_tracker
    except Exception:
        yield
        return
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


def _register_with_tracker(name: str) -> None:
    """(Re-)register a segment with the resource tracker (set semantics)."""
    try:  # pragma: no cover - version/platform dependent
        from multiprocessing import resource_tracker

        resource_tracker.register(f"/{name}", "shared_memory")
    except Exception:
        pass


def detach_all() -> int:
    """Drop this process's attachment cache; returns how many were mapped.

    Arrays still viewing the detached segments keep their mapping alive
    through the underlying ``memoryview``; this only releases the cache's
    own references (used by tests and long-lived workers between jobs).
    """
    with _ATTACH_LOCK:
        names = list(_ATTACHMENTS)
        for name in names:
            segment = _ATTACHMENTS.pop(name)
            try:
                segment.close()
            except (BufferError, OSError):  # views still alive — keep mapped
                _ATTACHMENTS[name] = segment
        return len(names)


def shm_available() -> bool:
    """Whether this host can create shared-memory segments at all."""
    global _SHM_AVAILABLE
    if _SHM_AVAILABLE is None:
        if _shared_memory is None:
            _SHM_AVAILABLE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _SHM_AVAILABLE = True
            except Exception:
                _SHM_AVAILABLE = False
    return _SHM_AVAILABLE


_SHM_AVAILABLE: Optional[bool] = None


# ----------------------------------------------------------------------
# Handles.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArrayHandle:
    """A picklable reference to an ndarray in a shared-memory segment.

    The handle is pure metadata — pickling it costs ~100 bytes no matter
    how large the array is.  :meth:`array` reattaches lazily in whatever
    process unpickles it.  ``segment is None`` marks the inline fallback:
    the array rides along pickled (``_inline``), used when the publishing
    host has no working shared memory so callers never have to branch.
    """

    segment: Optional[str]
    shape: Tuple[int, ...]
    dtype: str
    nbytes: int
    _inline: Optional[np.ndarray] = field(default=None, compare=False)

    @property
    def is_shared(self) -> bool:
        return self.segment is not None

    def array(self, writable: bool = False) -> np.ndarray:
        """The referenced array: a zero-copy view of the segment.

        Shared handles return a view of the mapped pages — read-only by
        default; ``writable=True`` is for output buffers whose disjoint
        regions the caller owns.  Inline-fallback handles return the
        carried array (a private copy per unpickle, so writability is
        harmless).

        Lifetime: the view stays valid only while the segment is mapped
        in this process — until the owning registry's :meth:`close` in
        the creating process, or :func:`detach_all` in an attaching one.
        Copy (``view.copy()``) anything that must outlive the registry;
        numpy cannot pin the mapping for you.
        """
        if self.segment is None:
            if self._inline is None:
                raise ValueError("inline handle carries no array")
            return self._inline
        segment = _attach_segment(self.segment)
        view = np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=segment.buf)
        view.flags.writeable = bool(writable)
        return view


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
class ShmRegistry:
    """Owner of the shared-memory segments one process creates.

    Every publish/allocate records the segment for cleanup;
    :meth:`close` (aliased :meth:`unlink_all`) closes and unlinks them
    all and is guaranteed to run at interpreter exit via ``atexit`` for
    registries that still own segments.  A forked child inheriting the
    registry object is a no-op owner: cleanup only acts in the creating
    process, so worker exits can never reap the parent's segments.
    """

    def __init__(self, fallback_inline: bool = True) -> None:
        #: Degrade to inline (pickled) handles when segments cannot be
        #: created; ``False`` raises :class:`SharedMemoryUnavailable`.
        self.fallback_inline = fallback_inline
        self._segments: Dict[str, "_shared_memory.SharedMemory"] = {}
        self._owner_pid = os.getpid()
        self._lock = threading.Lock()
        self._seq = 0
        self.segments_created = 0
        self.segments_unlinked = 0
        self.bytes_published = 0
        self.inline_fallbacks = 0
        self.closed = False
        atexit.register(self._atexit_close)

    # -- creation ------------------------------------------------------
    def _new_segment(self, nbytes: int) -> "_shared_memory.SharedMemory":
        if _shared_memory is None:
            raise SharedMemoryUnavailable("multiprocessing.shared_memory is unavailable")
        if self.closed:
            raise RuntimeError("shm registry is closed")
        with self._lock:
            self._seq += 1
            seq = self._seq
        # Short explicit names (macOS caps POSIX shm names at 31 chars)
        # with a recognisable prefix so leak checks can scan /dev/shm.
        name = f"{SEGMENT_PREFIX}{os.getpid():x}-{seq:x}-{secrets.token_hex(3)}"
        segment = _shared_memory.SharedMemory(name=name, create=True, size=max(1, nbytes))
        with self._lock:
            self._segments[segment.name] = segment
            self.segments_created += 1
            self.bytes_published += nbytes
        return segment

    def publish(self, array: np.ndarray) -> SharedArrayHandle:
        """Copy ``array`` into a new segment and return its handle.

        The one copy of the array's life: every worker that attaches the
        handle afterwards maps the same pages.  Non-contiguous input is
        compacted first; object-dtype arrays cannot be shared and use the
        inline fallback.
        """
        array = np.asarray(array)
        if array.dtype.hasobject or not shm_available():
            return self._inline_handle(array)
        contiguous = np.ascontiguousarray(array)
        try:
            segment = self._new_segment(contiguous.nbytes)
        except (OSError, ValueError, SharedMemoryUnavailable):
            return self._inline_handle(array)
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)
        view[...] = contiguous
        return SharedArrayHandle(
            segment=segment.name,
            shape=tuple(contiguous.shape),
            dtype=contiguous.dtype.str,
            nbytes=int(contiguous.nbytes),
        )

    def allocate(self, shape: Tuple[int, ...], dtype: Any = np.float64) -> SharedArrayHandle:
        """A zero-initialised writable shared buffer (render outputs).

        Unlike :meth:`publish` there is no inline fallback — a writable
        buffer that is not actually shared cannot collect worker output —
        so failure raises :class:`SharedMemoryUnavailable` for the caller
        to degrade on.
        """
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if not shm_available():
            raise SharedMemoryUnavailable("cannot allocate shared output buffers")
        segment = self._new_segment(nbytes)
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        view[...] = 0
        return SharedArrayHandle(
            segment=segment.name,
            shape=tuple(shape),
            dtype=dtype.str,
            nbytes=nbytes,
        )

    def _inline_handle(self, array: np.ndarray) -> SharedArrayHandle:
        if not self.fallback_inline:
            raise SharedMemoryUnavailable(
                "shared memory unavailable and inline fallback disabled"
            )
        self.inline_fallbacks += 1
        return SharedArrayHandle(
            segment=None,
            shape=tuple(array.shape),
            dtype=np.dtype(array.dtype).str,
            nbytes=int(array.nbytes) if not array.dtype.hasobject else 0,
            _inline=array,
        )

    # -- cleanup -------------------------------------------------------
    def active_segments(self) -> List[str]:
        """Names of segments this registry still owns (leak accounting)."""
        with self._lock:
            return sorted(self._segments)

    def unlink_all(self) -> int:
        """Close and unlink every owned segment; returns how many.

        Safe in forked children (does nothing: the parent owns cleanup)
        and safe to call repeatedly.  Workers still mapping an unlinked
        segment keep their view — POSIX frees the pages when the last
        mapping goes, only the name disappears immediately.
        """
        if os.getpid() != self._owner_pid:
            return 0
        with self._lock:
            segments = list(self._segments.items())
            self._segments.clear()
        unlinked = 0
        for name, segment in segments:
            # The creating process may also hold attachments (self-render
            # paths); drop the cached mapping before closing the canonical
            # one so the buffer is actually released.
            with _ATTACH_LOCK:
                cached = _ATTACHMENTS.pop(name, None)
            if cached is not None and cached is not segment:
                try:
                    cached.close()
                except (BufferError, OSError):
                    pass
            try:
                segment.close()
            except (BufferError, OSError):  # pragma: no cover - views alive
                pass
            try:
                # A fork-pool worker that attached this segment shares our
                # resource tracker and unregistered the name on attach;
                # re-registering (set semantics — duplicates are no-ops)
                # keeps the tracker balanced for the unregister inside
                # ``unlink`` regardless of who attached in between.
                _register_with_tracker(name)
                segment.unlink()
                unlinked += 1
            except FileNotFoundError:  # pragma: no cover - already gone
                unlinked += 1
            except OSError:  # pragma: no cover - platform quirk
                pass
        with self._lock:
            self.segments_unlinked += unlinked
        return unlinked

    def close(self) -> None:
        """Unlink everything and refuse further publishes."""
        self.unlink_all()
        self.closed = True
        atexit.unregister(self._atexit_close)

    def _atexit_close(self) -> None:  # pragma: no cover - interpreter exit
        try:
            self.unlink_all()
        except Exception:
            pass

    def __enter__(self) -> "ShmRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting ----------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "segments_created": self.segments_created,
                "segments_unlinked": self.segments_unlinked,
                "segments_active": len(self._segments),
                "bytes_published": self.bytes_published,
                "inline_fallbacks": self.inline_fallbacks,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"ShmRegistry(active={stats['segments_active']}, "
            f"created={stats['segments_created']}, "
            f"bytes={stats['bytes_published']})"
        )


def leaked_segments() -> List[str]:
    """Repro-created segment names currently visible in ``/dev/shm``.

    The lifecycle tests' ground truth: after ``Session.close()`` (or a
    worker death, or an interrupt) this must not contain segments from
    registries that were closed.  Hosts without a ``/dev/shm`` directory
    report nothing (the kernel namespace is not enumerable there).
    """
    root = "/dev/shm"
    try:
        names = os.listdir(root)
    except OSError:
        return []
    return sorted(n for n in names if n.startswith(SEGMENT_PREFIX))


# ----------------------------------------------------------------------
# Whole-object packaging.
# ----------------------------------------------------------------------
class _ShmPickler(pickle.Pickler):
    """Pickler that swaps large ndarrays for shared-memory handles.

    Arrays at or above ``threshold`` get their own segment (zero-copy
    attach on the receiving side).  Arrays between ``consolidate_min``
    and the threshold — the long tail of camera poses, per-tile index
    lists and small lookup tables that used to ride pickled in the
    payload — are *consolidated*: their bytes are staged for one shared
    segment per package and the payload keeps only an index.  The staging
    table lives on the pickler; :meth:`ShmPackage.pack` publishes it
    after the dump.
    """

    def __init__(
        self,
        file,
        registry: ShmRegistry,
        threshold: int,
        consolidate_min: Optional[int] = DEFAULT_CONSOLIDATE_MIN_BYTES,
    ) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._registry = registry
        self._threshold = threshold
        #: ``None`` disables consolidation (no shm on this host).
        self._consolidate_min = consolidate_min
        self.shared_arrays = 0
        self.shared_bytes = 0
        #: Staged small arrays: contiguous copies + their (offset, shape,
        #: dtype) entries; ``_packed_index`` dedupes repeated references
        #: to one object (id-keyed; ``_packed`` also keeps them alive so
        #: ids cannot be recycled mid-dump).
        self._packed: List[np.ndarray] = []
        self._packed_index: Dict[int, int] = {}
        self.packed_entries: List[Tuple[int, Tuple[int, ...], str]] = []
        self.packed_cursor = 0

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, Any]]:
        if not isinstance(obj, np.ndarray) or obj.dtype.hasobject:
            return None
        if obj.nbytes >= self._threshold:
            handle = self._registry.publish(obj)
            if handle.is_shared:
                self.shared_arrays += 1
                self.shared_bytes += handle.nbytes
                return (_PICKLE_TAG, handle)
            # Inline fallback: let normal pickling carry the array so the
            # payload stays self-contained (counted by the registry).
            return None
        if (
            self._consolidate_min is not None
            and obj.nbytes >= self._consolidate_min
        ):
            index = self._packed_index.get(id(obj))
            if index is None:
                contiguous = np.ascontiguousarray(obj)
                offset = self.packed_cursor
                index = len(self.packed_entries)
                self._packed_index[id(obj)] = index
                self._packed.append(contiguous)
                self.packed_entries.append(
                    (offset, tuple(obj.shape), contiguous.dtype.str)
                )
                step = contiguous.nbytes + _CONSOLIDATE_ALIGN - 1
                self.packed_cursor = offset + step - step % _CONSOLIDATE_ALIGN
            return (_PACKED_TAG, index)
        return None

    def consolidated_buffer(self) -> Optional[np.ndarray]:
        """One flat uint8 buffer holding every staged small array."""
        if not self._packed:
            return None
        buffer = np.zeros(self.packed_cursor, dtype=np.uint8)
        for array, (offset, _, _) in zip(self._packed, self.packed_entries):
            flat = array.reshape(-1).view(np.uint8)
            buffer[offset : offset + array.nbytes] = flat
        return buffer


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler resolving shm handles back to zero-copy array views."""

    def __init__(
        self,
        file,
        consolidated: Optional[SharedArrayHandle] = None,
        entries: Tuple[Tuple[int, Tuple[int, ...], str], ...] = (),
    ) -> None:
        super().__init__(file)
        self._consolidated = consolidated
        self._entries = entries
        self._base: Optional[np.ndarray] = None
        #: Views memoised per entry index: duplicate references to one
        #: packed array resolve to one object, matching pickle's memo
        #: semantics for normally-saved objects.
        self._views: Dict[int, np.ndarray] = {}

    def persistent_load(self, pid: Tuple[str, Any]) -> np.ndarray:
        tag, ref = pid
        if tag == _PICKLE_TAG:
            return ref.array(writable=False)
        if tag == _PACKED_TAG:
            return self._packed_view(int(ref))
        raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")

    def _packed_view(self, index: int) -> np.ndarray:
        cached = self._views.get(index)
        if cached is not None:
            return cached
        if self._consolidated is None or index >= len(self._entries):
            raise pickle.UnpicklingError(
                f"payload references consolidated array {index} but the "
                "package carries no matching segment entry"
            )
        if self._base is None:
            self._base = self._consolidated.array(writable=False).reshape(-1)
        offset, shape, dtype_str = self._entries[index]
        dtype = np.dtype(dtype_str)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        view = self._base[offset : offset + nbytes].view(dtype).reshape(shape)
        view.flags.writeable = False
        self._views[index] = view
        return view


@dataclass
class ShmPackage:
    """An object pickled with its large arrays externalised to shm.

    ``payload`` is what actually crosses the process boundary (pickled
    bytes of the object graph minus the shared arrays); ``segments``
    names the segments the payload references, kept alive by the
    publishing registry.  The package itself pickles cheaply, so it can
    ride in any pool submit.

    Large arrays (>= threshold) each get their own segment; the long tail
    of *small* arrays is bundled into one ``consolidated`` segment whose
    layout lives in ``consolidated_entries`` — a scene context's payload
    used to carry ~0.5 MB of pickled small arrays, now replaced by
    index-sized references.  On hosts without shared memory the
    consolidated handle rides inline, so :meth:`unpack` never branches.
    """

    payload: bytes
    segments: Tuple[str, ...] = ()
    shared_arrays: int = 0
    shared_bytes: int = 0
    #: The one segment bundling every sub-threshold array of the package.
    consolidated: Optional[SharedArrayHandle] = None
    #: Per-array (offset, shape, dtype) layout of the consolidated segment.
    consolidated_entries: Tuple[Tuple[int, Tuple[int, ...], str], ...] = ()
    consolidated_arrays: int = 0
    consolidated_bytes: int = 0

    @property
    def pickled_bytes(self) -> int:
        """Bytes that get copied per transfer (the payload, not the arrays)."""
        return len(self.payload)

    @staticmethod
    def pack(
        obj: Any,
        registry: ShmRegistry,
        threshold: int = DEFAULT_SHARE_THRESHOLD_BYTES,
        consolidate_min: Optional[int] = DEFAULT_CONSOLIDATE_MIN_BYTES,
    ) -> "ShmPackage":
        """Package ``obj``, publishing its large arrays into ``registry``.

        ``consolidate_min`` sets the floor for the consolidated-segment
        bundle (``None`` disables it — every sub-threshold array pickles
        into the payload as before).
        """
        if not shm_available():
            # Without segments the consolidated bundle would ride inline
            # next to the payload — all copy, no savings; skip staging.
            consolidate_min = None
        before = set(registry.active_segments())
        buffer = io.BytesIO()
        pickler = _ShmPickler(buffer, registry, threshold, consolidate_min)
        pickler.dump(obj)
        consolidated: Optional[SharedArrayHandle] = None
        entries: Tuple[Tuple[int, Tuple[int, ...], str], ...] = ()
        consolidated_bytes = 0
        bundle = pickler.consolidated_buffer()
        if bundle is not None:
            consolidated = registry.publish(bundle)
            entries = tuple(pickler.packed_entries)
            consolidated_bytes = sum(
                int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
                for _, shape, dtype in entries
            )
        segments = tuple(sorted(set(registry.active_segments()) - before))
        return ShmPackage(
            payload=buffer.getvalue(),
            segments=segments,
            shared_arrays=pickler.shared_arrays,
            shared_bytes=pickler.shared_bytes,
            consolidated=consolidated,
            consolidated_entries=entries,
            consolidated_arrays=len(entries),
            consolidated_bytes=consolidated_bytes,
        )

    def unpack(self) -> Any:
        """Reconstruct the object; shared arrays come back as read-only views."""
        return _ShmUnpickler(
            io.BytesIO(self.payload),
            consolidated=self.consolidated,
            entries=self.consolidated_entries,
        ).load()
