"""Registry of the six scenes evaluated in the paper.

Each :class:`SceneDescriptor` carries two sets of numbers:

* **full-scale statistics** — Gaussian count and image resolution of the
  actual dataset scene (these drive the architecture / traffic models so
  bandwidth and FPS numbers are computed at paper scale);
* **simulation parameters** — a down-scaled Gaussian count and resolution
  used when the algorithms are actually executed in NumPy (rendering a
  3-million-Gaussian scene at 1080p in pure Python is not tractable).  All
  per-Gaussian ratios measured on the simulated scene (filter pass rates,
  tile duplication factors, cross-boundary fractions) transfer to the
  full-scale counts.

The per-algorithm target PSNRs come straight from Table II and are used to
calibrate the perturbation level of the "trained" model (see
``repro.scenes.fitting``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.gaussians.camera import (
    Camera,
    dolly_trajectory,
    orbit_trajectory,
    walkthrough_trajectory,
)
from repro.gaussians.model import GaussianModel
from repro.scenes.synthetic import SceneSpec, generate_scene

#: Algorithms evaluated in Table II.
BASE_ALGORITHMS = ("3dgs", "mini_splatting", "light_gaussian")


@dataclass(frozen=True)
class SceneDescriptor:
    """Static description of one evaluation scene."""

    name: str
    dataset: str
    category: str                       # "synthetic" or "real"
    full_num_gaussians: int             # paper-scale Gaussian count
    full_resolution: Tuple[int, int]    # (width, height) of the dataset images
    sim_num_gaussians: int              # Gaussians actually instantiated
    sim_resolution: Tuple[int, int]     # (width, height) used for NumPy rendering
    extent: float                       # scene bounding-box edge length
    default_voxel_size: float           # paper: 2.0 real-world, 0.4 synthetic
    layout: str                         # generator layout
    target_psnr: Dict[str, float] = field(default_factory=dict)
    orin_fps: float = 0.0               # measured FPS reported in Fig. 3
    seed: int = 0

    @property
    def scale_factor(self) -> float:
        """Ratio full-scale / simulated Gaussian count."""
        return self.full_num_gaussians / self.sim_num_gaussians

    @property
    def full_num_pixels(self) -> int:
        return self.full_resolution[0] * self.full_resolution[1]

    def spec(self, num_gaussians: int = 0, seed: int = -1) -> SceneSpec:
        """Scene-generation spec (optionally overriding size / seed)."""
        return SceneSpec(
            num_gaussians=num_gaussians or self.sim_num_gaussians,
            extent=self.extent,
            layout=self.layout,
            seed=self.seed if seed < 0 else seed,
        )


#: Scene registry.  Full-scale Gaussian counts follow publicly reported
#: checkpoint sizes for the original 3DGS models of these scenes; Fig. 3 FPS
#: values are read off the paper's bar chart.
SCENE_REGISTRY: Dict[str, SceneDescriptor] = {
    "lego": SceneDescriptor(
        name="lego",
        dataset="Synthetic-NeRF",
        category="synthetic",
        full_num_gaussians=340_000,
        full_resolution=(800, 800),
        sim_num_gaussians=2_600,
        sim_resolution=(128, 128),
        extent=2.6,
        default_voxel_size=0.4,
        layout="object",
        target_psnr={"3dgs": 36.11, "mini_splatting": 36.20, "light_gaussian": 35.18},
        orin_fps=8.5,
        seed=11,
    ),
    "palace": SceneDescriptor(
        name="palace",
        dataset="Synthetic-NSVF",
        category="synthetic",
        full_num_gaussians=540_000,
        full_resolution=(800, 800),
        sim_num_gaussians=3_200,
        sim_resolution=(128, 128),
        extent=3.0,
        default_voxel_size=0.4,
        layout="object",
        target_psnr={"3dgs": 38.56, "mini_splatting": 39.00, "light_gaussian": 37.76},
        orin_fps=7.8,
        seed=23,
    ),
    "train": SceneDescriptor(
        name="train",
        dataset="Tanks&Temples",
        category="real",
        full_num_gaussians=1_030_000,
        full_resolution=(980, 545),
        sim_num_gaussians=3_600,
        sim_resolution=(160, 96),
        extent=24.0,
        default_voxel_size=2.0,
        layout="room",
        target_psnr={"3dgs": 22.54, "mini_splatting": 21.49, "light_gaussian": 22.29},
        orin_fps=6.1,
        seed=37,
    ),
    "truck": SceneDescriptor(
        name="truck",
        dataset="Tanks&Temples",
        category="real",
        full_num_gaussians=2_540_000,
        full_resolution=(980, 545),
        sim_num_gaussians=4_200,
        sim_resolution=(160, 96),
        extent=30.0,
        default_voxel_size=2.0,
        layout="room",
        target_psnr={"3dgs": 26.65, "mini_splatting": 25.19, "light_gaussian": 26.02},
        orin_fps=4.5,
        seed=41,
    ),
    "playroom": SceneDescriptor(
        name="playroom",
        dataset="Deep Blending",
        category="real",
        full_num_gaussians=2_330_000,
        full_resolution=(1264, 832),
        sim_num_gaussians=4_000,
        sim_resolution=(160, 104),
        extent=22.0,
        default_voxel_size=2.0,
        layout="room",
        target_psnr={"3dgs": 30.18, "mini_splatting": 30.32, "light_gaussian": 28.58},
        orin_fps=4.9,
        seed=53,
    ),
    "drjohnson": SceneDescriptor(
        name="drjohnson",
        dataset="Deep Blending",
        category="real",
        full_num_gaussians=3_280_000,
        full_resolution=(1264, 832),
        sim_num_gaussians=4_600,
        sim_resolution=(160, 104),
        extent=26.0,
        default_voxel_size=2.0,
        layout="room",
        target_psnr={"3dgs": 29.21, "mini_splatting": 29.23, "light_gaussian": 25.87},
        orin_fps=2.3,
        seed=67,
    ),
}


def scene_names(category: str = "") -> List[str]:
    """Names of registered scenes, optionally filtered by category."""
    if not category:
        return list(SCENE_REGISTRY)
    return [name for name, desc in SCENE_REGISTRY.items() if desc.category == category]


def build_scene(
    name: str, num_gaussians: int = 0, seed: int = -1
) -> GaussianModel:
    """Instantiate the procedural Gaussian cloud of a registered scene.

    Parameters
    ----------
    name:
        Scene name (``lego``, ``palace``, ``train``, ``truck``, ``playroom``,
        ``drjohnson``).
    num_gaussians:
        Optional override of the simulated Gaussian count (0 keeps the
        registry default).
    seed:
        Optional override of the generation seed (negative keeps the default).
    """
    if name not in SCENE_REGISTRY:
        raise KeyError(
            f"unknown scene {name!r}; available: {sorted(SCENE_REGISTRY)}"
        )
    desc = SCENE_REGISTRY[name]
    return generate_scene(desc.spec(num_gaussians=num_gaussians, seed=seed))


def default_eval_camera(
    name: str, resolution_scale: float = 1.0, view_index: int = 0, num_views: int = 8
) -> Camera:
    """A held-out evaluation camera for a registered scene.

    The camera orbits the scene centre at a radius proportional to the scene
    extent (closer for object scenes, farther for room scenes) at the
    simulated resolution.
    """
    desc = SCENE_REGISTRY[name]
    width, height = desc.sim_resolution
    if resolution_scale != 1.0:
        width = max(16, int(round(width * resolution_scale)))
        height = max(16, int(round(height * resolution_scale)))
    radius = desc.extent * (1.15 if desc.layout == "object" else 0.62)
    center = np.zeros(3)
    if desc.layout == "room":
        center = np.array([0.0, 0.0, 0.08 * desc.extent])
    cameras = orbit_trajectory(
        center=center,
        radius=radius,
        num_views=num_views,
        width=width,
        height=height,
        fov_deg=60.0,
        elevation_deg=22.0,
    )
    return cameras[view_index % num_views]


def eval_cameras(
    name: str, num_views: int = 4, resolution_scale: float = 1.0
) -> List[Camera]:
    """A small held-out camera set (multiple orbit views) for a scene."""
    return [
        default_eval_camera(
            name, resolution_scale=resolution_scale, view_index=i, num_views=max(num_views, 4)
        )
        for i in range(num_views)
    ]


# ----------------------------------------------------------------------
# Trajectory workloads (camera paths for streaming-video traffic).
# ----------------------------------------------------------------------
def _scene_view_geometry(desc: SceneDescriptor, resolution_scale: float):
    """Shared view geometry of a scene's workloads: resolution, centre, radius."""
    width, height = desc.sim_resolution
    if resolution_scale != 1.0:
        width = max(16, int(round(width * resolution_scale)))
        height = max(16, int(round(height * resolution_scale)))
    radius = desc.extent * (1.15 if desc.layout == "object" else 0.62)
    center = np.zeros(3)
    if desc.layout == "room":
        center = np.array([0.0, 0.0, 0.08 * desc.extent])
    return width, height, center, radius


def _orbit_workload(
    desc: SceneDescriptor, frames: int, resolution_scale: float
) -> List[Camera]:
    """A smooth 90-degree pan around the scene centre."""
    width, height, center, radius = _scene_view_geometry(desc, resolution_scale)
    return orbit_trajectory(
        center=center,
        radius=radius,
        num_views=frames,
        width=width,
        height=height,
        fov_deg=60.0,
        elevation_deg=22.0,
        arc_deg=90.0,
    )


def _walkthrough_workload(
    desc: SceneDescriptor, frames: int, resolution_scale: float
) -> List[Camera]:
    """A straight walk across the scene, looking along the travel direction."""
    width, height, center, radius = _scene_view_geometry(desc, resolution_scale)
    offset = np.array([0.35 * radius, -0.9 * radius, 0.0])
    travel = np.array([0.0, 1.2 * radius, 0.0])
    return walkthrough_trajectory(
        start=center + offset,
        end=center + offset + travel,
        num_views=frames,
        width=width,
        height=height,
        fov_deg=60.0,
        look_ahead=1.0,
    )


def _dolly_workload(
    desc: SceneDescriptor, frames: int, resolution_scale: float
) -> List[Camera]:
    """A push-in dolly shot towards the scene centre."""
    width, height, center, radius = _scene_view_geometry(desc, resolution_scale)
    return dolly_trajectory(
        center=center,
        start_radius=1.25 * radius,
        end_radius=0.8 * radius,
        num_views=frames,
        width=width,
        height=height,
        fov_deg=60.0,
        elevation_deg=22.0,
        azimuth_deg=30.0,
    )


#: Named camera-path workloads available for every registered scene.  Each
#: generator maps ``(descriptor, frames, resolution_scale)`` to a camera
#: list; the trajectory API (:class:`repro.api.spec.TrajectorySpec`, the
#: service ``trajectory`` request kind) resolves path names against this
#: registry.
TRAJECTORY_REGISTRY: Dict[str, object] = {
    "orbit": _orbit_workload,
    "walkthrough": _walkthrough_workload,
    "dolly": _dolly_workload,
}


def trajectory_names() -> List[str]:
    """Names of the registered camera-path workloads."""
    return list(TRAJECTORY_REGISTRY)


def trajectory_cameras(
    scene: str, path: str, frames: int, resolution_scale: float = 1.0
) -> List[Camera]:
    """The camera list of a named trajectory workload on a registered scene."""
    if scene not in SCENE_REGISTRY:
        raise KeyError(f"unknown scene {scene!r}; available: {sorted(SCENE_REGISTRY)}")
    if path not in TRAJECTORY_REGISTRY:
        raise KeyError(
            f"unknown trajectory {path!r}; available: {sorted(TRAJECTORY_REGISTRY)}"
        )
    if frames < 1:
        raise ValueError(f"frames must be >= 1, got {frames}")
    generator = TRAJECTORY_REGISTRY[path]
    return generator(SCENE_REGISTRY[scene], frames, resolution_scale)
