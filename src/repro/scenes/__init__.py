"""Procedural scenes standing in for the paper's evaluation datasets.

The paper evaluates six scenes from four datasets (Synthetic-NSVF,
Synthetic-NeRF, Tanks&Temples, Deep Blending).  The trained Gaussian
checkpoints of those scenes are not redistributable and training them
requires the CUDA 3DGS stack, so this package synthesises Gaussian clouds
procedurally with per-scene statistics (Gaussian count at full scale, scene
extent, synthetic vs. real-world layout) matched to the published
workloads.  See DESIGN.md ("What we could not use and what we substituted").
"""

from repro.scenes.synthetic import (
    SceneSpec,
    generate_object_scene,
    generate_room_scene,
    generate_scene,
)
from repro.scenes.registry import (
    SCENE_REGISTRY,
    SceneDescriptor,
    build_scene,
    default_eval_camera,
    scene_names,
)
from repro.scenes.fitting import FittedScene, fit_trained_model

__all__ = [
    "SceneSpec",
    "generate_object_scene",
    "generate_room_scene",
    "generate_scene",
    "SCENE_REGISTRY",
    "SceneDescriptor",
    "build_scene",
    "default_eval_camera",
    "scene_names",
    "FittedScene",
    "fit_trained_model",
]
