"""Procedural Gaussian-cloud generators.

Two families of layouts mirror the two families of scenes in the paper's
evaluation:

* *object* scenes (Lego, Palace) — a compact, structured object centred at
  the origin with a modest extent (voxel size 0.4 in the paper);
* *room / outdoor* scenes (Train, Truck, Playroom, Drjohnson) — a large
  extent with a ground plane, several object clusters and a sparse
  background shell (voxel size 2 in the paper).

The generators only use a seeded :class:`numpy.random.Generator`, so every
scene is fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gaussians.model import GaussianModel, SH_REST_COEFFS
from repro.gaussians.sh import rgb_to_sh_dc

#: Colour palettes (RGB in [0, 1]) used to give each cluster a coherent hue.
_OBJECT_PALETTE = np.array(
    [
        [0.85, 0.70, 0.20],
        [0.20, 0.45, 0.80],
        [0.75, 0.25, 0.25],
        [0.25, 0.70, 0.35],
        [0.80, 0.80, 0.85],
        [0.55, 0.35, 0.75],
        [0.95, 0.55, 0.15],
        [0.35, 0.75, 0.75],
    ]
)

_ROOM_PALETTE = np.array(
    [
        [0.55, 0.50, 0.45],
        [0.35, 0.40, 0.30],
        [0.65, 0.60, 0.55],
        [0.45, 0.35, 0.30],
        [0.30, 0.35, 0.45],
        [0.70, 0.65, 0.50],
        [0.50, 0.55, 0.60],
        [0.25, 0.30, 0.25],
    ]
)


@dataclass(frozen=True)
class SceneSpec:
    """Parameters controlling procedural scene generation."""

    num_gaussians: int
    extent: float
    layout: str  # "object" or "room"
    num_clusters: int = 24
    scale_fraction: float = 0.01  # mean Gaussian scale as a fraction of extent
    opacity_mean: float = 0.7
    sh_rest_std: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_gaussians <= 0:
            raise ValueError("num_gaussians must be positive")
        if self.extent <= 0:
            raise ValueError("extent must be positive")
        if self.layout not in ("object", "room"):
            raise ValueError(f"unknown layout {self.layout!r}")


def _random_quaternions(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniformly distributed unit quaternions (Shoemake's method)."""
    u1, u2, u3 = rng.random(n), rng.random(n), rng.random(n)
    q = np.stack(
        [
            np.sqrt(1 - u1) * np.sin(2 * np.pi * u2),
            np.sqrt(1 - u1) * np.cos(2 * np.pi * u2),
            np.sqrt(u1) * np.sin(2 * np.pi * u3),
            np.sqrt(u1) * np.cos(2 * np.pi * u3),
        ],
        axis=1,
    )
    return q


def _cluster_colours(
    rng: np.random.Generator, assignments: np.ndarray, palette: np.ndarray
) -> np.ndarray:
    """Per-Gaussian base colours: the cluster's palette colour plus jitter."""
    base = palette[assignments % len(palette)]
    jitter = rng.normal(0.0, 0.06, size=base.shape)
    return np.clip(base + jitter, 0.02, 0.98)


def _finalize(
    rng: np.random.Generator,
    positions: np.ndarray,
    assignments: np.ndarray,
    spec: SceneSpec,
    palette: np.ndarray,
    scale_multipliers: Optional[np.ndarray] = None,
) -> GaussianModel:
    """Assemble a :class:`GaussianModel` from sampled positions."""
    n = len(positions)
    mean_scale = spec.scale_fraction * spec.extent
    scales = rng.lognormal(np.log(mean_scale), 0.35, size=(n, 3))
    # Mild anisotropy: stretch one random axis.
    stretch_axis = rng.integers(0, 3, size=n)
    stretch = rng.uniform(1.2, 2.5, size=n)
    scales[np.arange(n), stretch_axis] *= stretch
    if scale_multipliers is not None:
        scales *= scale_multipliers[:, None]
    rotations = _random_quaternions(rng, n)
    opacities = np.clip(
        rng.beta(4.0, 4.0 * (1.0 - spec.opacity_mean) / spec.opacity_mean, size=n),
        0.05,
        0.99,
    )
    rgb = _cluster_colours(rng, assignments, palette)
    sh_dc = rgb_to_sh_dc(rgb)
    sh_rest = rng.normal(0.0, spec.sh_rest_std, size=(n, SH_REST_COEFFS, 3))
    return GaussianModel(
        positions=positions,
        scales=scales,
        rotations=rotations,
        opacities=opacities,
        sh_dc=sh_dc,
        sh_rest=sh_rest,
    )


def generate_object_scene(spec: SceneSpec) -> GaussianModel:
    """A compact object-style scene (Synthetic-NeRF / Synthetic-NSVF stand-in).

    Gaussians are arranged in dense clusters on the surface of a structured
    object (stacked boxes plus a base plate) so the cloud has the strongly
    non-uniform spatial density of a trained synthetic-scene checkpoint.
    """
    rng = np.random.default_rng(spec.seed)
    half = spec.extent / 2.0
    n = spec.num_gaussians

    cluster_centres = rng.uniform(-0.7 * half, 0.7 * half, size=(spec.num_clusters, 3))
    cluster_centres[:, 2] = np.abs(cluster_centres[:, 2]) * 0.8  # above the base
    cluster_sizes = rng.uniform(0.08, 0.25, size=spec.num_clusters) * half

    # 80 % of the Gaussians form the object clusters, 20 % form a base plate.
    n_clustered = int(0.8 * n)
    n_base = n - n_clustered
    assignments = rng.integers(0, spec.num_clusters, size=n_clustered)
    offsets = rng.normal(0.0, 1.0, size=(n_clustered, 3)) * cluster_sizes[assignments][:, None]
    clustered = cluster_centres[assignments] + offsets

    base_xy = rng.uniform(-half, half, size=(n_base, 2))
    base_z = rng.normal(-0.55 * half, 0.02 * half, size=(n_base, 1))
    base = np.concatenate([base_xy, base_z], axis=1)
    base_assign = np.full(n_base, spec.num_clusters, dtype=np.int64)

    positions = np.concatenate([clustered, base])
    positions = np.clip(positions, -half, half)
    assignments = np.concatenate([assignments, base_assign])
    return _finalize(rng, positions, assignments, spec, _OBJECT_PALETTE)


def generate_room_scene(spec: SceneSpec) -> GaussianModel:
    """A large real-world style scene (Tanks&Temples / Deep Blending stand-in).

    The layout combines a ground plane, a central subject made of several
    clusters, surrounding furniture/structure clusters and a sparse distant
    background shell — approximating the density profile of an unbounded
    real-world reconstruction.
    """
    rng = np.random.default_rng(spec.seed)
    half = spec.extent / 2.0
    n = spec.num_gaussians

    n_ground = int(0.25 * n)
    n_subject = int(0.35 * n)
    n_clutter = int(0.25 * n)
    n_shell = n - n_ground - n_subject - n_clutter

    # Ground plane.
    ground_xy = rng.uniform(-half, half, size=(n_ground, 2))
    ground_z = rng.normal(0.0, 0.01 * half, size=(n_ground, 1))
    ground = np.concatenate([ground_xy, ground_z], axis=1)
    ground_assign = np.zeros(n_ground, dtype=np.int64)

    # Central subject (e.g. the train / truck), elongated along x.
    subject_centres = rng.uniform(-0.25 * half, 0.25 * half, size=(8, 3))
    subject_centres[:, 0] *= 2.0
    subject_centres[:, 2] = rng.uniform(0.03, 0.25, size=8) * half
    subj_assign = rng.integers(0, 8, size=n_subject)
    subj_sizes = rng.uniform(0.04, 0.12, size=8) * half
    subject = subject_centres[subj_assign] + rng.normal(
        0.0, 1.0, size=(n_subject, 3)
    ) * subj_sizes[subj_assign][:, None]
    subject[:, 2] = np.abs(subject[:, 2])

    # Clutter clusters around the subject.
    clutter_centres = rng.uniform(-0.8 * half, 0.8 * half, size=(spec.num_clusters, 3))
    clutter_centres[:, 2] = rng.uniform(0.0, 0.3, size=spec.num_clusters) * half
    clut_assign = rng.integers(0, spec.num_clusters, size=n_clutter)
    clut_sizes = rng.uniform(0.05, 0.2, size=spec.num_clusters) * half
    clutter = clutter_centres[clut_assign] + rng.normal(
        0.0, 1.0, size=(n_clutter, 3)
    ) * clut_sizes[clut_assign][:, None]

    # Sparse background shell (walls / far geometry), larger Gaussians.
    shell_dirs = rng.normal(0.0, 1.0, size=(n_shell, 3))
    shell_dirs /= np.linalg.norm(shell_dirs, axis=1, keepdims=True)
    shell_dirs[:, 2] = np.abs(shell_dirs[:, 2]) * 0.6
    shell_radius = rng.uniform(0.85, 1.0, size=(n_shell, 1)) * half
    shell = shell_dirs * shell_radius
    shell_assign = np.full(n_shell, 1, dtype=np.int64)

    positions = np.concatenate([ground, subject, clutter, shell])
    positions = np.clip(positions, -half, half)
    assignments = np.concatenate(
        [ground_assign, subj_assign + 2, clut_assign + 10, shell_assign]
    )
    scale_multipliers = np.concatenate(
        [
            np.full(n_ground, 1.5),
            np.full(n_subject, 1.0),
            np.full(n_clutter, 1.2),
            np.full(n_shell, 3.0),
        ]
    )
    return _finalize(
        rng, positions, assignments, spec, _ROOM_PALETTE, scale_multipliers
    )


def generate_scene(spec: SceneSpec) -> GaussianModel:
    """Dispatch to the generator matching ``spec.layout``."""
    if spec.layout == "object":
        return generate_object_scene(spec)
    return generate_room_scene(spec)
