"""Calibrated "trained model" construction.

The paper evaluates trained 3DGS checkpoints against ground-truth
photographs.  We do not have either, so the quality experiments are built
from two models:

* the **reference model** — the procedural Gaussian cloud, whose renders
  serve as the ground-truth images;
* the **trained model** — a perturbed copy of the reference whose
  tile-centric render reaches a target PSNR against the ground truth.  The
  perturbation level is calibrated so each (scene, base algorithm) pair
  lands at the PSNR the paper reports in Table II.

The streaming pipeline is then evaluated on the *same* trained model, so
the quantity Table II actually compares — "Ours" versus the original
pipeline on identical parameters — is preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.metrics import psnr
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import TileRasterizer


@dataclass
class FittedScene:
    """A reference model, its calibrated trained model and ground-truth image."""

    reference: GaussianModel
    trained: GaussianModel
    ground_truth: np.ndarray
    camera: Camera
    achieved_psnr: float
    target_psnr: float
    noise_scale: float


def perturb_model(
    model: GaussianModel, noise_scale: float, seed: int = 0
) -> GaussianModel:
    """A perturbed copy of ``model`` emulating imperfect training convergence.

    ``noise_scale`` of 0 returns an exact copy; larger values add jitter to
    colour, opacity, scale and (slightly) position, which lowers the render
    PSNR monotonically.
    """
    if noise_scale < 0:
        raise ValueError("noise_scale must be non-negative")
    rng = np.random.default_rng(seed)
    out = model.copy()
    if noise_scale == 0.0:
        return out
    n = len(out)
    out.sh_dc = (out.sh_dc + rng.normal(0.0, noise_scale, size=(n, 3))).astype(
        np.float32
    )
    out.sh_rest = (
        out.sh_rest + rng.normal(0.0, 0.3 * noise_scale, size=out.sh_rest.shape)
    ).astype(np.float32)
    out.opacities = np.clip(
        out.opacities + rng.normal(0.0, 0.3 * noise_scale, size=n), 0.02, 0.99
    ).astype(np.float32)
    out.scales = np.clip(
        out.scales * np.exp(rng.normal(0.0, 0.2 * noise_scale, size=(n, 3))),
        1e-5,
        None,
    ).astype(np.float32)
    position_jitter = 0.1 * noise_scale * out.scales.mean()
    out.positions = (
        out.positions + rng.normal(0.0, position_jitter, size=(n, 3))
    ).astype(np.float32)
    return out


def fit_trained_model(
    reference: GaussianModel,
    camera: Camera,
    target_psnr: float,
    rasterizer: Optional[TileRasterizer] = None,
    initial_noise: float = 0.05,
    max_iterations: int = 6,
    tolerance_db: float = 0.35,
    seed: int = 0,
) -> FittedScene:
    """Calibrate a perturbed model whose render PSNR matches ``target_psnr``.

    A secant-style search on the noise scale: PSNR decreases monotonically
    with noise, and MSE is approximately quadratic in the noise scale, so
    each update rescales the noise by ``10**((measured - target) / 20)``.

    Parameters
    ----------
    reference:
        The procedural ground-truth model.
    camera:
        The evaluation camera used for calibration.
    target_psnr:
        Desired tile-centric PSNR (dB) of the trained model's render against
        the reference render.
    rasterizer:
        Renderer to use (a default black-background rasterizer otherwise).
    initial_noise:
        Starting noise scale.
    max_iterations:
        Maximum number of calibration renders.
    tolerance_db:
        Stop once the achieved PSNR is within this many dB of the target.
    seed:
        Seed controlling the perturbation noise.
    """
    if rasterizer is None:
        rasterizer = TileRasterizer()
    ground_truth = rasterizer.render(reference, camera).image

    noise = float(initial_noise)
    best: Optional[FittedScene] = None
    for _ in range(max_iterations):
        trained = perturb_model(reference, noise, seed=seed)
        rendered = rasterizer.render(trained, camera).image
        achieved = psnr(ground_truth, rendered)
        candidate = FittedScene(
            reference=reference,
            trained=trained,
            ground_truth=ground_truth,
            camera=camera,
            achieved_psnr=achieved,
            target_psnr=target_psnr,
            noise_scale=noise,
        )
        if best is None or abs(achieved - target_psnr) < abs(
            best.achieved_psnr - target_psnr
        ):
            best = candidate
        if abs(achieved - target_psnr) <= tolerance_db:
            break
        if not np.isfinite(achieved):
            # Zero error (identical render): increase noise and retry.
            noise = max(noise, 1e-3) * 4.0
            continue
        # MSE ~ noise^2  =>  PSNR ~ -20 log10(noise) + const.
        noise = noise * 10.0 ** ((achieved - target_psnr) / 20.0)
        noise = float(np.clip(noise, 1e-5, 3.0))
    assert best is not None
    return best
