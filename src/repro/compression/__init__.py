"""Vector quantization of the "second half" Gaussian features (Sec. III-C).

The customized DRAM data layout keeps the coarse-filter parameters
(position + maximum scale) uncompressed and compresses everything else into
per-feature-group codebooks: one codebook each for scale, rotation and DC
colour (4096 entries) and one for the higher-order SH coefficients
(512 entries).  Only the codebook *indices* are stored in DRAM; the
codebooks themselves live in the accelerator's SRAM and are used for
on-chip decoding.
"""

from repro.compression.kmeans import KMeansResult, kmeans
from repro.compression.codebook import Codebook, CodebookSpec
from repro.compression.vq import (
    DEFAULT_VQ_SPECS,
    QuantizedGaussians,
    VectorQuantizer,
)
from repro.compression.quantization_aware import (
    QATResult,
    quantization_aware_finetune,
)

__all__ = [
    "KMeansResult",
    "kmeans",
    "Codebook",
    "CodebookSpec",
    "DEFAULT_VQ_SPECS",
    "QuantizedGaussians",
    "VectorQuantizer",
    "QATResult",
    "quantization_aware_finetune",
]
