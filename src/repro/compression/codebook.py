"""Codebooks for one Gaussian feature group.

Each feature group (scale, rotation, DC colour, SH rest) gets its own
codebook so quantization precision is preserved per group, exactly as the
paper's data layout prescribes ("we encode different parameters into
separate codebooks").  A codebook knows its index bit-width and its on-chip
storage footprint, which the SRAM sizing and traffic models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.kmeans import kmeans


@dataclass(frozen=True)
class CodebookSpec:
    """Static description of one feature-group codebook."""

    name: str
    num_entries: int
    vector_dim: int

    @property
    def index_bits(self) -> int:
        """Bits per stored index (ceil(log2(entries)))."""
        return max(1, int(np.ceil(np.log2(self.num_entries))))

    @property
    def index_bytes(self) -> float:
        """Bytes per stored index (fractional; packing is byte-exact per Gaussian)."""
        return self.index_bits / 8.0

    @property
    def storage_bytes(self) -> int:
        """On-chip bytes needed to hold the codebook (fp16 entries)."""
        return self.num_entries * self.vector_dim * 2


class Codebook:
    """A trained codebook: centroids plus encode/decode."""

    def __init__(self, spec: CodebookSpec, centroids: np.ndarray) -> None:
        centroids = np.asarray(centroids, dtype=np.float64)
        if centroids.shape != (spec.num_entries, spec.vector_dim):
            raise ValueError(
                f"centroids shape {centroids.shape} does not match spec "
                f"({spec.num_entries}, {spec.vector_dim})"
            )
        self.spec = spec
        self.centroids = centroids

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        spec: CodebookSpec,
        vectors: np.ndarray,
        max_iterations: int = 20,
        seed: int = 0,
    ) -> "Codebook":
        """Train a codebook on ``(n, vector_dim)`` feature vectors."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != spec.vector_dim:
            raise ValueError(
                f"expected vectors of shape (n, {spec.vector_dim}), got {vectors.shape}"
            )
        result = kmeans(
            vectors, spec.num_entries, max_iterations=max_iterations, seed=seed
        )
        return cls(spec, result.centroids)

    # ------------------------------------------------------------------
    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Closest-centroid indices for ``(n, vector_dim)`` vectors."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self.spec.vector_dim:
            raise ValueError(
                f"expected vectors of shape (n, {self.spec.vector_dim}), "
                f"got {vectors.shape}"
            )
        cent_sq = np.sum(self.centroids * self.centroids, axis=1)
        indices = np.empty(len(vectors), dtype=np.int64)
        chunk = 8192
        for start in range(0, len(vectors), chunk):
            block = vectors[start : start + chunk]
            d2 = (
                np.sum(block * block, axis=1)[:, None]
                - 2.0 * block @ self.centroids.T
                + cent_sq[None, :]
            )
            indices[start : start + chunk] = np.argmin(d2, axis=1)
        return indices

    def decode(self, indices: np.ndarray) -> np.ndarray:
        """Centroid vectors for the given indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.spec.num_entries):
            raise ValueError("codebook index out of range")
        return self.centroids[indices]

    def quantization_error(self, vectors: np.ndarray) -> float:
        """Mean squared quantization error over ``vectors``."""
        indices = self.encode(vectors)
        reconstructed = self.decode(indices)
        return float(np.mean((np.asarray(vectors, dtype=np.float64) - reconstructed) ** 2))
