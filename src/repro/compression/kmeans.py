"""A small k-means implementation (k-means++ init, Lloyd iterations).

Used to build the vector-quantization codebooks.  The implementation is
chunked so it stays memory-friendly when the number of vectors is large,
and it guarantees that the returned codebook has exactly ``k`` rows even
when there are fewer than ``k`` distinct inputs (duplicated centroids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Result of a k-means run."""

    centroids: np.ndarray    # (k, d)
    assignments: np.ndarray  # (n,) index of the closest centroid per input
    inertia: float           # sum of squared distances to assigned centroids
    iterations: int


def _chunked_closest(
    vectors: np.ndarray, centroids: np.ndarray, chunk: int = 8192
) -> tuple:
    """Closest centroid index and squared distance per vector, chunked."""
    n = len(vectors)
    assignments = np.empty(n, dtype=np.int64)
    distances = np.empty(n, dtype=np.float64)
    cent_sq = np.sum(centroids * centroids, axis=1)
    for start in range(0, n, chunk):
        block = vectors[start : start + chunk]
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; ||x||^2 constant per row.
        cross = block @ centroids.T
        d2 = np.sum(block * block, axis=1)[:, None] - 2.0 * cross + cent_sq[None, :]
        idx = np.argmin(d2, axis=1)
        assignments[start : start + chunk] = idx
        distances[start : start + chunk] = np.clip(
            d2[np.arange(len(block)), idx], 0.0, None
        )
    return assignments, distances


def _kmeans_plus_plus_init(
    vectors: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding."""
    n = len(vectors)
    centroids = np.empty((k, vectors.shape[1]), dtype=np.float64)
    first = rng.integers(0, n)
    centroids[0] = vectors[first]
    closest_d2 = np.sum((vectors - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_d2.sum()
        if total <= 1e-18:
            # All remaining vectors identical to chosen centroids: duplicate.
            centroids[i:] = centroids[i - 1]
            break
        probs = closest_d2 / total
        choice = rng.choice(n, p=probs)
        centroids[i] = vectors[choice]
        d2_new = np.sum((vectors - centroids[i]) ** 2, axis=1)
        closest_d2 = np.minimum(closest_d2, d2_new)
    return centroids


def kmeans(
    vectors: np.ndarray,
    k: int,
    max_iterations: int = 25,
    tolerance: float = 1e-6,
    seed: int = 0,
    sample_limit: int = 50_000,
) -> KMeansResult:
    """Cluster ``vectors`` into ``k`` centroids.

    Parameters
    ----------
    vectors:
        ``(n, d)`` input vectors.
    k:
        Codebook size.  If ``k >= n`` the centroids are the (padded) inputs.
    max_iterations:
        Lloyd iteration cap.
    tolerance:
        Relative inertia improvement below which iteration stops.
    seed:
        RNG seed (k-means++ and subsampling).
    sample_limit:
        If ``n`` exceeds this, centroids are fitted on a random subsample and
        only the final assignment uses all vectors (standard practice for
        codebook training).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
    n, _ = vectors.shape
    if n == 0:
        raise ValueError("cannot run k-means on zero vectors")
    if k <= 0:
        raise ValueError("k must be positive")
    rng = np.random.default_rng(seed)

    if k >= n:
        centroids = np.concatenate(
            [vectors, np.repeat(vectors[-1:], k - n, axis=0)], axis=0
        )
        assignments = np.arange(n, dtype=np.int64)
        return KMeansResult(
            centroids=centroids, assignments=assignments, inertia=0.0, iterations=0
        )

    if n > sample_limit:
        fit_vectors = vectors[rng.choice(n, size=sample_limit, replace=False)]
    else:
        fit_vectors = vectors

    centroids = _kmeans_plus_plus_init(fit_vectors, k, rng)
    previous_inertia = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        assignments, distances = _chunked_closest(fit_vectors, centroids)
        inertia = float(distances.sum())
        # Update step.
        for ci in range(k):
            members = fit_vectors[assignments == ci]
            if len(members) > 0:
                centroids[ci] = members.mean(axis=0)
            else:
                # Re-seed empty clusters at the farthest point.
                centroids[ci] = fit_vectors[np.argmax(distances)]
        if previous_inertia - inertia <= tolerance * max(previous_inertia, 1e-12):
            previous_inertia = inertia
            break
        previous_inertia = inertia

    assignments, distances = _chunked_closest(vectors, centroids)
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=float(distances.sum()),
        iterations=iterations,
    )
