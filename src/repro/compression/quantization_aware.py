"""Quantization-aware fine-tuning (Sec. III-C / Sec. V-A).

After the codebooks are trained, the paper runs 5 000 iterations of
quantization-aware fine-tuning so the quantised indices "capture feature
variations without loss of detail".  Without autograd we realise the same
mechanism as an alternating optimisation:

1. *Codebook refinement* — re-fit each codebook centroid to the mean of its
   assigned feature vectors (one Lloyd step on the live parameters).
2. *Parameter nudging* — move each Gaussian's second-half features a small
   step towards their assigned centroid, exactly what straight-through
   gradient training converges to when the rendering loss is locally flat.

Both steps monotonically reduce the quantization error, and the rendered
PSNR of the de-quantised model recovers accordingly (the behaviour the paper
relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.compression.vq import VectorQuantizer
from repro.gaussians.camera import Camera
from repro.gaussians.metrics import psnr
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import TileRasterizer


@dataclass
class QATResult:
    """Outcome of quantization-aware fine-tuning."""

    model: GaussianModel                 # fine-tuned (un-quantised) model
    quantizer: VectorQuantizer           # refined codebooks
    quantized_model: GaussianModel       # decode(encode(model)) after QAT
    psnr_before: float
    psnr_after: float
    quantization_error_history: List[float] = field(default_factory=list)
    psnr_history: List[float] = field(default_factory=list)


def _nudge_towards(values: np.ndarray, targets: np.ndarray, step: float) -> np.ndarray:
    """Move ``values`` a fraction ``step`` of the way towards ``targets``."""
    return values + step * (targets - values)


def quantization_aware_finetune(
    model: GaussianModel,
    quantizer: VectorQuantizer,
    iterations: int = 5,
    nudge_step: float = 0.3,
    camera: Optional[Camera] = None,
    ground_truth: Optional[np.ndarray] = None,
    rasterizer: Optional[TileRasterizer] = None,
    track_psnr_every: int = 0,
) -> QATResult:
    """Alternating codebook/parameter refinement.

    Parameters
    ----------
    model:
        The trained (optionally boundary-fine-tuned) model.
    quantizer:
        A fitted :class:`VectorQuantizer` (its codebooks are refined in place
        on a copy).
    iterations:
        Number of alternating refinement rounds (each round stands in for a
        block of the paper's 5 000 gradient iterations).
    nudge_step:
        Fraction of the distance to the assigned centroid the parameters move
        per round.
    camera, ground_truth, rasterizer:
        If provided, rendered PSNR of the de-quantised model is tracked.
    track_psnr_every:
        Track PSNR every this many rounds (0 = only before/after).
    """
    if not quantizer.is_fitted:
        raise RuntimeError("quantizer must be fitted before QAT")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    work = model.copy()
    rasterizer = rasterizer or TileRasterizer()

    def _render_psnr(m: GaussianModel) -> float:
        if camera is None or ground_truth is None:
            return float("nan")
        image = rasterizer.render(quantizer.roundtrip(m), camera).image
        return psnr(ground_truth, image)

    psnr_before = _render_psnr(work)
    error_history: List[float] = []
    psnr_history: List[float] = []

    for round_index in range(iterations):
        quantized = quantizer.encode(work)
        decoded = quantizer.decode(quantized, work)

        # Step 1: refine codebooks on the current parameters (one Lloyd step).
        groups = {
            "scale": work.scales.astype(np.float64),
            "rotation": work.rotations.astype(np.float64),
            "dc": work.sh_dc.astype(np.float64),
            "sh": work.sh_rest.reshape(len(work), -1).astype(np.float64),
        }
        for name, codebook in quantizer.codebooks.items():
            assignments = quantized.indices[name]
            vectors = groups[name]
            for centroid_index in np.unique(assignments):
                members = vectors[assignments == centroid_index]
                if len(members) > 0:
                    codebook.centroids[centroid_index] = members.mean(axis=0)

        # Step 2: nudge parameters towards their (refined) centroids.
        work.scales = np.clip(
            _nudge_towards(work.scales.astype(np.float64), decoded.scales, nudge_step),
            1e-6,
            None,
        ).astype(np.float32)
        work.rotations = _nudge_towards(
            work.rotations.astype(np.float64), decoded.rotations, nudge_step
        ).astype(np.float32)
        work.normalize_rotations()
        work.sh_dc = _nudge_towards(
            work.sh_dc.astype(np.float64), decoded.sh_dc, nudge_step
        ).astype(np.float32)
        work.sh_rest = _nudge_towards(
            work.sh_rest.astype(np.float64), decoded.sh_rest, nudge_step
        ).astype(np.float32)

        # Track quantization error after this round.
        round_error = 0.0
        quantized_after = quantizer.encode(work)
        decoded_after = quantizer.decode(quantized_after, work)
        round_error += float(np.mean((decoded_after.scales - work.scales) ** 2))
        round_error += float(np.mean((decoded_after.rotations - work.rotations) ** 2))
        round_error += float(np.mean((decoded_after.sh_dc - work.sh_dc) ** 2))
        round_error += float(np.mean((decoded_after.sh_rest - work.sh_rest) ** 2))
        error_history.append(round_error)
        if track_psnr_every and (round_index + 1) % track_psnr_every == 0:
            psnr_history.append(_render_psnr(work))

    psnr_after = _render_psnr(work)
    return QATResult(
        model=work,
        quantizer=quantizer,
        quantized_model=quantizer.roundtrip(work),
        psnr_before=psnr_before,
        psnr_after=psnr_after,
        quantization_error_history=error_history,
        psnr_history=psnr_history,
    )
