"""Vector-quantised storage of the fine-filter ("second half") features.

Per the paper's software setup (Sec. V-A), the default configuration uses a
4096-entry codebook each for scale, rotation and DC colour and a 512-entry
codebook for the higher-order SH coefficients.  Opacity (a single scalar) is
kept uncompressed.  The quantizer reports the per-Gaussian byte footprint of
both the raw and the compressed second half, which the data-layout and
traffic models use to quantify the DRAM-traffic reduction (the paper reports
92.3 % for the voxel-streaming reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.compression.codebook import Codebook, CodebookSpec
from repro.gaussians.model import FINE_PARAMS_PER_GAUSSIAN, GaussianModel

#: Default codebook configuration from Sec. V-A.
DEFAULT_VQ_SPECS: Tuple[CodebookSpec, ...] = (
    CodebookSpec(name="scale", num_entries=4096, vector_dim=3),
    CodebookSpec(name="rotation", num_entries=4096, vector_dim=4),
    CodebookSpec(name="dc", num_entries=4096, vector_dim=3),
    CodebookSpec(name="sh", num_entries=512, vector_dim=45),
)

#: Bytes of the uncompressed second half (55 float32 parameters).
RAW_SECOND_HALF_BYTES = FINE_PARAMS_PER_GAUSSIAN * 4

#: Bytes used for the uncompressed opacity scalar kept alongside the indices.
OPACITY_BYTES = 4


def _feature_groups(model: GaussianModel) -> Dict[str, np.ndarray]:
    """Split a model's second-half features into the quantized groups."""
    return {
        "scale": model.scales.astype(np.float64),
        "rotation": model.rotations.astype(np.float64),
        "dc": model.sh_dc.astype(np.float64),
        "sh": model.sh_rest.reshape(len(model), -1).astype(np.float64),
    }


@dataclass
class QuantizedGaussians:
    """Codebook indices (and raw opacity) for a model's second half."""

    indices: Dict[str, np.ndarray]
    opacities: np.ndarray
    num_gaussians: int

    def subset(self, idx: np.ndarray) -> "QuantizedGaussians":
        """Indices restricted to a subset of Gaussians."""
        idx = np.asarray(idx)
        return QuantizedGaussians(
            indices={k: v[idx] for k, v in self.indices.items()},
            opacities=self.opacities[idx],
            num_gaussians=len(idx),
        )


@dataclass
class VectorQuantizer:
    """Trains per-group codebooks and encodes / decodes Gaussian models."""

    specs: Tuple[CodebookSpec, ...] = DEFAULT_VQ_SPECS
    kmeans_iterations: int = 12
    seed: int = 0
    codebooks: Dict[str, Codebook] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def fit(self, model: GaussianModel) -> "VectorQuantizer":
        """Train all codebooks on ``model``'s second-half features."""
        groups = _feature_groups(model)
        for spec in self.specs:
            if spec.name not in groups:
                raise KeyError(f"no feature group named {spec.name!r}")
            vectors = groups[spec.name]
            if vectors.shape[1] != spec.vector_dim:
                raise ValueError(
                    f"group {spec.name!r} has dim {vectors.shape[1]}, "
                    f"spec expects {spec.vector_dim}"
                )
            self.codebooks[spec.name] = Codebook.train(
                spec, vectors, max_iterations=self.kmeans_iterations, seed=self.seed
            )
        return self

    @property
    def is_fitted(self) -> bool:
        return len(self.codebooks) == len(self.specs)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("VectorQuantizer.fit must be called first")

    # ------------------------------------------------------------------
    def encode(self, model: GaussianModel) -> QuantizedGaussians:
        """Quantise a model's second half into codebook indices."""
        self._require_fitted()
        groups = _feature_groups(model)
        indices = {
            name: self.codebooks[name].encode(groups[name]) for name in self.codebooks
        }
        return QuantizedGaussians(
            indices=indices,
            opacities=model.opacities.copy(),
            num_gaussians=len(model),
        )

    def decode(
        self, quantized: QuantizedGaussians, model: GaussianModel
    ) -> GaussianModel:
        """Reconstruct a model from quantized features.

        Positions and maximum scale come from ``model`` (the uncompressed
        first half stays exact); the decoded second half replaces the rest.
        """
        self._require_fitted()
        if quantized.num_gaussians != len(model):
            raise ValueError("quantized data and model sizes differ")
        scales = self.codebooks["scale"].decode(quantized.indices["scale"])
        rotations = self.codebooks["rotation"].decode(quantized.indices["rotation"])
        sh_dc = self.codebooks["dc"].decode(quantized.indices["dc"])
        sh_rest = self.codebooks["sh"].decode(quantized.indices["sh"]).reshape(
            len(model), 15, 3
        )
        return GaussianModel(
            positions=model.positions.copy(),
            scales=np.clip(scales, 1e-6, None),
            rotations=rotations,
            opacities=quantized.opacities.copy(),
            sh_dc=sh_dc,
            sh_rest=sh_rest,
        )

    def roundtrip(self, model: GaussianModel) -> GaussianModel:
        """Encode then decode a model (the model the accelerator renders)."""
        return self.decode(self.encode(model), model)

    # ------------------------------------------------------------------
    # Byte accounting for the traffic / data-layout models
    # ------------------------------------------------------------------
    def compressed_bytes_per_gaussian(self) -> float:
        """DRAM bytes per Gaussian for the compressed second half.

        Indices of all groups are packed together and padded to whole bytes
        per Gaussian; the raw opacity scalar is stored alongside.
        """
        total_bits = sum(spec.index_bits for spec in self.specs)
        packed = float(np.ceil(total_bits / 8.0))
        return packed + OPACITY_BYTES

    @staticmethod
    def raw_bytes_per_gaussian() -> float:
        """DRAM bytes per Gaussian for the uncompressed second half."""
        return float(RAW_SECOND_HALF_BYTES)

    def traffic_reduction(self) -> float:
        """Fractional second-half traffic reduction achieved by VQ."""
        return 1.0 - self.compressed_bytes_per_gaussian() / self.raw_bytes_per_gaussian()

    def codebook_storage_bytes(self) -> int:
        """Total on-chip SRAM bytes needed to hold all codebooks."""
        return sum(spec.storage_bytes for spec in self.specs)
