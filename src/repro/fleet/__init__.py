"""Fleet-scale load generation, replay and design-space search.

The modules compose left to right:

* :mod:`repro.fleet.traces` — deterministic synthetic request schedules
  (mixed classes, Poisson / bursty / diurnal arrivals);
* :mod:`repro.fleet.clients` — replay of a trace against a live
  :class:`~repro.service.daemon.ServiceDaemon` over the NDJSON wire
  protocol, one connection per synthetic client;
* :mod:`repro.fleet.aggregate` — latency / throughput / reject /
  degrade statistics plus the architecture-model cost rollup
  (:mod:`repro.arch.rollup`) scaling the paper's per-device figures to
  the served load;
* :mod:`repro.fleet.search` — Pareto frontier refinement over
  :class:`~repro.arch.accelerator.AcceleratorConfig` axes, cached in
  (and resumable from) the session's ``ResultStore``.
"""

from repro.fleet.aggregate import fleet_costs, summarize_replay
from repro.fleet.clients import EventOutcome, ReplayReport, replay_trace
from repro.fleet.search import (
    OBJECTIVES,
    DesignSpace,
    SearchPoint,
    SearchResult,
    exhaustive_frontier,
    pareto_frontier,
    pareto_search,
)
from repro.fleet.traces import (
    ARRIVAL_PROCESSES,
    RequestClass,
    Trace,
    TraceEvent,
    default_classes,
    generate_trace,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "OBJECTIVES",
    "DesignSpace",
    "EventOutcome",
    "ReplayReport",
    "RequestClass",
    "SearchPoint",
    "SearchResult",
    "Trace",
    "TraceEvent",
    "default_classes",
    "exhaustive_frontier",
    "fleet_costs",
    "generate_trace",
    "pareto_frontier",
    "pareto_search",
    "replay_trace",
    "summarize_replay",
]
