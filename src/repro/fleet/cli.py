"""Command-line front end of the fleet simulator and design-space search.

Reached through the analysis runner::

    python -m repro.analysis.runner fleet trace --out trace.json
    python -m repro.analysis.runner fleet replay --embedded --speed 10
    python -m repro.analysis.runner search --axis num_hfu=2,4 --axis sram_scale=0.5,1

``fleet replay`` drives a daemon over the real NDJSON wire protocol —
either one you point it at (``--address tcp:HOST:PORT`` /
``--address unix:PATH``) or an embedded one it boots for the run
(``--embedded``).  ``search`` runs the Pareto frontier refinement of
:mod:`repro.fleet.search`; with ``--compare-grid`` it also enumerates
the full grid and reports the evaluation savings.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.aggregate import fleet_costs, summarize_replay
from repro.fleet.clients import replay_trace
from repro.fleet.traces import (
    ARRIVAL_PROCESSES,
    Trace,
    default_classes,
    generate_trace,
)


def parse_address(text: str) -> Tuple[str, ...]:
    """Parse ``tcp:HOST:PORT`` or ``unix:PATH`` into an address tuple."""
    scheme, _, rest = text.partition(":")
    if scheme == "tcp":
        host, _, port = rest.rpartition(":")
        if not host or not port:
            raise argparse.ArgumentTypeError(
                f"tcp address must be tcp:HOST:PORT, got {text!r}"
            )
        return ("tcp", host, port)
    if scheme == "unix":
        if not rest:
            raise argparse.ArgumentTypeError(
                f"unix address must be unix:PATH, got {text!r}"
            )
        return ("unix", rest)
    raise argparse.ArgumentTypeError(
        f"address must start with tcp: or unix:, got {text!r}"
    )


def parse_axis(text: str) -> Tuple[str, List[Any]]:
    """Parse ``name=v1,v2,...`` with numeric value coercion."""
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        raise argparse.ArgumentTypeError(
            f"axis must be NAME=V1,V2,..., got {text!r}"
        )

    def coerce(token: str) -> Any:
        try:
            return int(token)
        except ValueError:
            try:
                return float(token)
            except ValueError:
                return token

    return name, [coerce(token) for token in values.split(",") if token]


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=10.0, help="trace seconds")
    parser.add_argument("--rate", type=float, default=20.0, help="mean arrivals/s")
    parser.add_argument("--arrival", choices=ARRIVAL_PROCESSES, default="poisson")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--burst-size", type=int, default=8)
    parser.add_argument(
        "--clients-per-class",
        type=int,
        default=4,
        help="synthetic client population per request class",
    )


def _trace_from_args(args: argparse.Namespace) -> Trace:
    if getattr(args, "trace", None):
        return Trace.load(args.trace)
    return generate_trace(
        classes=default_classes(args.clients_per_class),
        duration_s=args.duration,
        rate_hz=args.rate,
        arrival=args.arrival,
        seed=args.seed,
        burst_size=args.burst_size,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet", description=__doc__.splitlines()[0]
    )
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser("trace", help="generate a trace file")
    _add_trace_arguments(trace)
    trace.add_argument("--out", required=True, help="trace JSON destination")

    replay = commands.add_parser("replay", help="replay a trace against a daemon")
    _add_trace_arguments(replay)
    replay.add_argument("--trace", help="trace JSON (default: generate one)")
    group = replay.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--address", type=parse_address, help="tcp:HOST:PORT or unix:PATH"
    )
    group.add_argument(
        "--embedded", action="store_true", help="boot an embedded daemon for the run"
    )
    replay.add_argument("--workers", type=int, default=2, help="embedded daemon workers")
    replay.add_argument("--queue-limit", type=int, default=64)
    replay.add_argument("--store", help="result-store directory (embedded daemon)")
    replay.add_argument("--speed", type=float, default=1.0, help="schedule compression")
    replay.add_argument("--retries", type=int, default=5)
    replay.add_argument("--timeout", type=float, default=300.0)
    replay.add_argument("--json", dest="json_out", help="write the summary JSON here")

    search = commands.add_parser("search", help="Pareto design-space search")
    search.add_argument(
        "--axis",
        type=parse_axis,
        action="append",
        required=True,
        metavar="NAME=V1,V2,...",
        help="one design axis (repeatable), e.g. num_hfu=2,4,8",
    )
    search.add_argument("--scene", default="lego")
    search.add_argument("--resolution-scale", type=float, default=0.25)
    search.add_argument("--store", help="result-store directory (resumable cache)")
    search.add_argument("--max-evals", type=int, default=None)
    search.add_argument(
        "--compare-grid",
        action="store_true",
        help="also enumerate the full grid and report the savings",
    )
    search.add_argument("--json", dest="json_out", help="write the result JSON here")
    return parser


def _emit(payload: Dict[str, Any], json_out: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    if json_out:
        Path(json_out).write_text(text)
        print(f"wrote {json_out}")
    else:
        print(text)


# ----------------------------------------------------------------------
def cmd_trace(args: argparse.Namespace) -> int:
    trace = _trace_from_args(args)
    trace.save(args.out)
    print(
        f"wrote {args.out}: {len(trace)} events, {len(trace.clients)} clients, "
        f"{trace.frames():.0f} model frames over {trace.duration_s:.1f}s "
        f"({trace.arrival})"
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    trace = _trace_from_args(args)
    window_s = trace.duration_s / args.speed

    def run(address) -> Dict[str, Any]:
        report = replay_trace(
            trace,
            address,
            speed=args.speed,
            retries=args.retries,
            timeout=args.timeout,
        )
        summary = summarize_replay(report, window_s=window_s)
        from repro.api.session import Session

        with Session(store=store_dir) as session:
            costs = fleet_costs(trace.classes, report, session, window_s=window_s)
        return {"trace": {"events": len(trace), "clients": len(trace.clients)},
                "service": summary, "fleet": costs.as_dict()}

    if args.embedded:
        from repro.service.daemon import ServiceConfig, ServiceDaemon

        with tempfile.TemporaryDirectory(prefix="fleet-store-") as tmp:
            store_dir = args.store or tmp
            daemon = ServiceDaemon(
                ServiceConfig(
                    port=0,
                    workers=args.workers,
                    queue_limit=args.queue_limit,
                    cache_dir=store_dir,
                )
            )
            handle = daemon.start_in_thread()
            try:
                payload = run(handle.address)
            finally:
                handle.stop(drain=True)
                handle.join()
    else:
        store_dir = args.store
        payload = run(args.address)

    _emit(payload, args.json_out)
    overall = payload["service"]["overall"]
    if overall["completed"] < overall["submitted"]:
        print(
            f"warning: {overall['submitted'] - overall['completed']} event(s) "
            "did not complete",
            file=sys.stderr,
        )
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    from repro.api.session import Session
    from repro.api.spec import ExperimentSpec
    from repro.fleet.search import exhaustive_frontier, pareto_search

    axes = dict(args.axis)
    base = ExperimentSpec(scene=args.scene, resolution_scale=args.resolution_scale)
    with Session(store=args.store) as session:
        result = pareto_search(session, base, axes=axes, max_evals=args.max_evals)
        payload = result.to_dict()
        if args.compare_grid:
            grid = exhaustive_frontier(session, base, axes=axes)
            payload["grid_evaluations"] = grid.evaluations
            payload["grid_frontier"] = [point.to_dict() for point in grid.frontier]
            payload["frontier_matches_grid"] = sorted(
                point.label for point in result.frontier
            ) == sorted(point.label for point in grid.frontier)
    _emit(payload, args.json_out)
    print(
        f"frontier: {len(result.frontier)} point(s) from {result.evaluations} "
        f"evaluation(s) of a {result.space.size}-point grid"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "replay":
        return cmd_replay(args)
    return cmd_search(args)


if __name__ == "__main__":
    raise SystemExit(main())
