"""Synthetic fleet traces: request classes, arrival processes, events.

A *trace* is a deterministic, serialisable schedule of service requests:
which synthetic client submits what work at which offset from the trace
start.  Traces are generated from a handful of :class:`RequestClass`
definitions (scene, resolution, compression, request kind, traffic
weight, client population) and an arrival process:

* ``poisson`` — memoryless arrivals at the aggregate mean rate;
* ``bursty`` — arrivals clustered into short bursts (flash crowds);
* ``diurnal`` — a sinusoidally modulated rate over the trace window
  (one "day" of low→peak→low demand compressed into ``duration_s``).

Everything is driven by one ``random.Random(seed)``, so a trace is a
pure function of its parameters — the replay benchmark and CI smoke can
regenerate byte-identical schedules instead of shipping fixtures.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.scenes.registry import SCENE_REGISTRY

#: Work kinds a trace event may carry (a subset of the wire protocol's
#: WORK_KINDS — control kinds are not load).
TRACE_KINDS = ("render", "trajectory", "sweep")

ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class RequestClass:
    """One homogeneous slice of fleet traffic.

    ``weight`` sets the class's share of the aggregate arrival rate;
    ``clients`` is the synthetic client population the class's arrivals
    are spread over (each client is one connection during replay, with
    the class name and an index as its identity, e.g. ``preview-3``).
    """

    name: str
    kind: str = "render"
    weight: float = 1.0
    scene: str = "lego"
    resolution_scale: float = 1.0
    compression: str = "vq"
    clients: int = 4
    #: Trajectory-kind parameters.
    frames: int = 4
    path: str = "orbit"
    #: Sweep-kind grid, e.g. ``{"num_hfu": [2, 4]}``.
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("request class needs a name")
        if self.kind not in TRACE_KINDS:
            raise ValueError(
                f"class {self.name!r}: kind {self.kind!r} not in {TRACE_KINDS}"
            )
        if not self.weight > 0:
            raise ValueError(f"class {self.name!r}: weight must be > 0")
        if self.scene not in SCENE_REGISTRY:
            raise ValueError(
                f"class {self.name!r}: unknown scene {self.scene!r}"
            )
        if not 0 < self.resolution_scale <= 1.0:
            raise ValueError(
                f"class {self.name!r}: resolution_scale must be in (0, 1]"
            )
        if self.clients < 1:
            raise ValueError(f"class {self.name!r}: clients must be >= 1")
        if self.frames < 1:
            raise ValueError(f"class {self.name!r}: frames must be >= 1")
        if self.kind == "sweep" and not self.grid:
            raise ValueError(f"class {self.name!r}: sweep kind needs a grid")
        # Normalize the grid mapping into a hashable tuple-of-tuples.
        frozen = tuple(
            (str(axis), tuple(values)) for axis, values in dict(self.grid).items()
        )
        object.__setattr__(self, "grid", frozen)

    # ------------------------------------------------------------------
    @property
    def grid_dict(self) -> Dict[str, List[Any]]:
        return {axis: list(values) for axis, values in self.grid}

    @property
    def frames_per_event(self) -> float:
        """Model frames one event of this class represents.

        A render is one frame; a trajectory is its frame count; a sweep
        evaluates one frame per grid point.
        """
        if self.kind == "trajectory":
            return float(self.frames)
        if self.kind == "sweep":
            points = 1
            for _, values in self.grid:
                points *= max(1, len(values))
            return float(points)
        return 1.0

    def payload(self) -> Dict[str, Any]:
        """The wire payload one event of this class submits."""
        if self.kind == "render":
            return {
                "scene": self.scene,
                "resolution_scale": self.resolution_scale,
            }
        if self.kind == "trajectory":
            spec: Dict[str, Any] = {
                "scene": self.scene,
                "path": self.path,
                "frames": self.frames,
                "resolution_scale": self.resolution_scale,
            }
            if self.compression == "none":
                spec["config"] = {"use_vq": False}
            return {"spec": spec}
        base: Dict[str, Any] = {
            "scene": self.scene,
            "resolution_scale": self.resolution_scale,
            "compression": self.compression,
        }
        return {"base": base, "grid": self.grid_dict}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "weight": self.weight,
            "scene": self.scene,
            "resolution_scale": self.resolution_scale,
            "compression": self.compression,
            "clients": self.clients,
            "frames": self.frames,
            "path": self.path,
            "grid": self.grid_dict,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RequestClass":
        values = dict(data)
        values["grid"] = tuple(
            (axis, tuple(vals)) for axis, vals in (values.get("grid") or {}).items()
        )
        return cls(**values)


def default_classes(clients_per_class: int = 4) -> List[RequestClass]:
    """A representative mixed-fleet workload (the CLI / benchmark preset).

    Interactive previews dominate the request count; batch sweeps and
    trajectory walkthroughs are rarer but each represents many frames.
    """
    return [
        RequestClass(
            name="preview",
            kind="render",
            weight=6.0,
            scene="lego",
            resolution_scale=0.25,
            clients=clients_per_class,
        ),
        RequestClass(
            name="quality",
            kind="render",
            weight=2.0,
            scene="train",
            resolution_scale=0.5,
            clients=clients_per_class,
        ),
        RequestClass(
            name="walkthrough",
            kind="trajectory",
            weight=1.0,
            scene="truck",
            resolution_scale=0.25,
            frames=3,
            path="dolly",
            clients=max(1, clients_per_class // 2),
        ),
        RequestClass(
            name="batch-sweep",
            kind="sweep",
            weight=1.0,
            scene="lego",
            resolution_scale=0.25,
            grid=(("num_hfu", (2, 4)),),
            clients=max(1, clients_per_class // 2),
        ),
    ]


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled request: who submits what, when."""

    at_s: float
    client: str
    klass: str
    kind: str
    payload: Dict[str, Any]
    frames: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_s": self.at_s,
            "client": self.client,
            "class": self.klass,
            "kind": self.kind,
            "payload": self.payload,
            "frames": self.frames,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            at_s=float(data["at_s"]),
            client=str(data["client"]),
            klass=str(data["class"]),
            kind=str(data["kind"]),
            payload=dict(data["payload"]),
            frames=float(data.get("frames", 1.0)),
        )


@dataclass
class Trace:
    """A generated schedule plus the parameters that produced it."""

    events: List[TraceEvent]
    duration_s: float
    rate_hz: float
    arrival: str
    seed: int
    classes: List[RequestClass]

    def __len__(self) -> int:
        return len(self.events)

    @property
    def clients(self) -> List[str]:
        """Distinct client identities, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.client, None)
        return list(seen)

    def by_client(self) -> Dict[str, List[TraceEvent]]:
        """Events grouped per client, each group in schedule order."""
        grouped: Dict[str, List[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.client, []).append(event)
        return grouped

    def frames(self) -> float:
        return sum(event.frames for event in self.events)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "duration_s": self.duration_s,
            "rate_hz": self.rate_hz,
            "arrival": self.arrival,
            "seed": self.seed,
            "classes": [klass.to_dict() for klass in self.classes],
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Trace":
        return cls(
            events=[TraceEvent.from_dict(e) for e in data["events"]],
            duration_s=float(data["duration_s"]),
            rate_hz=float(data["rate_hz"]),
            arrival=str(data["arrival"]),
            seed=int(data["seed"]),
            classes=[RequestClass.from_dict(c) for c in data["classes"]],
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        return cls.from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Arrival processes.
# ----------------------------------------------------------------------
def _poisson_arrivals(rng: random.Random, rate_hz: float, duration_s: float) -> List[float]:
    times: List[float] = []
    t = rng.expovariate(rate_hz)
    while t < duration_s:
        times.append(t)
        t += rng.expovariate(rate_hz)
    return times


def _bursty_arrivals(
    rng: random.Random, rate_hz: float, duration_s: float, burst_size: int = 8
) -> List[float]:
    """Flash-crowd arrivals: Poisson burst starts, tight clusters inside."""
    times: List[float] = []
    burst_rate = rate_hz / burst_size
    # The exponential first-arrival draw exceeds a short window often
    # enough to yield degenerate empty traces, so the first burst lands
    # uniformly inside the window; subsequent starts are Poisson.
    start = rng.uniform(0.0, duration_s)
    while start < duration_s:
        t = start
        for _ in range(burst_size):
            if t >= duration_s:
                break
            times.append(t)
            # Intra-burst gaps an order of magnitude tighter than the mean.
            t += rng.expovariate(rate_hz * 10.0)
        start += rng.expovariate(burst_rate)
    return times


def _diurnal_arrivals(
    rng: random.Random, rate_hz: float, duration_s: float
) -> List[float]:
    """Sinusoidal thinning: one low→peak→low demand cycle over the window."""
    times: List[float] = []
    peak = rate_hz * 2.0
    t = rng.expovariate(peak)
    while t < duration_s:
        # Intensity in [0, 1]: trough at both ends, peak mid-window.
        phase = 2.0 * math.pi * (t / duration_s) - math.pi / 2.0
        accept = 0.5 * (1.0 + math.sin(phase))
        if rng.random() < accept:
            times.append(t)
        t += rng.expovariate(peak)
    return times


def generate_trace(
    classes: Optional[Sequence[RequestClass]] = None,
    duration_s: float = 10.0,
    rate_hz: float = 20.0,
    arrival: str = "poisson",
    seed: int = 0,
    burst_size: int = 8,
) -> Trace:
    """Generate a deterministic trace for the given class mix.

    Every arrival is assigned to a class by weighted choice and to one of
    that class's synthetic clients uniformly; per-client event streams
    are therefore in schedule order by construction.
    """
    if classes is None:
        classes = default_classes()
    classes = list(classes)
    if not classes:
        raise ValueError("need at least one request class")
    names = [klass.name for klass in classes]
    if len(set(names)) != len(names):
        raise ValueError(f"request class names must be unique, got {names}")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if arrival not in ARRIVAL_PROCESSES:
        raise ValueError(
            f"unknown arrival {arrival!r}; available: {list(ARRIVAL_PROCESSES)}"
        )

    rng = random.Random(seed)
    if arrival == "poisson":
        times = _poisson_arrivals(rng, rate_hz, duration_s)
    elif arrival == "bursty":
        times = _bursty_arrivals(rng, rate_hz, duration_s, burst_size=burst_size)
    else:
        times = _diurnal_arrivals(rng, rate_hz, duration_s)

    weights = [klass.weight for klass in classes]
    events: List[TraceEvent] = []
    for at_s in times:
        klass = rng.choices(classes, weights=weights, k=1)[0]
        index = rng.randrange(klass.clients)
        events.append(
            TraceEvent(
                at_s=round(at_s, 6),
                client=f"{klass.name}-{index}",
                klass=klass.name,
                kind=klass.kind,
                payload=klass.payload(),
                frames=klass.frames_per_event,
            )
        )
    return Trace(
        events=events,
        duration_s=duration_s,
        rate_hz=rate_hz,
        arrival=arrival,
        seed=seed,
        classes=classes,
    )
