"""Trace replay: synthetic clients driving a daemon over the wire.

The replayer spawns one thread per synthetic client identity in the
trace.  Each thread opens its own NDJSON connection (so fair-queueing,
admission control and backoff all see real per-client state), sleeps
until each of its events is due, submits it with bounded-jitter retry
backoff, and records an :class:`EventOutcome`.  Timing is open-loop: a
slow response delays only that client's subsequent events, exactly like
a real fleet of independent frontends.

``speed`` compresses the trace's schedule (``speed=10`` replays a
10-second trace in about one second of wall clock), which keeps CI smoke
fast without changing the request mix or ordering.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.traces import Trace, TraceEvent
from repro.service.client import ServiceClient

Address = Sequence[str]


@dataclass
class EventOutcome:
    """What happened to one trace event during replay."""

    client: str
    klass: str
    kind: str
    scheduled_s: float
    started_s: float = 0.0
    finished_s: float = 0.0
    ok: bool = False
    code: Optional[str] = None
    #: Daemon-side dispatch attempts (>1 means a crash retry happened).
    attempts: int = 1
    #: True when the daemon downshifted the request's fidelity.
    degraded: bool = False
    #: Client-side admission-reject resubmissions for this event.
    backoffs: int = 0
    #: Reconnect-and-resend cycles taken after a severed connection.
    resends: int = 0
    frames: float = 1.0

    @property
    def latency_s(self) -> float:
        """Submission to response, including backoff sleeps."""
        return max(0.0, self.finished_s - self.started_s)

    @property
    def tardiness_s(self) -> float:
        """How late past its schedule the event finished."""
        return max(0.0, self.finished_s - self.scheduled_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "client": self.client,
            "class": self.klass,
            "kind": self.kind,
            "scheduled_s": self.scheduled_s,
            "latency_s": self.latency_s,
            "ok": self.ok,
            "code": self.code,
            "attempts": self.attempts,
            "degraded": self.degraded,
            "backoffs": self.backoffs,
            "resends": self.resends,
            "frames": self.frames,
        }


@dataclass
class ReplayReport:
    """Outcome of one trace replay against a live daemon."""

    outcomes: List[EventOutcome] = field(default_factory=list)
    wall_s: float = 0.0
    speed: float = 1.0
    #: The daemon's ``metrics`` snapshot scraped right after the replay.
    daemon_metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def failed(self) -> int:
        return len(self.outcomes) - self.completed

    @property
    def frames_completed(self) -> float:
        return sum(outcome.frames for outcome in self.outcomes if outcome.ok)


def _replay_client(
    address: Address,
    name: str,
    events: List[TraceEvent],
    started_at: float,
    speed: float,
    retries: int,
    max_backoff_s: float,
    timeout: float,
    reconnect: int,
    sink: List[EventOutcome],
    lock: threading.Lock,
) -> None:
    """One synthetic client's replay loop (runs on its own thread)."""
    outcomes: List[EventOutcome] = []
    try:
        client = ServiceClient.connect(
            address, client=name, timeout=timeout, reconnect=reconnect
        )
    except OSError as error:
        for event in events:
            outcomes.append(
                EventOutcome(
                    client=name,
                    klass=event.klass,
                    kind=event.kind,
                    scheduled_s=event.at_s / speed,
                    code=f"connect_error:{type(error).__name__}",
                    frames=event.frames,
                )
            )
        with lock:
            sink.extend(outcomes)
        return

    try:
        for position, event in enumerate(events):
            due = event.at_s / speed
            delay = due - (time.perf_counter() - started_at)
            if delay > 0:
                time.sleep(delay)
            outcome = EventOutcome(
                client=name,
                klass=event.klass,
                kind=event.kind,
                scheduled_s=due,
                frames=event.frames,
            )
            outcome.started_s = time.perf_counter() - started_at
            backoffs_before = client.backoffs
            resends_before = client.resends
            try:
                response = client.submit(
                    event.kind,
                    dict(event.payload),
                    retries=retries,
                    max_backoff_s=max_backoff_s,
                )
            except (OSError, ConnectionError) as error:
                # The connection is gone past the reconnect budget.  Record
                # this event AND the client's remaining tail as terminal
                # outcomes so every trace event is accounted for.
                outcome.finished_s = time.perf_counter() - started_at
                outcome.resends = client.resends - resends_before
                outcome.code = f"transport_error:{type(error).__name__}"
                outcomes.append(outcome)
                for lost in events[position + 1 :]:
                    outcomes.append(
                        EventOutcome(
                            client=name,
                            klass=lost.klass,
                            kind=lost.kind,
                            scheduled_s=lost.at_s / speed,
                            code="connection_lost",
                            frames=lost.frames,
                        )
                    )
                break
            outcome.finished_s = time.perf_counter() - started_at
            outcome.backoffs = client.backoffs - backoffs_before
            outcome.resends = client.resends - resends_before
            outcome.ok = bool(response.ok)
            outcome.code = response.code
            meta = response.meta or {}
            outcome.attempts = int(meta.get("attempts", 1) or 1)
            outcome.degraded = bool(meta.get("degraded"))
            outcomes.append(outcome)
    finally:
        try:
            client.close()
        except OSError:
            pass
        with lock:
            sink.extend(outcomes)


def replay_trace(
    trace: Trace,
    address: Address,
    speed: float = 1.0,
    retries: int = 5,
    max_backoff_s: float = 2.0,
    timeout: float = 300.0,
    reconnect: int = 1,
    scrape_metrics: bool = True,
) -> ReplayReport:
    """Replay ``trace`` against the daemon at ``address``.

    Returns once every client thread has drained its schedule.  The
    report's outcomes are sorted by schedule time for stable downstream
    aggregation.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    address = tuple(address)
    sink: List[EventOutcome] = []
    lock = threading.Lock()
    started_at = time.perf_counter()
    threads = [
        threading.Thread(
            target=_replay_client,
            name=f"fleet-{name}",
            args=(
                address,
                name,
                events,
                started_at,
                speed,
                retries,
                max_backoff_s,
                timeout,
                reconnect,
                sink,
                lock,
            ),
            daemon=True,
        )
        for name, events in trace.by_client().items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started_at

    daemon_metrics: Dict[str, Any] = {}
    if scrape_metrics:
        try:
            with ServiceClient.connect(address, client="fleet-metrics") as probe:
                daemon_metrics = probe.metrics()
        except (OSError, ConnectionError):
            daemon_metrics = {}

    sink.sort(key=lambda outcome: (outcome.scheduled_s, outcome.client))
    return ReplayReport(
        outcomes=sink, wall_s=wall_s, speed=speed, daemon_metrics=daemon_metrics
    )
