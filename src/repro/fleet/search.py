"""Pareto auto-search over the accelerator design space.

Grid sweeps (``session.sweep(num_hfu=[...], ...)``) enumerate every
lattice point; for design-space exploration most of those evaluations
are wasted on dominated configurations.  :func:`pareto_search` instead
refines a frontier over the *index lattice* of the axes:

1. seed with the lattice corners plus the centre point;
2. evaluate pending candidates (batched through the session's cached
   sweep executor, so repeated searches resume from ``ResultStore``);
3. compute the Pareto frontier under minimisation of
   (``frame_time_ms``, ``energy_per_frame_mj``, ``area_mm2``);
4. enqueue the ±1 lattice neighbours of every frontier point;
5. repeat until no unseen neighbour remains (closure) or the
   evaluation budget is spent.

Because the hardware model's objectives are monotone-ish along each
axis, the frontier is confined to a low-dimensional shell of the
lattice and closure arrives well before full enumeration — the
exhaustive grid is only used by :func:`exhaustive_frontier` as the
ground-truth oracle in tests and benchmarks.

Both paths build specs through :meth:`DesignSpace.spec`, so a search
point and the corresponding grid point hash to the same
``ResultStore`` key and share cache entries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Objectives minimised by the search, in report order.
OBJECTIVES = ("frame_time_ms", "energy_per_frame_mj", "area_mm2")


@dataclass(frozen=True)
class DesignSpace:
    """Ordered axes of the search: arch-option name → candidate values."""

    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]

    def __post_init__(self) -> None:
        from repro.api.spec import _ARCH_OPTION_FIELDS

        frozen = tuple(
            (str(name), tuple(values)) for name, values in dict(self.axes).items()
        )
        if not frozen:
            raise ValueError("design space needs at least one axis")
        for name, values in frozen:
            if name not in _ARCH_OPTION_FIELDS:
                raise ValueError(
                    f"unknown arch option {name!r}; "
                    f"available: {sorted(_ARCH_OPTION_FIELDS)}"
                )
            if not values:
                raise ValueError(f"axis {name!r} needs at least one value")
        object.__setattr__(self, "axes", frozen)

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(len(values) for _, values in self.axes)

    @property
    def size(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def values(self, index: Tuple[int, ...]) -> Dict[str, Any]:
        """Axis values at one lattice index."""
        return {
            name: values[i] for (name, values), i in zip(self.axes, index)
        }

    def spec(self, base, index: Tuple[int, ...]):
        """The :class:`ExperimentSpec` of one lattice point.

        Merges the axis values into ``base``'s arch options and keeps
        its tag, so search and exhaustive-grid evaluations of the same
        point are one cacheable artifact.
        """
        merged = dict(base.arch_overrides)
        merged.update(self.values(index))
        return base.with_options(arch_options=merged)

    # ------------------------------------------------------------------
    def corners(self) -> List[Tuple[int, ...]]:
        extremes = [
            sorted({0, extent - 1}) for extent in self.shape
        ]
        return [tuple(idx) for idx in itertools.product(*extremes)]

    def center(self) -> Tuple[int, ...]:
        return tuple(extent // 2 for extent in self.shape)

    def neighbors(self, index: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        """±1 lattice steps from ``index`` along each axis."""
        found: List[Tuple[int, ...]] = []
        for axis, extent in enumerate(self.shape):
            for step in (-1, 1):
                i = index[axis] + step
                if 0 <= i < extent:
                    found.append(index[:axis] + (i,) + index[axis + 1 :])
        return found

    def all_indices(self) -> List[Tuple[int, ...]]:
        return [
            tuple(idx)
            for idx in itertools.product(*(range(extent) for extent in self.shape))
        ]


@dataclass(frozen=True)
class SearchPoint:
    """One evaluated design point."""

    index: Tuple[int, ...]
    values: Dict[str, Any]
    objectives: Dict[str, float]
    label: str = ""

    @property
    def key(self) -> Tuple[float, ...]:
        return tuple(float(self.objectives[name]) for name in OBJECTIVES)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "values": dict(self.values),
            "objectives": {name: float(self.objectives[name]) for name in OBJECTIVES},
            "label": self.label,
        }


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse in every objective and better in one."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_frontier(points: Sequence[SearchPoint]) -> List[SearchPoint]:
    """Non-dominated subset of ``points`` (stable order)."""
    frontier: List[SearchPoint] = []
    for candidate in points:
        if any(
            dominates(other.key, candidate.key)
            for other in points
            if other is not candidate
        ):
            continue
        frontier.append(candidate)
    return frontier


@dataclass
class SearchResult:
    """Everything one search run produced."""

    space: DesignSpace
    points: List[SearchPoint] = field(default_factory=list)
    frontier: List[SearchPoint] = field(default_factory=list)
    rounds: int = 0

    @property
    def evaluations(self) -> int:
        return len(self.points)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axes": {name: list(values) for name, values in self.space.axes},
            "grid_size": self.space.size,
            "evaluations": self.evaluations,
            "rounds": self.rounds,
            "frontier": [point.to_dict() for point in self.frontier],
            "points": [point.to_dict() for point in self.points],
        }


def _evaluate(
    session, base, space: DesignSpace, indices: Sequence[Tuple[int, ...]]
) -> List[SearchPoint]:
    """Evaluate lattice points through the cached sweep executor."""
    specs = [space.spec(base, index) for index in indices]
    result = session.run_sweep(specs, swept=list(space.names))
    points: List[SearchPoint] = []
    for index, spec, point in zip(indices, specs, result.results):
        metrics = point.metrics
        missing = [name for name in OBJECTIVES if name not in metrics]
        if missing:
            raise ValueError(
                f"spec {spec.label!r} (arch={spec.arch!r}) has no "
                f"{missing} metrics — the search needs an accelerator arch"
            )
        points.append(
            SearchPoint(
                index=index,
                values=space.values(index),
                objectives={name: float(metrics[name]) for name in OBJECTIVES},
                label=spec.label,
            )
        )
    return points


def _resolve_base(base):
    from repro.api.spec import ExperimentSpec

    if base is None:
        return ExperimentSpec(scene="lego", resolution_scale=0.25)
    return base


def pareto_search(
    session,
    base=None,
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    max_evals: Optional[int] = None,
) -> SearchResult:
    """Frontier-refinement search over ``axes`` (see module docstring).

    ``max_evals`` caps the number of lattice points evaluated; ``None``
    runs to closure (never more than the full grid).
    """
    if not axes:
        raise ValueError("pareto_search needs at least one axis")
    space = DesignSpace(tuple(dict(axes).items()))
    base = _resolve_base(base)
    budget = space.size if max_evals is None else min(max_evals, space.size)

    evaluated: Dict[Tuple[int, ...], SearchPoint] = {}
    result = SearchResult(space=space)
    pending = list(dict.fromkeys(space.corners() + [space.center()]))
    while pending and len(evaluated) < budget:
        batch = list(
            dict.fromkeys(index for index in pending if index not in evaluated)
        )
        batch = batch[: budget - len(evaluated)]
        if not batch:
            break
        for point in _evaluate(session, base, space, batch):
            evaluated[point.index] = point
        result.rounds += 1
        frontier = pareto_frontier(list(evaluated.values()))
        pending = [
            neighbor
            for point in frontier
            for neighbor in space.neighbors(point.index)
            if neighbor not in evaluated
        ]
    result.points = list(evaluated.values())
    result.frontier = pareto_frontier(result.points)
    return result


def exhaustive_frontier(session, base=None, axes=None) -> SearchResult:
    """Ground-truth frontier by full grid enumeration (test/bench oracle)."""
    if not axes:
        raise ValueError("exhaustive_frontier needs at least one axis")
    space = DesignSpace(tuple(dict(axes).items()))
    base = _resolve_base(base)
    result = SearchResult(space=space, rounds=1)
    result.points = _evaluate(session, base, space, space.all_indices())
    result.frontier = pareto_frontier(result.points)
    return result
