"""Replay aggregation: latency/throughput stats and fleet-scale costs.

Two views of one replay:

* :func:`summarize_replay` — service-level statistics per request class
  and overall: p50/p95/p99 latency, throughput, reject / degrade / retry
  counts.  Pure bookkeeping over :class:`~repro.fleet.clients.EventOutcome`.
* :func:`fleet_costs` — architecture-level rollup: each class's
  per-frame traffic / energy figures come from the hardware model (one
  cached point evaluation per class) and are scaled by the frames the
  class actually served during the window, extending the paper's
  single-device Fig. 2 / Fig. 4 story to datacenter scale via
  :mod:`repro.arch.rollup`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.arch.rollup import FleetCost, class_cost_from_metrics, fleet_rollup
from repro.fleet.clients import EventOutcome, ReplayReport
from repro.fleet.traces import RequestClass


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (matches the service benchmark's idiom)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _bucket_stats(outcomes: List[EventOutcome], window_s: float) -> Dict[str, Any]:
    latencies = [o.latency_s for o in outcomes if o.ok]
    completed = len(latencies)
    return {
        "submitted": len(outcomes),
        "completed": completed,
        "failed": sum(1 for o in outcomes if not o.ok),
        "rejected": sum(
            1 for o in outcomes if not o.ok and o.code in ("queue_full", "draining")
        ),
        "degraded": sum(1 for o in outcomes if o.degraded),
        "retried": sum(1 for o in outcomes if o.attempts > 1),
        "backoffs": sum(o.backoffs for o in outcomes),
        "resends": sum(o.resends for o in outcomes),
        "frames": sum(o.frames for o in outcomes if o.ok),
        "throughput_rps": completed / window_s if window_s > 0 else 0.0,
        "p50_s": percentile(latencies, 0.50),
        "p95_s": percentile(latencies, 0.95),
        "p99_s": percentile(latencies, 0.99),
        "mean_s": sum(latencies) / completed if completed else 0.0,
        "max_s": max(latencies) if latencies else 0.0,
    }


def summarize_replay(
    report: ReplayReport, window_s: Optional[float] = None
) -> Dict[str, Any]:
    """Service-level statistics of one replay, per class and overall.

    ``window_s`` defaults to the replay's wall-clock duration; pass the
    trace's (speed-compressed) schedule length to report offered-load
    rates instead of achieved-wall rates.
    """
    window = window_s if window_s is not None else report.wall_s
    per_class: Dict[str, List[EventOutcome]] = {}
    for outcome in report.outcomes:
        per_class.setdefault(outcome.klass, []).append(outcome)
    return {
        "window_s": window,
        "wall_s": report.wall_s,
        "speed": report.speed,
        "overall": _bucket_stats(report.outcomes, window),
        "classes": {
            name: _bucket_stats(outcomes, window)
            for name, outcomes in sorted(per_class.items())
        },
    }


def class_spec(klass: RequestClass):
    """The :class:`~repro.api.spec.ExperimentSpec` modelling one class.

    The hardware model's per-frame figures depend on the scene, the
    resolution and the compression mode — the request kind only changes
    how many frames one request represents, which the rollup scales by.
    """
    from repro.api.spec import ExperimentSpec

    return ExperimentSpec(
        scene=klass.scene,
        compression=klass.compression,
        resolution_scale=klass.resolution_scale,
    )


def fleet_costs(
    classes: Sequence[RequestClass],
    report: ReplayReport,
    session,
    window_s: Optional[float] = None,
) -> FleetCost:
    """Architecture-model cost rollup of one replay.

    Each class's per-frame metrics are one (store-cached) point
    evaluation; classes that completed zero frames still appear with
    zero cost so the breakdown always covers the whole mix.
    """
    window = window_s if window_s is not None else max(report.wall_s, 1e-9)
    frames_by_class: Dict[str, float] = {klass.name: 0.0 for klass in classes}
    for outcome in report.outcomes:
        if outcome.ok and outcome.klass in frames_by_class:
            frames_by_class[outcome.klass] += outcome.frames
    costs = []
    for klass in classes:
        metrics = session.run(class_spec(klass)).metrics
        costs.append(
            class_cost_from_metrics(
                klass.name,
                metrics,
                frames=frames_by_class[klass.name],
                window_s=window,
            )
        )
    return fleet_rollup(costs)
