"""Always-on render service: the daemon layer above :mod:`repro.api`.

Everything below this package is a library you import; this package is the
server you send traffic to.  It promotes :class:`~repro.api.session.Session`
/ :class:`~repro.engine.service.RenderService` into a long-lived asyncio
daemon modeled on a proactor/actor runtime:

* :mod:`repro.service.protocol` — newline-delimited JSON over TCP or a
  unix socket (:class:`ServiceRequest` / :class:`ServiceResponse`), plus a
  minimal HTTP shim so ``GET /healthz`` and ``GET /metrics`` work from any
  scraper on the same port.
* :mod:`repro.service.queueing` — the bounded admission queue with
  per-client weighted fair scheduling (:class:`FairQueue`): one heavy
  client cannot starve others, and excess load is rejected with a
  retry-after hint instead of hanging.
* :mod:`repro.service.actors` — worker actors: threads owning a private
  :class:`Session` that shares the daemon's render service (frame caches)
  and result store, executing requests off the event loop.
* :mod:`repro.service.supervisor` — heartbeat watchdog supervision: a
  crashed actor is restarted and its in-flight request re-enqueued
  (bounded retries); the :class:`Journal` persists in-flight work so a
  daemon restart resumes rather than loses requests.
* :mod:`repro.service.daemon` — :class:`ServiceDaemon` wires it together:
  asyncio server, dispatcher, overload degradation (auto-downshifted
  ``resolution_scale`` under queue pressure, surfaced in the response) and
  the live telemetry snapshot behind ``/metrics``.
* :mod:`repro.service.breaker` — :class:`CircuitBreaker`: per-work-kind
  closed/open/half-open circuit over repeated worker crashes, gating
  admission so a poisoned request class cannot burn the fleet.
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  client used by the examples, benchmarks and CI smoke; mints stable
  idempotency keys and reconnects-and-resends on connection loss.

Failure is a first-class input: the daemon threads named
:mod:`repro.chaos` fault points through transport, actors, persistence
and shm (``ServiceConfig.chaos`` / ``repro-serve --chaos-plan``), and
the hardening they exercise — end-to-end deadlines, idempotent resends,
wedged-actor quarantine, circuit breaking — surfaces through the
``/healthz`` state machine (``healthy`` / ``degraded`` / ``critical``).
* :mod:`repro.service.cli` — the ``repro-serve`` console entry point
  (also reachable as ``python -m repro.service.cli`` and
  ``python -m repro.analysis.runner serve``).
"""

from repro.service.breaker import CircuitBreaker
from repro.service.client import ServiceClient, ServiceConnectionError, ServiceError
from repro.service.daemon import DaemonHandle, ServiceConfig, ServiceDaemon
from repro.service.protocol import (
    ProtocolError,
    REQUEST_KINDS,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.queueing import FairQueue, QueueFull
from repro.service.supervisor import Journal, Supervisor

__all__ = [
    "CircuitBreaker",
    "DaemonHandle",
    "FairQueue",
    "Journal",
    "ProtocolError",
    "QueueFull",
    "REQUEST_KINDS",
    "ServiceClient",
    "ServiceConfig",
    "ServiceConnectionError",
    "ServiceDaemon",
    "ServiceError",
    "ServiceRequest",
    "ServiceResponse",
    "Supervisor",
]
