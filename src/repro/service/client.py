"""Blocking client of the render service daemon.

:class:`ServiceClient` speaks the NDJSON protocol over one socket
connection (TCP or unix) and exposes convenience wrappers per request
kind.  It is deliberately synchronous — examples, benchmarks and CI
smoke drive the daemon from plain scripts and threads; concurrency comes
from multiple clients, matching how the daemon schedules fairness.

``submit`` optionally retries admission rejects: a ``queue_full`` /
``draining`` / ``circuit_open`` response carries ``retry_after_s``, and
with ``retries > 0`` the client sleeps that hint (bounded) and resubmits
**under the same request id** — one logical request keeps one id across
every admission retry, so the daemon's journal and metrics see a single
request.

The id doubles as an idempotency key: on a mid-request connection loss
the client (when built via :meth:`ServiceClient.connect`) transparently
reconnects and resends the same request up to ``reconnect`` times, and
the daemon answers resends of completed work from its response cache —
a dropped response never causes a double render.  When the budget is
exhausted a typed :class:`ServiceConnectionError` carrying the request
id is raised and the connection is marked dead (subsequent calls fail
fast instead of hanging on a desynchronized stream).
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
import urllib.request
import uuid
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    ServiceRequest,
    ServiceResponse,
    decode_message,
    encode_message,
)

Address = Union[Tuple[str, ...], Sequence[str]]

#: Backoff used when a reject carries no ``retry_after_s`` hint at all.
DEFAULT_BACKOFF_S = 0.1

#: Jitter fraction added on top of the hinted backoff (plus a 10 ms floor
#: so even a zero hint desynchronizes resubmissions).
BACKOFF_JITTER = 0.25


def backoff_delay(
    hint: Optional[float],
    max_backoff_s: float = 5.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Seconds to sleep before resubmitting after an admission reject.

    ``hint`` is the daemon's ``retry_after_s``.  A ``0.0`` hint means
    "retry immediately" and is honored — only a missing hint (``None``)
    falls back to :data:`DEFAULT_BACKOFF_S`.  A bounded random jitter
    (up to ``BACKOFF_JITTER`` of the base, plus 10 ms) is added so a
    fleet of clients rejected in the same instant does not resubmit in
    lockstep; the total never exceeds ``max_backoff_s``.
    """
    base = DEFAULT_BACKOFF_S if hint is None else max(0.0, float(hint))
    base = min(float(max_backoff_s), base)
    jitter = (rng or random).uniform(0.0, BACKOFF_JITTER * base + 0.01)
    return max(0.0, min(float(max_backoff_s), base + jitter))


class ServiceError(RuntimeError):
    """A request failed and ``raise_on_error`` was set."""

    def __init__(self, response: ServiceResponse) -> None:
        self.response = response
        super().__init__(f"[{response.code or 'error'}] {response.error}")


class ServiceConnectionError(ConnectionError):
    """The connection died mid-request and could not be restored.

    Carries the in-flight request's id so the caller can resubmit it
    under the same idempotency key (the daemon deduplicates by id).
    """

    def __init__(self, message: str, request_id: str = "", client: str = "") -> None:
        self.request_id = request_id
        self.client = client
        super().__init__(message)


class ServiceClient:
    """One connection to a running :class:`~repro.service.daemon.ServiceDaemon`.

    Usable as a context manager::

        with ServiceClient.connect(("tcp", "127.0.0.1", 7340)) as client:
            result = client.render("lego", resolution_scale=0.25)
    """

    def __init__(
        self,
        sock: socket.socket,
        client: str = "anon",
        timeout: float = 60.0,
        reconnect: int = 1,
    ) -> None:
        self._sock = sock
        self._sock.settimeout(timeout)
        self._file = sock.makefile("rb")
        self.client = client
        self.timeout = timeout
        #: Reconnect-and-resend budget per request; effective only when
        #: the client knows its address (built via :meth:`connect`).
        self.reconnect = max(0, int(reconnect))
        self.requests_sent = 0
        #: Admission rejects this client slept through and resubmitted.
        self.backoffs = 0
        #: Requests resent over a fresh connection after a mid-request
        #: connection loss (served idempotently by the daemon).
        self.resends = 0
        self._address: Optional[Tuple[str, ...]] = None
        self._connect_timeout = 5.0
        self._dead = False
        #: Stable token making this client instance's request ids unique
        #: across processes and reconnects.
        self._token = f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"
        self._serial = 0

    def _next_id(self) -> str:
        """Mint one idempotency key per *logical* request."""
        self._serial += 1
        return f"{self.client}-{self._token}-{self._serial:x}"

    # ------------------------------------------------------------------
    @staticmethod
    def _open_socket(address: Tuple[str, ...], connect_timeout: float) -> socket.socket:
        if address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(connect_timeout)
            sock.connect(address[1])
            return sock
        if address[0] == "tcp":
            return socket.create_connection(
                (address[1], int(address[2])), timeout=connect_timeout
            )
        raise ValueError(f"unknown address scheme {address[0]!r}")

    @classmethod
    def connect(
        cls,
        address: Address,
        client: str = "anon",
        timeout: float = 60.0,
        connect_timeout: float = 5.0,
        reconnect: int = 1,
    ) -> "ServiceClient":
        """Open a connection to ``("tcp", host, port)`` or ``("unix", path)``."""
        address = tuple(address)
        sock = cls._open_socket(address, connect_timeout)
        instance = cls(sock, client=client, timeout=timeout, reconnect=reconnect)
        instance._address = address
        instance._connect_timeout = connect_timeout
        return instance

    def _mark_dead(self) -> None:
        self._dead = True
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already broken
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already broken
            pass

    def _reconnect(self) -> None:
        assert self._address is not None
        sock = self._open_socket(self._address, self._connect_timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")
        self._dead = False

    def close(self) -> None:
        self._dead = True
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        retries: int = 0,
        max_backoff_s: float = 5.0,
        raise_on_error: bool = False,
        deadline_s: Optional[float] = None,
    ) -> ServiceResponse:
        """Send one request and block for its response.

        With ``retries > 0``, admission rejects (``queue_full`` /
        ``draining`` / ``circuit_open``) are retried after the daemon's
        ``retry_after_s`` hint plus bounded jitter (see
        :func:`backoff_delay`; the sleep is capped at ``max_backoff_s``
        and a ``0.0`` hint is honored).  Every retry reuses the id minted
        for the logical request, so the daemon sees one request no matter
        how many resubmissions it took.  ``deadline_s`` propagates an
        end-to-end deadline the daemon enforces before and at dispatch.
        Other failures are returned (or raised) as-is.
        """
        request = ServiceRequest(
            kind=kind,
            payload=payload or {},
            client=self.client,
            id=self._next_id(),
            deadline_s=deadline_s,
        )
        attempts_left = max(0, int(retries))
        while True:
            response = self._roundtrip(request)
            if response.ok or response.code not in (
                "queue_full",
                "draining",
                "circuit_open",
            ):
                if not response.ok and raise_on_error:
                    raise ServiceError(response)
                return response
            if attempts_left <= 0:
                if raise_on_error:
                    raise ServiceError(response)
                return response
            attempts_left -= 1
            self.backoffs += 1
            time.sleep(backoff_delay(response.retry_after_s, max_backoff_s))

    def _roundtrip(self, request: ServiceRequest) -> ServiceResponse:
        """One request/response exchange, surviving connection loss.

        A send/receive failure (including a torn response line) marks
        the connection dead; with a known address and budget left the
        client reconnects and resends the *same* request — the daemon's
        idempotency cache guarantees at-most-once execution.  Beyond the
        budget a :class:`ServiceConnectionError` carrying the request id
        is raised, and later calls fail fast until a reconnect succeeds.
        """
        resends_left = self.reconnect if self._address is not None else 0
        while True:
            try:
                if self._dead:
                    raise ConnectionError("connection previously failed")
                self._sock.sendall(encode_message(request.to_wire()))
                self.requests_sent += 1
                line = self._file.readline(MAX_MESSAGE_BYTES + 2)
                if not line or not line.endswith(b"\n"):
                    # Empty = clean EOF; no newline = torn frame.  Either
                    # way the stream is unusable mid-request.
                    raise ConnectionError("service connection closed mid-request")
                return ServiceResponse.from_wire(decode_message(line))
            except (ConnectionError, OSError) as error:
                # socket.timeout is an OSError: a timed-out stream is
                # desynchronized, so it is treated as dead too.
                self._mark_dead()
                if resends_left <= 0:
                    raise ServiceConnectionError(
                        f"service connection lost during request "
                        f"{request.id or '<unassigned>'}: {error}",
                        request_id=request.id,
                        client=self.client,
                    ) from error
                resends_left -= 1
                try:
                    self._reconnect()
                except OSError as reconnect_error:
                    raise ServiceConnectionError(
                        f"reconnect failed during request {request.id}: "
                        f"{reconnect_error}",
                        request_id=request.id,
                        client=self.client,
                    ) from reconnect_error
                self.resends += 1

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.submit("ping", raise_on_error=True).result

    def health(self) -> Dict[str, Any]:
        return self.submit("health", raise_on_error=True).result

    def metrics(self) -> Dict[str, Any]:
        return self.submit("metrics", raise_on_error=True).result

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.submit(
            "shutdown", {"drain": drain}, raise_on_error=True
        ).result

    def render(
        self,
        scene: str,
        algorithm: str = "3dgs",
        voxel_size: Optional[float] = None,
        resolution_scale: float = 1.0,
        retries: int = 0,
        deadline_s: Optional[float] = None,
        **extra: Any,
    ) -> ServiceResponse:
        payload: Dict[str, Any] = {
            "scene": scene,
            "algorithm": algorithm,
            "resolution_scale": resolution_scale,
        }
        if voxel_size is not None:
            payload["voxel_size"] = voxel_size
        payload.update(extra)
        return self.submit("render", payload, retries=retries, deadline_s=deadline_s)

    def sweep(
        self,
        base: Optional[Dict[str, Any]] = None,
        grid: Optional[Dict[str, Any]] = None,
        retries: int = 0,
        deadline_s: Optional[float] = None,
        **grid_kwargs: Any,
    ) -> ServiceResponse:
        merged = dict(grid or {})
        merged.update(grid_kwargs)
        payload: Dict[str, Any] = {"grid": merged}
        if base:
            payload["base"] = base
        return self.submit("sweep", payload, retries=retries, deadline_s=deadline_s)

    def trajectory(
        self,
        spec: Any = None,
        retries: int = 0,
        deadline_s: Optional[float] = None,
        **spec_fields: Any,
    ) -> ServiceResponse:
        """Submit a trajectory workload.

        ``spec`` is a :class:`~repro.api.spec.TrajectorySpec` (anything
        with ``to_dict()``) or a spec-shaped mapping; keyword fields build
        or extend the mapping form (``client.trajectory(scene="train",
        path="orbit", frames=24)``).
        """
        if spec is None:
            payload_spec: Dict[str, Any] = dict(spec_fields)
        elif hasattr(spec, "to_dict"):
            if spec_fields:
                raise TypeError(
                    "pass a TrajectorySpec or spec fields, not both"
                )
            payload_spec = spec.to_dict()
        else:
            payload_spec = dict(spec)
            payload_spec.update(spec_fields)
        return self.submit(
            "trajectory", {"spec": payload_spec}, retries=retries, deadline_s=deadline_s
        )

    def experiment(
        self,
        name: str,
        retries: int = 0,
        deadline_s: Optional[float] = None,
        **options: Any,
    ) -> ServiceResponse:
        return self.submit(
            "experiment",
            {"name": name, "options": options},
            retries=retries,
            deadline_s=deadline_s,
        )


def scrape_http(address: Address, path: str, timeout: float = 5.0) -> Dict[str, Any]:
    """Fetch ``/healthz`` or ``/metrics`` over the daemon's HTTP shim.

    Works against TCP addresses via :mod:`urllib`; unix-socket daemons
    are scraped with a raw socket (urllib has no unix transport).
    """
    address = tuple(address)
    if address[0] == "tcp":
        url = f"http://{address[1]}:{int(address[2])}{path}"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    if address[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(address[1])
            sock.sendall(
                f"GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n".encode("latin-1")
            )
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            sock.close()
        raw = b"".join(chunks)
        header, _, body = raw.partition(b"\r\n\r\n")
        status_line = header.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = status_line.split()
        if len(parts) < 2 or parts[1] != "200":
            raise ProtocolError(f"HTTP scrape failed: {status_line}")
        return json.loads(body.decode("utf-8"))
    raise ValueError(f"unknown address scheme {address[0]!r}")
