"""Blocking client of the render service daemon.

:class:`ServiceClient` speaks the NDJSON protocol over one socket
connection (TCP or unix) and exposes convenience wrappers per request
kind.  It is deliberately synchronous — examples, benchmarks and CI
smoke drive the daemon from plain scripts and threads; concurrency comes
from multiple clients, matching how the daemon schedules fairness.

``submit`` optionally retries admission rejects: a ``queue_full`` /
``draining`` response carries ``retry_after_s``, and with
``retries > 0`` the client sleeps that hint (bounded) and resubmits.
"""

from __future__ import annotations

import json
import random
import socket
import time
import urllib.request
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    ServiceRequest,
    ServiceResponse,
    decode_message,
    encode_message,
)

Address = Union[Tuple[str, ...], Sequence[str]]

#: Backoff used when a reject carries no ``retry_after_s`` hint at all.
DEFAULT_BACKOFF_S = 0.1

#: Jitter fraction added on top of the hinted backoff (plus a 10 ms floor
#: so even a zero hint desynchronizes resubmissions).
BACKOFF_JITTER = 0.25


def backoff_delay(
    hint: Optional[float],
    max_backoff_s: float = 5.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Seconds to sleep before resubmitting after an admission reject.

    ``hint`` is the daemon's ``retry_after_s``.  A ``0.0`` hint means
    "retry immediately" and is honored — only a missing hint (``None``)
    falls back to :data:`DEFAULT_BACKOFF_S`.  A bounded random jitter
    (up to ``BACKOFF_JITTER`` of the base, plus 10 ms) is added so a
    fleet of clients rejected in the same instant does not resubmit in
    lockstep; the total never exceeds ``max_backoff_s``.
    """
    base = DEFAULT_BACKOFF_S if hint is None else max(0.0, float(hint))
    base = min(float(max_backoff_s), base)
    jitter = (rng or random).uniform(0.0, BACKOFF_JITTER * base + 0.01)
    return max(0.0, min(float(max_backoff_s), base + jitter))


class ServiceError(RuntimeError):
    """A request failed and ``raise_on_error`` was set."""

    def __init__(self, response: ServiceResponse) -> None:
        self.response = response
        super().__init__(f"[{response.code or 'error'}] {response.error}")


class ServiceClient:
    """One connection to a running :class:`~repro.service.daemon.ServiceDaemon`.

    Usable as a context manager::

        with ServiceClient.connect(("tcp", "127.0.0.1", 7340)) as client:
            result = client.render("lego", resolution_scale=0.25)
    """

    def __init__(
        self,
        sock: socket.socket,
        client: str = "anon",
        timeout: float = 60.0,
    ) -> None:
        self._sock = sock
        self._sock.settimeout(timeout)
        self._file = sock.makefile("rb")
        self.client = client
        self.timeout = timeout
        self.requests_sent = 0
        #: Admission rejects this client slept through and resubmitted.
        self.backoffs = 0

    # ------------------------------------------------------------------
    @classmethod
    def connect(
        cls,
        address: Address,
        client: str = "anon",
        timeout: float = 60.0,
        connect_timeout: float = 5.0,
    ) -> "ServiceClient":
        """Open a connection to ``("tcp", host, port)`` or ``("unix", path)``."""
        address = tuple(address)
        if address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(connect_timeout)
            sock.connect(address[1])
        elif address[0] == "tcp":
            sock = socket.create_connection(
                (address[1], int(address[2])), timeout=connect_timeout
            )
        else:
            raise ValueError(f"unknown address scheme {address[0]!r}")
        return cls(sock, client=client, timeout=timeout)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        retries: int = 0,
        max_backoff_s: float = 5.0,
        raise_on_error: bool = False,
    ) -> ServiceResponse:
        """Send one request and block for its response.

        With ``retries > 0``, admission rejects (``queue_full`` /
        ``draining``) are retried after the daemon's ``retry_after_s``
        hint plus bounded jitter (see :func:`backoff_delay`; the sleep is
        capped at ``max_backoff_s`` and a ``0.0`` hint is honored).  Other
        failures are returned (or raised) as-is.
        """
        attempts_left = max(0, int(retries))
        while True:
            response = self._roundtrip(kind, payload or {})
            if response.ok or response.code not in ("queue_full", "draining"):
                if not response.ok and raise_on_error:
                    raise ServiceError(response)
                return response
            if attempts_left <= 0:
                if raise_on_error:
                    raise ServiceError(response)
                return response
            attempts_left -= 1
            self.backoffs += 1
            time.sleep(backoff_delay(response.retry_after_s, max_backoff_s))

    def _roundtrip(self, kind: str, payload: Dict[str, Any]) -> ServiceResponse:
        request = ServiceRequest(kind=kind, payload=payload, client=self.client)
        self._sock.sendall(encode_message(request.to_wire()))
        self.requests_sent += 1
        line = self._file.readline(MAX_MESSAGE_BYTES + 2)
        if not line:
            raise ConnectionError("service connection closed mid-request")
        message = decode_message(line)
        response = ServiceResponse.from_wire(message)
        return response

    # ------------------------------------------------------------------
    # convenience wrappers
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.submit("ping", raise_on_error=True).result

    def health(self) -> Dict[str, Any]:
        return self.submit("health", raise_on_error=True).result

    def metrics(self) -> Dict[str, Any]:
        return self.submit("metrics", raise_on_error=True).result

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.submit(
            "shutdown", {"drain": drain}, raise_on_error=True
        ).result

    def render(
        self,
        scene: str,
        algorithm: str = "3dgs",
        voxel_size: Optional[float] = None,
        resolution_scale: float = 1.0,
        retries: int = 0,
        **extra: Any,
    ) -> ServiceResponse:
        payload: Dict[str, Any] = {
            "scene": scene,
            "algorithm": algorithm,
            "resolution_scale": resolution_scale,
        }
        if voxel_size is not None:
            payload["voxel_size"] = voxel_size
        payload.update(extra)
        return self.submit("render", payload, retries=retries)

    def sweep(
        self,
        base: Optional[Dict[str, Any]] = None,
        grid: Optional[Dict[str, Any]] = None,
        retries: int = 0,
        **grid_kwargs: Any,
    ) -> ServiceResponse:
        merged = dict(grid or {})
        merged.update(grid_kwargs)
        payload: Dict[str, Any] = {"grid": merged}
        if base:
            payload["base"] = base
        return self.submit("sweep", payload, retries=retries)

    def trajectory(
        self,
        spec: Any = None,
        retries: int = 0,
        **spec_fields: Any,
    ) -> ServiceResponse:
        """Submit a trajectory workload.

        ``spec`` is a :class:`~repro.api.spec.TrajectorySpec` (anything
        with ``to_dict()``) or a spec-shaped mapping; keyword fields build
        or extend the mapping form (``client.trajectory(scene="train",
        path="orbit", frames=24)``).
        """
        if spec is None:
            payload_spec: Dict[str, Any] = dict(spec_fields)
        elif hasattr(spec, "to_dict"):
            if spec_fields:
                raise TypeError(
                    "pass a TrajectorySpec or spec fields, not both"
                )
            payload_spec = spec.to_dict()
        else:
            payload_spec = dict(spec)
            payload_spec.update(spec_fields)
        return self.submit("trajectory", {"spec": payload_spec}, retries=retries)

    def experiment(
        self, name: str, retries: int = 0, **options: Any
    ) -> ServiceResponse:
        return self.submit(
            "experiment", {"name": name, "options": options}, retries=retries
        )


def scrape_http(address: Address, path: str, timeout: float = 5.0) -> Dict[str, Any]:
    """Fetch ``/healthz`` or ``/metrics`` over the daemon's HTTP shim.

    Works against TCP addresses via :mod:`urllib`; unix-socket daemons
    are scraped with a raw socket (urllib has no unix transport).
    """
    address = tuple(address)
    if address[0] == "tcp":
        url = f"http://{address[1]}:{int(address[2])}{path}"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    if address[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(address[1])
            sock.sendall(
                f"GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n".encode("latin-1")
            )
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            sock.close()
        raw = b"".join(chunks)
        header, _, body = raw.partition(b"\r\n\r\n")
        status_line = header.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = status_line.split()
        if len(parts) < 2 or parts[1] != "200":
            raise ProtocolError(f"HTTP scrape failed: {status_line}")
        return json.loads(body.decode("utf-8"))
    raise ValueError(f"unknown address scheme {address[0]!r}")
