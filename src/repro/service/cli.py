"""``repro-serve``: run the render service daemon from the command line.

Also reachable as ``python -m repro.service.cli`` and as the ``serve``
subcommand of :mod:`repro.analysis.runner`.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import List, Optional

from repro.chaos import FaultPlan
from repro.service.daemon import ServiceConfig, ServiceDaemon


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Run the streaming-render service daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="TCP listen host")
    parser.add_argument(
        "--port", type=int, default=7340, help="TCP listen port (0 = pick free)"
    )
    parser.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="listen on a unix socket instead of TCP",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker-actor fleet size"
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission queue bound (beyond it requests are rejected)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="per-request deadline",
    )
    parser.add_argument(
        "--degrade-depth",
        type=int,
        default=None,
        help="queue depth triggering resolution downshift (default: limit/2)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="crash-retry budget per request",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="persist in-flight requests here (resumed on restart)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="shared ResultStore directory for all workers",
    )
    parser.add_argument("--seed", type=int, default=0, help="session seed")
    parser.add_argument(
        "--sweep-jobs",
        type=int,
        default=1,
        help="process-parallel jobs inside each sweep request",
    )
    parser.add_argument(
        "--client-weight",
        action="append",
        default=[],
        metavar="NAME=WEIGHT",
        help="fair-queue weight override (repeatable)",
    )
    parser.add_argument(
        "--quarantine-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wedged-actor quarantine threshold (default: 4x heartbeat timeout)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive worker crashes per kind before the circuit opens",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="how long an open circuit rejects a kind before probing",
    )
    parser.add_argument(
        "--chaos-plan",
        default=None,
        metavar="JSON_OR_PATH",
        help=(
            "seeded fault-injection plan: a JSON object or a path to one "
            "(testing only; see repro.chaos.FAULT_POINTS)"
        ),
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    weights = {}
    for item in args.client_weight:
        name, _, value = item.partition("=")
        if not name or not value:
            raise SystemExit(f"bad --client-weight {item!r}; expected NAME=WEIGHT")
        try:
            weight = float(value)
        except ValueError:
            raise SystemExit(
                f"bad --client-weight {item!r}; WEIGHT must be a number"
            ) from None
        if not weight > 0:
            raise SystemExit(
                f"bad --client-weight {item!r}; WEIGHT must be > 0 "
                "(a non-positive fair-queue weight would starve the client)"
            )
        weights[name] = weight
    chaos_plan = None
    if args.chaos_plan:
        try:
            chaos_plan = FaultPlan.parse(args.chaos_plan)
        except (OSError, ValueError) as error:
            raise SystemExit(f"bad --chaos-plan: {error}") from None
    return ServiceConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix_socket,
        workers=args.workers,
        queue_limit=args.queue_limit,
        request_timeout_s=args.request_timeout,
        degrade_depth=args.degrade_depth,
        max_retries=args.max_retries,
        journal_dir=args.journal_dir,
        cache_dir=args.cache_dir,
        seed=args.seed,
        sweep_jobs=args.sweep_jobs,
        client_weights=weights,
        quarantine_after_s=args.quarantine_after,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        chaos=chaos_plan,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    daemon = ServiceDaemon(config_from_args(args))

    def _on_signal(signum, frame):  # pragma: no cover - interactive path
        daemon.request_stop(drain=True)

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _on_signal)
        except ValueError:  # pragma: no cover - non-main thread
            pass

    handle = daemon.start_in_thread()
    print(
        json.dumps({"listening": list(handle.address), "workers": daemon.config.workers}),
        flush=True,
    )
    try:
        handle.thread.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        daemon.request_stop(drain=True)
        handle.thread.join()
    return 0


if __name__ == "__main__":
    sys.exit(main())
