"""Supervision: heartbeat watchdog, actor restart, in-flight journaling.

The supervisor is the daemon's fault boundary.  It runs as an asyncio
task, periodically sweeping the actor fleet:

* a **dead actor** (thread exited without clean shutdown — real fault or
  injected crash) is replaced by a fresh actor, and its in-flight
  :class:`~repro.service.actors.RequestRecord` is re-admitted at the
  front of the fair queue with bounded retries
  (``attempts <= max_retries + 1``); a record past its retry budget gets
  a ``worker_crashed`` failure response instead of vanishing;
* a **wedged actor** (alive but heartbeat-stale beyond the watchdog
  timeout) is surfaced in metrics/health — Python threads cannot be
  killed, so the per-request timeout owns the client-facing outcome while
  the watchdog owns visibility.

:class:`Journal` persists admitted-but-unfinished work to disk (one JSON
file per request, atomic writes): a daemon that dies mid-flight resumes
its journaled requests on the next start instead of losing them.  Results
land in the shared :class:`~repro.api.store.ResultStore` where configured,
so resumed evaluation work is not wasted even though the original client
connection is gone.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro import chaos
from repro.api.store import atomic_write_json
from repro.service.protocol import ServiceRequest, error_response

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.daemon import ServiceDaemon


class Journal:
    """Disk persistence of admitted, unfinished requests.

    ``root=None`` disables journaling (every method is a no-op), so the
    daemon code never branches.  Entries are one JSON file per request id;
    writes are atomic (temp + rename), corrupt entries are moved aside to
    ``<name>.corrupt`` and skipped — a damaged journal degrades to losing
    that one request, never to failing startup.
    """

    def __init__(self, root: Optional[Path]) -> None:
        self.root = Path(root) if root else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _path(self, request_id: str) -> Path:
        assert self.root is not None
        return self.root / f"req-{request_id}.json"

    def record(self, request: ServiceRequest, accepted_at: float) -> None:
        """Persist one admitted request (idempotent per id)."""
        if self.root is None:
            return
        entry = {
            "id": request.id,
            "kind": request.kind,
            "client": request.client,
            "payload": request.payload,
            "accepted_at": accepted_at,
        }
        if chaos.fault("journal.torn_write") is not None:
            # Simulated torn write: truncated JSON landing without the
            # atomic rename — exactly what a crash mid-write leaves behind.
            text = json.dumps(entry)
            self._path(request.id).write_text(text[: max(1, len(text) // 2)])
            return
        atomic_write_json(self._path(request.id), entry)

    def discard(self, request_id: str) -> None:
        """Forget one finished request."""
        if self.root is None or not request_id:
            return
        try:
            self._path(request_id).unlink()
        except FileNotFoundError:
            pass

    def pending(self) -> List[Dict[str, Any]]:
        """Journaled requests of a previous run, oldest first."""
        if self.root is None:
            return []
        entries: List[Dict[str, Any]] = []
        for path in sorted(self.root.glob("req-*.json")):
            try:
                entry = json.loads(path.read_text())
                ServiceRequest.from_wire(entry)  # shape check
                entries.append(entry)
            except (json.JSONDecodeError, OSError, ValueError):
                try:
                    path.replace(path.with_name(path.name + ".corrupt"))
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        entries.sort(key=lambda entry: entry.get("accepted_at", 0.0))
        return entries

    def __len__(self) -> int:
        if self.root is None:
            return 0
        return sum(1 for _ in self.root.glob("req-*.json"))


class Supervisor:
    """Watchdog task restarting crashed actors and retrying their work.

    Parameters
    ----------
    daemon:
        The owning :class:`~repro.service.daemon.ServiceDaemon`.
    interval:
        Sweep period in seconds (crash-detection latency).
    max_retries:
        How many times one request may be re-dispatched after a crash;
        the default of 1 means "retried exactly once, then failed".
    heartbeat_timeout:
        An alive-but-silent actor is reported as stalled beyond this.
    quarantine_after:
        A busy actor heartbeat-silent beyond this is *quarantined*: a
        replacement is spawned in its fleet slot so capacity is restored,
        while the wedged thread keeps running outside dispatch (Python
        threads cannot be killed).  ``None`` derives 4x the heartbeat
        timeout — long legitimate renders stall first, quarantine later.
    """

    def __init__(
        self,
        daemon: "ServiceDaemon",
        interval: float = 0.05,
        max_retries: int = 1,
        heartbeat_timeout: float = 5.0,
        quarantine_after: Optional[float] = None,
    ) -> None:
        self.daemon = daemon
        self.interval = interval
        self.max_retries = max_retries
        self.heartbeat_timeout = heartbeat_timeout
        self.quarantine_after = (
            4.0 * heartbeat_timeout if quarantine_after is None else quarantine_after
        )
        self.restarts = 0
        self.retried = 0
        self.dropped = 0
        #: Stall *incidents*, not sweeps: a wedged actor counts once per
        #: incident and is re-armed when its heartbeat recovers.
        self.stalled = 0
        self.quarantined = 0
        self._stopping = False

    def stop(self) -> None:
        self._stopping = True

    # ------------------------------------------------------------------
    async def run(self) -> None:
        """The supervision loop; cancelled (or stopped) at shutdown."""
        while not self._stopping:
            self.sweep()
            await asyncio.sleep(self.interval)

    def sweep(self) -> None:
        """One pass over the fleet (synchronous, also called by tests)."""
        for position, actor in enumerate(list(self.daemon.actors)):
            if actor.stopped:
                continue
            if not actor.is_alive() and actor.ident is not None:
                self._restart(position, actor)
                continue
            age = actor.heartbeat_age()
            if actor.is_alive() and actor.busy and age > self.heartbeat_timeout:
                if not actor.stall_flagged:
                    # One incident, counted once; threads cannot be
                    # killed, and the per-request timeout still owns the
                    # client outcome.
                    actor.stall_flagged = True
                    self.stalled += 1
                    self.daemon.log_event(
                        "actor_stalled",
                        actor=actor.name,
                        heartbeat_age_s=round(age, 3),
                    )
                if age > self.quarantine_after and not actor.quarantined:
                    # Wedged beyond doubt: restore fleet capacity by
                    # replacing the slot; the stuck thread is tracked and
                    # excluded from dispatch until it completes or dies.
                    self.quarantined += 1
                    self.daemon.log_event(
                        "actor_quarantined",
                        actor=actor.name,
                        heartbeat_age_s=round(age, 3),
                        request=(
                            actor.current.request.id
                            if actor.current is not None
                            else None
                        ),
                    )
                    self.daemon.quarantine_actor(position, actor)
            elif actor.stall_flagged:
                actor.stall_flagged = False
                self.daemon.log_event("actor_recovered", actor=actor.name)

    def _restart(self, position: int, actor) -> None:
        """Replace one dead actor and re-admit (or fail) its request."""
        self.restarts += 1
        record = actor.current
        self.daemon.log_event(
            "actor_restart",
            actor=actor.name,
            crashed=actor.crashed,
            request=record.request.id if record is not None else None,
            attempts=record.attempts if record is not None else None,
        )
        replacement = self.daemon.spawn_actor(position)
        if record is None or record.done:
            return
        # The crashed actor held an in-flight record: it left dispatch
        # accounting open, so settle it here — either back into the queue
        # or as a terminal failure.
        self.daemon.settle_crashed(record)
        self.daemon.breaker.record_failure(record.request.kind)
        if record.attempts <= self.max_retries:
            self.retried += 1
            self.daemon.log_event(
                "request_retried", request=record.request.id, attempts=record.attempts
            )
            self.daemon.requeue(record)
        else:
            self.dropped += 1
            self.daemon.fail_record(
                record,
                error_response(
                    "worker_crashed",
                    f"worker crashed {record.attempts} time(s) executing "
                    f"request {record.request.id}; retry budget exhausted",
                    request_id=record.request.id,
                ),
            )
        del replacement  # already registered by spawn_actor

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "restarts": self.restarts,
            "retried": self.retried,
            "dropped": self.dropped,
            "stalled": self.stalled,
            "quarantined": self.quarantined,
        }


def now() -> float:
    """Wall-clock seconds (journal timestamps; monotonic is per-boot)."""
    return time.time()
