"""Bounded admission queue with per-client weighted fair scheduling.

:class:`FairQueue` is the daemon's request queue.  Two properties matter:

* **Admission control** — the queue is bounded; a push beyond
  ``max_depth`` raises :class:`QueueFull` instead of growing without
  limit, and the daemon converts that into a reject-with-retry-after
  response.  Excess load is *never* silently buffered: a client either
  gets a slot or an immediate, bounded-cost refusal.

* **Weighted fair scheduling** — requests are popped in virtual-time
  order (classic weighted fair queueing): each client's request gets a
  virtual finish tag ``start + cost / weight`` where ``start`` is the
  later of the queue's virtual clock and the client's previous finish
  tag.  A client that enqueues a burst only advances *its own* finish
  tags, so another client's single request scheduled at the current
  virtual time overtakes most of the burst — one heavy client cannot
  starve light ones, and a 2x-weight client receives ~2x the service
  share under contention.

The queue is synchronous and lock-free by construction (the daemon's
event loop is its only caller); :meth:`pop` order for a fixed push
sequence is fully deterministic, which the fairness tests pin.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Default bound on queued (not yet dispatched) requests.
DEFAULT_MAX_DEPTH = 64


class QueueFull(RuntimeError):
    """The admission queue is at capacity; the caller must reject."""

    def __init__(self, depth: int, max_depth: int) -> None:
        self.depth = depth
        self.max_depth = max_depth
        super().__init__(f"admission queue full ({depth}/{max_depth})")


@dataclass
class _Entry:
    """One queued item with its virtual finish tag and arrival sequence."""

    finish: float
    seq: int
    item: Any


@dataclass
class FairQueue:
    """Bounded weighted-fair request queue (virtual-time WFQ).

    Parameters
    ----------
    max_depth:
        Maximum queued items; pushes beyond it raise :class:`QueueFull`.
    default_weight:
        Service weight of clients without an explicit entry in
        ``weights``.  Higher weight = earlier finish tags = larger share.
    weights:
        Per-client weight overrides.
    """

    max_depth: int = DEFAULT_MAX_DEPTH
    default_weight: float = 1.0
    weights: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.default_weight <= 0:
            raise ValueError(f"default_weight must be > 0, got {self.default_weight}")
        validated: Dict[str, float] = {}
        for client, weight in dict(self.weights).items():
            try:
                value = float(weight)
            except (TypeError, ValueError):
                raise ValueError(
                    f"weight for client {client!r} must be a number, got {weight!r}"
                ) from None
            if not value > 0:  # also rejects NaN
                raise ValueError(
                    f"weight for client {client!r} must be > 0, got {weight!r}"
                )
            validated[client] = value
        self.weights = validated
        #: Per-client FIFO of entries; tags within one client are monotonic.
        self._queues: "OrderedDict[str, Deque[_Entry]]" = OrderedDict()
        #: Virtual clock: the finish tag of the last popped entry.
        self._virtual = 0.0
        #: Last assigned finish tag per client (idle clients rejoin at the
        #: current virtual time, not at their stale tag).
        self._last_finish: Dict[str, float] = {}
        self._depth = 0
        self._seq = 0
        self.pushed = 0
        self.popped = 0
        self.rejected = 0
        self.peak_depth = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._depth

    def depth_of(self, client: str) -> int:
        """Queued items of one client."""
        return len(self._queues.get(client, ()))

    def clients(self) -> List[str]:
        """Clients with queued items, in first-seen order."""
        return [client for client, entries in self._queues.items() if entries]

    def weight_of(self, client: str) -> float:
        """Service weight of ``client`` (overrides are validated > 0)."""
        return self.weights.get(client, self.default_weight)

    # ------------------------------------------------------------------
    def push(
        self,
        client: str,
        item: Any,
        cost: float = 1.0,
        front: bool = False,
    ) -> None:
        """Enqueue one item for ``client``.

        ``cost`` scales the virtual finish tag (an expensive request eats
        more of its client's share).  ``front=True`` re-admits a
        supervisor-retried request at the current virtual time ahead of
        its client's backlog — a retry never re-queues behind work that
        arrived after it.  Raises :class:`QueueFull` at capacity (retries
        are exempt: re-admitting in-flight work can never exceed the
        depth the queue already admitted).
        """
        if not front and self._depth >= self.max_depth:
            self.rejected += 1
            raise QueueFull(self._depth, self.max_depth)
        entries = self._queues.setdefault(client, deque())
        self._seq += 1
        if front:
            entries.appendleft(_Entry(finish=self._virtual, seq=self._seq, item=item))
        else:
            start = max(self._virtual, self._last_finish.get(client, 0.0))
            finish = start + max(cost, 0.0) / self.weight_of(client)
            self._last_finish[client] = finish
            entries.append(_Entry(finish=finish, seq=self._seq, item=item))
        self._depth += 1
        self.pushed += 1
        self.peak_depth = max(self.peak_depth, self._depth)

    def pop(self) -> Optional[Any]:
        """The next item in weighted-fair order, or ``None`` when empty."""
        best: Optional[Tuple[float, int, str]] = None
        for client, entries in self._queues.items():
            if not entries:
                continue
            head = entries[0]
            tag = (head.finish, head.seq, client)
            if best is None or tag < best:
                best = tag
        if best is None:
            return None
        entry = self._queues[best[2]].popleft()
        self._virtual = max(self._virtual, entry.finish)
        self._depth -= 1
        self.popped += 1
        return entry.item

    def drain(self) -> List[Any]:
        """Pop everything in fair order (used at shutdown)."""
        items = []
        while self._depth:
            items.append(self.pop())
        return items

    def shed(self, predicate: Callable[[Any], bool]) -> List[Any]:
        """Remove and return every queued item matching ``predicate``.

        Used by the daemon to evict dead weight — expired-deadline or
        already-done records — *before* rejecting new work: an entry that
        will never be dispatched should not hold a queue slot against
        live traffic.  Fair-scheduling state (virtual clock, finish tags)
        is untouched; surviving entries keep their order.
        """
        shed: List[Any] = []
        for entries in self._queues.values():
            kept: Deque[_Entry] = deque()
            for entry in entries:
                if predicate(entry.item):
                    shed.append(entry.item)
                else:
                    kept.append(entry)
            if len(kept) != len(entries):
                entries.clear()
                entries.extend(kept)
        self._depth -= len(shed)
        self.popped += len(shed)
        return shed

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counter snapshot for the metrics endpoint."""
        return {
            "depth": self._depth,
            "max_depth": self.max_depth,
            "peak_depth": self.peak_depth,
            "pushed": self.pushed,
            "popped": self.popped,
            "rejected": self.rejected,
            "per_client_depth": {
                client: len(entries)
                for client, entries in self._queues.items()
                if entries
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FairQueue(depth={self._depth}/{self.max_depth}, clients={self.clients()})"
