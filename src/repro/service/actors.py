"""Worker actors: threads that execute service requests off the event loop.

A :class:`WorkerActor` is the resource-owning actor of the runtime: it
holds a private :class:`~repro.api.session.Session` built by the daemon's
session factory — sharing the daemon's
:class:`~repro.engine.service.RenderService` (so frame-preparation and
renderer caches are shared across actors) and its
:class:`~repro.api.store.ResultStore` — and executes one
:class:`RequestRecord` at a time from its inbox.  Completion is reported
back into the asyncio loop via a thread-safe callback; the actor never
touches the event loop directly.

Heartbeats: the actor stamps ``last_beat`` every inbox poll and around
every request, so the supervisor can distinguish *busy* from *wedged*.
Crash injection (``payload["inject_crash_attempts"]``) makes the thread
die mid-request exactly like a real fault would — the supervision tests
and the CI acceptance gate drive recovery through it.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro import chaos
from repro.service.protocol import ServiceRequest, ServiceResponse, error_response

#: Floor of overload-degraded resolution scales; below this the simulated
#: evaluation is too coarse to say anything.
MIN_RESOLUTION_SCALE = 0.125


@dataclass
class RequestRecord:
    """One admitted request moving through queue, actor and response path."""

    request: ServiceRequest
    future: Any  # asyncio.Future, created by the daemon's loop
    accepted_at: float
    attempts: int = 0
    dispatch_index: int = -1
    dispatched_at: float = 0.0
    degraded: Optional[Dict[str, Any]] = None
    #: True once the dispatcher evaluated the degradation decision for this
    #: record.  The decision is per *request*, not per dispatch: a crash-
    #: retried record keeps its first dispatch's payload (already downshifted
    #: or not) instead of halving ``resolution_scale`` again.
    degrade_decided: bool = False
    #: Set once the response side is finished with the record (response
    #: delivered, timed out, or failed) — late completions are dropped and
    #: the dispatcher skips done records it pops.
    done: bool = False
    #: True when the record was resumed from the journal (no live client).
    resumed: bool = False
    #: Absolute monotonic deadline computed at admission from the
    #: request's relative ``deadline_s``; ``None`` means no deadline.
    deadline_at: Optional[float] = None


def _image_checksum(image: Any) -> str:
    """Stable content hash of a rendered image (parity across retries)."""
    import numpy as np

    data = np.ascontiguousarray(image)
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


def execute_request(
    session,
    record: RequestRecord,
    on_execution: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> ServiceResponse:
    """Evaluate one work request on a session; never raises.

    Evaluation errors come back as ``ok: false`` responses with code
    ``evaluation_failed`` — a bad request must not look like a worker
    crash to the supervisor.  ``on_execution`` receives the
    :class:`~repro.api.executor.ExecutionReport` dict of sweep-shaped
    requests (the daemon surfaces the latest one in ``/metrics``).
    """
    request = record.request
    if record.deadline_at is not None and time.monotonic() >= record.deadline_at:
        # The deadline passed between dispatch and execution; starting the
        # work now would only burn an actor on a response nobody wants.
        return error_response(
            "deadline_exceeded",
            f"request {request.id} passed its deadline before execution",
            request_id=request.id,
        )
    payload = dict(request.payload)
    try:
        result = _execute(session, request.kind, payload, on_execution)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as error:
        return error_response(
            "evaluation_failed",
            f"{type(error).__name__}: {error}",
            request_id=request.id,
        )
    response = ServiceResponse(ok=True, result=result, id=request.id)
    response.meta["attempts"] = record.attempts
    response.meta["dispatch_index"] = record.dispatch_index
    if record.degraded:
        response.meta["degraded"] = dict(record.degraded)
    return response


def _execute(
    session,
    kind: str,
    payload: Dict[str, Any],
    on_execution: Optional[Callable[[Dict[str, Any]], None]],
) -> Dict[str, Any]:
    if kind == "sleep":
        seconds = float(payload.get("seconds", 0.0))
        time.sleep(max(0.0, seconds))
        return {"slept_s": seconds}

    if kind == "render":
        context = session.context(
            payload["scene"],
            algorithm=payload.get("algorithm", "3dgs"),
            voxel_size=payload.get("voxel_size"),
            resolution_scale=float(payload.get("resolution_scale", 1.0)),
        )
        image = context.streaming_output.image
        return {
            "scene": context.scene,
            "algorithm": context.algorithm,
            "resolution_scale": float(payload.get("resolution_scale", 1.0)),
            "width": int(image.shape[1]),
            "height": int(image.shape[0]),
            "baseline_psnr": float(context.baseline_psnr),
            "streaming_psnr": float(context.streaming_psnr),
            "image_sha256": _image_checksum(image),
            "telemetry": dict(getattr(context.streaming_output, "telemetry", {}) or {}),
        }

    if kind == "trajectory":
        from repro.api.spec import TrajectorySpec

        spec = TrajectorySpec.from_dict(payload["spec"])
        result = session.run_trajectory(spec)
        return {
            "label": spec.label,
            "scene": spec.scene,
            "path": spec.path_name,
            "frames": int(result.metrics.get("frames", spec.frames)),
            "resolution_scale": float(spec.resolution_scale),
            "metrics": result.metrics,
            "summary": dict(result.payload.get("summary") or {}),
            "image_checksums": list(result.payload.get("image_checksums") or []),
        }

    if kind == "point":
        from repro.api.spec import ExperimentSpec

        spec = ExperimentSpec.from_dict(payload["spec"])
        result = session.run(spec)
        return {"label": spec.label, "metrics": result.metrics}

    if kind == "sweep":
        from repro.api.spec import ExperimentSpec

        base = payload.get("base")
        spec = ExperimentSpec.from_dict(base) if base else None
        grid = dict(payload.get("grid") or {})
        if not grid:
            raise ValueError("sweep payload needs a non-empty 'grid'")
        sweep_result = session.sweep(spec, **grid)
        execution = sweep_result.meta.get("execution")
        if on_execution is not None and execution is not None:
            on_execution(dict(execution))
        return {
            "swept": sweep_result.swept,
            "labels": [point.meta.get("label", "") for point in sweep_result.results],
            "metrics": [point.metrics for point in sweep_result.results],
            "execution": execution,
        }

    if kind == "experiment":
        name = payload["name"]
        options = dict(payload.get("options") or {})
        result = session.run(name, **options)
        return {"name": name, "title": result.title, "metrics": result.metrics}

    raise ValueError(f"kind {kind!r} is not an actor-executed request")


class WorkerActor(threading.Thread):
    """One supervised worker thread with an inbox and a warm session.

    Parameters
    ----------
    name:
        Actor name (``worker-N``; shows up in metrics and events).
    session_factory:
        Builds the actor's session on its own thread (so session state is
        thread-affine from birth).
    on_complete:
        ``(actor, record, response)`` callback, invoked from the actor
        thread; the daemon trampolines it into the event loop.
    on_execution:
        Optional sink for sweep execution reports.
    heartbeat_interval:
        Inbox poll period — also the heartbeat resolution.
    """

    #: Sentinel shutting the actor down cleanly.
    _POISON = object()

    def __init__(
        self,
        name: str,
        session_factory: Callable[[], Any],
        on_complete: Callable[["WorkerActor", RequestRecord, ServiceResponse], None],
        on_execution: Optional[Callable[[Dict[str, Any]], None]] = None,
        heartbeat_interval: float = 0.05,
    ) -> None:
        super().__init__(name=name, daemon=True)
        self._session_factory = session_factory
        self._on_complete = on_complete
        self._on_execution = on_execution
        self.heartbeat_interval = heartbeat_interval
        self.inbox: "queue.Queue[Any]" = queue.Queue(maxsize=1)
        self.session = None
        self.last_beat = time.monotonic()
        self.busy = False
        self.current: Optional[RequestRecord] = None
        self.crashed = False
        self.stopped = False
        self.tasks_done = 0
        #: Supervisor bookkeeping: the current stall incident has been
        #: counted/logged (reset when the heartbeat recovers).
        self.stall_flagged = False
        #: Wedged beyond the quarantine threshold: replaced in the fleet,
        #: excluded from dispatch, poisoned when it finally completes.
        self.quarantined = False

    # ------------------------------------------------------------------
    def submit(self, record: RequestRecord) -> None:
        """Hand one record to the actor (dispatcher side)."""
        self.current = record
        self.busy = True
        self.inbox.put(record)

    def stop(self) -> None:
        """Ask the actor to exit after its current request."""
        self.inbox.put(self._POISON)

    def heartbeat_age(self) -> float:
        """Seconds since the actor last proved liveness."""
        return time.monotonic() - self.last_beat

    # ------------------------------------------------------------------
    def run(self) -> None:  # pragma: no cover - exercised via the daemon
        self.session = self._session_factory()
        try:
            while True:
                self.last_beat = time.monotonic()
                try:
                    item = self.inbox.get(timeout=self.heartbeat_interval)
                except queue.Empty:
                    continue
                if item is self._POISON:
                    self.stopped = True
                    return
                record: RequestRecord = item
                self.last_beat = time.monotonic()
                crash_attempts = int(
                    record.request.payload.get("inject_crash_attempts", 0) or 0
                )
                if record.attempts <= crash_attempts:
                    # Simulated fault: die mid-request, leaving ``current``
                    # set, exactly like an uncaught worker failure.  The
                    # supervisor restarts us and re-enqueues the record.
                    self.crashed = True
                    return
                if chaos.fault("actor.crash") is not None:
                    self.crashed = True
                    return
                hang = chaos.fault("actor.hang")
                if hang is not None:
                    # Wedge without heartbeats: the watchdog sees a stall
                    # and, past the quarantine threshold, replaces us.
                    time.sleep(hang.delay_s)
                slow = chaos.fault("actor.slow_render")
                if slow is not None:
                    time.sleep(slow.delay_s)
                response = execute_request(
                    self.session, record, on_execution=self._on_execution
                )
                self.busy = False
                self.current = None
                self.tasks_done += 1
                self.last_beat = time.monotonic()
                self._on_complete(self, record, response)
        finally:
            session, self.session = self.session, None
            if session is not None and self.stopped:
                # Clean shutdown releases pools/segments; a crash keeps the
                # session object alive for post-mortem but its shm segments
                # belong to registries the daemon process still owns.
                try:
                    session.close()
                except Exception:
                    pass

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Liveness/throughput snapshot for the metrics endpoint."""
        return {
            "name": self.name,
            "alive": self.is_alive(),
            "busy": self.busy,
            "crashed": self.crashed,
            "quarantined": self.quarantined,
            "tasks_done": self.tasks_done,
            "heartbeat_age_s": round(self.heartbeat_age(), 3),
        }
