"""Wire protocol of the render service daemon.

One message is one JSON object on one ``\\n``-terminated line (NDJSON),
UTF-8 encoded.  A connection carries any number of request/response pairs
in order; concurrency comes from concurrent connections, not pipelining.
The same listening socket also answers plain ``GET /healthz`` and
``GET /metrics`` HTTP requests (the daemon sniffs the first line), so the
JSON protocol below only defines the actor-executed and control messages.

Requests name a *kind* (what to run), a *client* (the fairness identity
the admission queue schedules by) and a free-form ``payload``.  Responses
are ``ok`` + ``result`` or ``ok: false`` + ``error``/``code`` — with
``retry_after_s`` set when the daemon rejected the request at admission
(queue full, draining) and the client should back off and retry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Request kinds executed by a worker actor (queued, scheduled fairly).
WORK_KINDS = ("render", "trajectory", "point", "sweep", "experiment", "sleep")

#: Request kinds answered inline by the event loop (never queued).
CONTROL_KINDS = ("ping", "health", "metrics", "shutdown")

REQUEST_KINDS = WORK_KINDS + CONTROL_KINDS

#: Hard cap on one encoded message; a line beyond this is a protocol error
#: (protects the daemon from unbounded buffering on a hostile connection).
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

#: Error codes a response can carry.
ERROR_CODES = (
    "bad_request",
    "queue_full",
    "draining",
    "timeout",
    "deadline_exceeded",
    "circuit_open",
    "worker_crashed",
    "evaluation_failed",
)


class ProtocolError(ValueError):
    """A message violated the wire protocol (unparseable, oversized, wrong shape)."""


def encode_message(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline (JSON escapes embedded newlines)."""
    frame = json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(frame) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(frame)} bytes exceeds {MAX_MESSAGE_BYTES}")
    return frame


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received frame into a message dict."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(line)} bytes exceeds {MAX_MESSAGE_BYTES}")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"unparseable message: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    return message


@dataclass
class ServiceRequest:
    """One unit of work (or control query) submitted to the daemon.

    Attributes
    ----------
    kind:
        What to run — see :data:`WORK_KINDS` / :data:`CONTROL_KINDS`.
    payload:
        Kind-specific arguments (e.g. ``{"scene": "lego"}`` for a render).
    client:
        Fairness identity; the admission queue schedules per client, so
        every process of one tenant should send the same value.
    id:
        Request id; assigned by the daemon when empty, and echoed in the
        response and the journal.  A client that mints its own stable id
        can safely resend the request after a connection loss: the
        daemon deduplicates by id (idempotency key).
    deadline_s:
        Optional end-to-end deadline, in seconds from admission.  Work
        still queued past its deadline is shed with ``deadline_exceeded``
        instead of being dispatched; actors re-check before executing.
    """

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    client: str = "anon"
    id: str = ""
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ProtocolError(
                f"unknown request kind {self.kind!r}; available: {list(REQUEST_KINDS)}"
            )
        if not isinstance(self.payload, dict):
            raise ProtocolError("payload must be a JSON object")
        if not self.client or not isinstance(self.client, str):
            raise ProtocolError("client must be a non-empty string")
        if self.deadline_s is not None:
            try:
                self.deadline_s = float(self.deadline_s)
            except (TypeError, ValueError):
                raise ProtocolError("deadline_s must be a number") from None
            if self.deadline_s <= 0:
                raise ProtocolError(f"deadline_s must be > 0, got {self.deadline_s}")

    def to_wire(self) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "kind": self.kind,
            "payload": self.payload,
            "client": self.client,
            "id": self.id,
        }
        if self.deadline_s is not None:
            message["deadline_s"] = self.deadline_s
        return message

    @classmethod
    def from_wire(cls, message: Dict[str, Any]) -> "ServiceRequest":
        if "kind" not in message:
            raise ProtocolError("request is missing 'kind'")
        return cls(
            kind=message["kind"],
            payload=message.get("payload") or {},
            client=message.get("client") or "anon",
            id=str(message.get("id") or ""),
            deadline_s=message.get("deadline_s"),
        )


@dataclass
class ServiceResponse:
    """The daemon's answer to one request."""

    ok: bool
    result: Any = None
    error: str = ""
    code: str = ""
    retry_after_s: Optional[float] = None
    id: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        message: Dict[str, Any] = {"ok": self.ok, "id": self.id}
        if self.ok:
            message["result"] = self.result
        else:
            message["error"] = self.error
            message["code"] = self.code
        if self.retry_after_s is not None:
            message["retry_after_s"] = round(float(self.retry_after_s), 6)
        if self.meta:
            message["meta"] = self.meta
        return message

    @classmethod
    def from_wire(cls, message: Dict[str, Any]) -> "ServiceResponse":
        if "ok" not in message:
            raise ProtocolError("response is missing 'ok'")
        return cls(
            ok=bool(message["ok"]),
            result=message.get("result"),
            error=str(message.get("error") or ""),
            code=str(message.get("code") or ""),
            retry_after_s=message.get("retry_after_s"),
            id=str(message.get("id") or ""),
            meta=message.get("meta") or {},
        )


def error_response(
    code: str,
    error: str,
    request_id: str = "",
    retry_after_s: Optional[float] = None,
) -> ServiceResponse:
    """A failure response with a well-known code."""
    return ServiceResponse(
        ok=False, error=error, code=code, retry_after_s=retry_after_s, id=request_id
    )
