"""The render service daemon: asyncio server + dispatcher + telemetry.

:class:`ServiceDaemon` is the long-lived process around the library:

* it owns **one** :class:`~repro.engine.service.RenderService` and (when
  configured) **one** :class:`~repro.api.store.ResultStore`, shared by
  every worker actor's session — frame caches and cached results are
  process-wide, exactly as in a single embedded session;
* an asyncio server speaks the NDJSON protocol on TCP or a unix socket
  and answers plain ``GET /healthz`` / ``GET /metrics`` HTTP requests on
  the same port (first-line sniffing);
* admitted work flows through the bounded :class:`FairQueue`; a
  dispatcher coroutine pairs fair-order records with idle actors;
  completions are trampolined back into the loop thread-safely;
* under queue pressure the dispatcher **degrades** render/sweep work
  (halving ``resolution_scale`` down to a floor) and surfaces the
  downshift in the response ``meta``, trading fidelity for latency
  instead of timing out — the decision is made once per request, so a
  crash-retried request re-runs at its first dispatch's scale;
* the :class:`~repro.service.supervisor.Supervisor` task restarts crashed
  actors and re-enqueues their requests; the
  :class:`~repro.service.supervisor.Journal` resumes in-flight work after
  a daemon restart.

:meth:`ServiceDaemon.serve` blocks (the CLI path);
:meth:`ServiceDaemon.start_in_thread` returns a :class:`DaemonHandle`
(tests, benchmarks, and the examples embed the daemon this way).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import chaos
from repro.api.result import jsonify
from repro.api.session import Session
from repro.api.store import ResultStore
from repro.engine.service import RenderService
from repro.service.actors import MIN_RESOLUTION_SCALE, RequestRecord, WorkerActor
from repro.service.breaker import CircuitBreaker
from repro.service.protocol import (
    CONTROL_KINDS,
    MAX_MESSAGE_BYTES,
    ProtocolError,
    ServiceRequest,
    ServiceResponse,
    WORK_KINDS,
    decode_message,
    encode_message,
    error_response,
)
from repro.service.queueing import FairQueue, QueueFull
from repro.service.supervisor import Journal, Supervisor, now


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance.

    Attributes
    ----------
    host / port:
        TCP listen address; ``port=0`` picks a free port (tests).
    unix_path:
        When set, listen on a unix socket instead of TCP.
    workers:
        Worker-actor fleet size (concurrent requests in execution).
    queue_limit:
        Bound on admitted-but-undispatched requests; beyond it the daemon
        rejects with ``queue_full`` + ``retry_after_s``.
    request_timeout_s:
        Per-request deadline from admission to response.
    degrade_depth:
        Queue depth at (or above) which dispatched render/sweep work is
        degraded; ``None`` defaults to half the queue limit, ``0`` makes
        degradation unconditional.
    degrade_factor:
        Multiplier applied to ``resolution_scale`` per degradation step.
    max_retries:
        Crash-retry budget per request (1 = retried exactly once).
    heartbeat_timeout_s:
        Busy actor silent beyond this is reported as stalled.
    supervisor_interval_s:
        Supervision sweep period (crash-detection latency).
    journal_dir:
        Directory persisting in-flight requests across daemon restarts;
        ``None`` disables journaling.
    cache_dir:
        :class:`ResultStore` root shared by all actors; ``None`` disables.
    seed / sweep_jobs:
        Forwarded to every actor's :class:`Session`.
    client_weights:
        Fair-queue weight overrides per client name.
    drain_timeout_s:
        Upper bound on waiting for in-flight work at graceful shutdown.
    quarantine_after_s:
        A busy actor heartbeat-silent beyond this is quarantined (slot
        replaced, wedged thread excluded from dispatch); ``None``
        defaults to 4x ``heartbeat_timeout_s``.
    breaker_threshold / breaker_cooldown_s:
        Per-work-kind circuit breaker: after ``breaker_threshold``
        consecutive worker crashes executing one kind, that kind is
        rejected with ``circuit_open`` for ``breaker_cooldown_s``, then
        probed half-open.
    response_cache_size:
        Completed responses remembered by request id (LRU) so a client
        resend after connection loss is answered from cache instead of
        re-rendered.
    chaos:
        A :class:`~repro.chaos.plan.FaultPlan` (or its dict form)
        installed for the daemon's lifetime; ``None`` disables fault
        injection entirely (the hooks are a single global read).
    """

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None
    workers: int = 2
    queue_limit: int = 64
    request_timeout_s: float = 300.0
    degrade_depth: Optional[int] = None
    degrade_factor: float = 0.5
    max_retries: int = 1
    heartbeat_timeout_s: float = 5.0
    supervisor_interval_s: float = 0.05
    journal_dir: Optional[str] = None
    cache_dir: Optional[str] = None
    seed: int = 0
    sweep_jobs: int = 1
    client_weights: Dict[str, float] = field(default_factory=dict)
    drain_timeout_s: float = 30.0
    quarantine_after_s: Optional[float] = None
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    response_cache_size: int = 256
    chaos: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if not 0.0 < self.degrade_factor < 1.0:
            raise ValueError(
                f"degrade_factor must be in (0, 1), got {self.degrade_factor}"
            )
        if self.degrade_depth is None:
            self.degrade_depth = max(1, self.queue_limit // 2)
        if self.degrade_depth < 0:
            raise ValueError(f"degrade_depth must be >= 0, got {self.degrade_depth}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.quarantine_after_s is None:
            self.quarantine_after_s = 4.0 * self.heartbeat_timeout_s
        if self.quarantine_after_s <= 0:
            raise ValueError(
                f"quarantine_after_s must be > 0, got {self.quarantine_after_s}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ValueError(
                f"breaker_cooldown_s must be > 0, got {self.breaker_cooldown_s}"
            )
        if self.response_cache_size < 1:
            raise ValueError(
                f"response_cache_size must be >= 1, got {self.response_cache_size}"
            )


class DaemonHandle:
    """A daemon running on a background thread (embedded mode)."""

    def __init__(self, daemon: "ServiceDaemon", thread: threading.Thread) -> None:
        self.daemon = daemon
        self.thread = thread

    @property
    def address(self) -> Tuple[str, ...]:
        """``("tcp", host, port)`` or ``("unix", path)`` once listening."""
        assert self.daemon.address is not None, "daemon is not listening yet"
        return self.daemon.address

    def client(self, client: str = "anon", timeout: float = 60.0, reconnect: int = 1):
        """A connected :class:`~repro.service.client.ServiceClient`."""
        from repro.service.client import ServiceClient

        return ServiceClient.connect(
            self.address, client=client, timeout=timeout, reconnect=reconnect
        )

    def stop(self, drain: bool = True) -> None:
        """Ask the daemon to shut down (optionally draining the queue)."""
        self.daemon.request_stop(drain=drain)

    def join(self, timeout: Optional[float] = 30.0) -> None:
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():  # pragma: no cover - deadlock guard
            raise RuntimeError("service daemon thread did not exit")


class ServiceDaemon:
    """The long-lived render service around :mod:`repro.api`."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        #: Shared frame-preparation/renderer caches across all actors.
        self.service = RenderService()
        self.store: Optional[ResultStore] = (
            ResultStore(self.config.cache_dir) if self.config.cache_dir else None
        )
        self.queue = FairQueue(
            max_depth=self.config.queue_limit,
            weights=dict(self.config.client_weights),
        )
        self.journal = Journal(
            Path(self.config.journal_dir) if self.config.journal_dir else None
        )
        self.supervisor = Supervisor(
            self,
            interval=self.config.supervisor_interval_s,
            max_retries=self.config.max_retries,
            heartbeat_timeout=self.config.heartbeat_timeout_s,
            quarantine_after=self.config.quarantine_after_s,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.chaos_injector = chaos.build_injector(self.config.chaos)
        self.actors: List[WorkerActor] = []
        #: Wedged actors replaced in the fleet, still running outside
        #: dispatch; poisoned (and dropped) when they finally complete.
        self.quarantined_actors: List[WorkerActor] = []
        self.events: List[Dict[str, Any]] = []
        self.last_execution: Optional[Dict[str, Any]] = None
        self.address: Optional[Tuple[str, ...]] = None
        self.started_at: Optional[float] = None
        self.draining = False
        self.metrics = {
            "accepted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "timeouts": 0,
            "deadline_exceeded": 0,
            "breaker_rejected": 0,
            "resends_served": 0,
            "degraded": 0,
            "resumed": 0,
            "abandoned": 0,
        }
        self.per_client: Dict[str, Dict[str, int]] = {}
        self.per_kind: Dict[str, Dict[str, int]] = {}
        #: Completed responses by request id (LRU): resends after a
        #: connection loss are answered here instead of re-executed.
        self._responses: "OrderedDict[str, ServiceResponse]" = OrderedDict()
        #: Live (queued or in-flight) records by request id: a resend of
        #: an unfinished request joins the existing future.
        self._pending: Dict[str, RequestRecord] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._queue_event: Optional[asyncio.Event] = None
        self._idle: Optional["asyncio.Queue[WorkerActor]"] = None
        self._drain_on_stop = True
        self._in_flight = 0
        self._dispatch_count = 0
        self._actor_serial = 0
        self._request_serial = 0
        #: EMA of per-request service seconds, feeding retry-after hints.
        self._service_ema: Optional[float] = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------
    # actor fleet
    # ------------------------------------------------------------------
    def session_factory(self) -> Session:
        """A per-actor session sharing the daemon's service and store."""
        return Session(
            service=self.service,
            store=self.store,
            seed=self.config.seed,
            jobs=self.config.sweep_jobs,
        )

    def spawn_actor(self, position: Optional[int] = None) -> WorkerActor:
        """Start one actor and register it as idle.

        ``position`` replaces a dead actor in place (supervisor path);
        ``None`` appends (startup path).
        """
        self._actor_serial += 1
        actor = WorkerActor(
            name=f"worker-{self._actor_serial}",
            session_factory=self.session_factory,
            on_complete=self._on_complete_threadsafe,
            on_execution=self._on_execution_threadsafe,
            heartbeat_interval=min(0.05, self.config.heartbeat_timeout_s / 4),
        )
        actor.start()
        if position is None:
            self.actors.append(actor)
        else:
            self.actors[position] = actor
        assert self._idle is not None
        self._idle.put_nowait(actor)
        return actor

    def _on_execution_threadsafe(self, report: Dict[str, Any]) -> None:
        # Plain attribute write; last-writer-wins is the wanted semantic.
        self.last_execution = report

    def _on_complete_threadsafe(
        self, actor: WorkerActor, record: RequestRecord, response: ServiceResponse
    ) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():  # pragma: no cover - late completion
            return
        loop.call_soon_threadsafe(self._finish, actor, record, response)

    # ------------------------------------------------------------------
    # dispatch / completion (event-loop context)
    # ------------------------------------------------------------------
    def _finish(
        self, actor: WorkerActor, record: RequestRecord, response: ServiceResponse
    ) -> None:
        self._in_flight -= 1
        self.journal.discard(record.request.id)
        if record.dispatched_at:
            self._note_service_time(time.monotonic() - record.dispatched_at)
        # Any response from a live actor proves the kind executes without
        # crashing the worker (an evaluation failure is not a crash).
        self.breaker.record_success(record.request.kind)
        if record.done:
            # The response side already moved on (timeout); the work is
            # finished and cached where possible, the client reply is not.
            # Remember the real response anyway: a late resend by id gets
            # the result instead of the stale timeout.
            self.metrics["abandoned"] += 1
            self._remember_response(record, response)
        else:
            record.done = True
            outcome = "completed" if response.ok else "failed"
            self.metrics[outcome] += 1
            if response.code == "deadline_exceeded":
                self.metrics["deadline_exceeded"] += 1
            self._client_counter(record.request.client, outcome)
            self._kind_counter(record.request.kind, outcome)
            self._remember_response(record, response)
            if not record.future.done():
                record.future.set_result(response)
        if actor.quarantined:
            # The wedged thread finally completed; it is not in the fleet
            # anymore (a replacement holds its slot), so retire it.
            actor.stop()
            if actor in self.quarantined_actors:
                self.quarantined_actors.remove(actor)
            self.log_event("actor_unquarantined", actor=actor.name)
        elif actor.is_alive() and not actor.crashed and not actor.stopped:
            assert self._idle is not None
            self._idle.put_nowait(actor)

    def _remember_response(
        self, record: RequestRecord, response: ServiceResponse
    ) -> None:
        """Terminal bookkeeping: drop from pending, cache by id (LRU)."""
        request_id = record.request.id
        self._pending.pop(request_id, None)
        if not request_id:  # pragma: no cover - ids are always assigned
            return
        self._responses[request_id] = response
        self._responses.move_to_end(request_id)
        while len(self._responses) > self.config.response_cache_size:
            self._responses.popitem(last=False)

    def quarantine_actor(self, position: int, actor: WorkerActor) -> None:
        """Replace a wedged actor's fleet slot (supervisor path).

        The stuck thread cannot be killed; it keeps running outside the
        fleet list so the dispatcher never hands it work again, and its
        eventual completion (handled in :meth:`_finish`) retires it.  The
        replacement restores dispatch capacity immediately.
        """
        actor.quarantined = True
        self.quarantined_actors.append(actor)
        self.spawn_actor(position)

    def settle_crashed(self, record: RequestRecord) -> None:
        """Close dispatch accounting of a record whose actor died."""
        self._in_flight -= 1

    def requeue(self, record: RequestRecord) -> None:
        """Re-admit a crash-interrupted record ahead of the backlog."""
        self.queue.push(record.request.client, record, front=True)
        self._wake_dispatcher()

    def fail_record(self, record: RequestRecord, response: ServiceResponse) -> None:
        """Resolve a record with a terminal failure (supervisor path)."""
        self.journal.discard(record.request.id)
        if record.done:
            return
        record.done = True
        self.metrics["failed"] += 1
        self._client_counter(record.request.client, "failed")
        self._kind_counter(record.request.kind, "failed")
        self._remember_response(record, response)
        if not record.future.done():
            record.future.set_result(response)

    def log_event(self, event: str, **fields: Any) -> None:
        """Append one supervision/lifecycle event (kept bounded)."""
        entry = {"event": event, "at": round(now(), 3)}
        entry.update(fields)
        self.events.append(entry)
        del self.events[:-256]

    def _wake_dispatcher(self) -> None:
        if self._queue_event is not None:
            self._queue_event.set()

    def _client_counter(self, client: str, key: str) -> None:
        counters = self.per_client.setdefault(
            client,
            {"accepted": 0, "completed": 0, "failed": 0, "rejected": 0},
        )
        counters[key] = counters.get(key, 0) + 1

    def _kind_counter(self, kind: str, key: str) -> None:
        counters = self.per_kind.setdefault(
            kind,
            {"accepted": 0, "completed": 0, "failed": 0},
        )
        counters[key] = counters.get(key, 0) + 1

    def _note_service_time(self, seconds: float) -> None:
        if seconds < 0:
            return
        if self._service_ema is None:
            self._service_ema = seconds
        else:
            self._service_ema = 0.7 * self._service_ema + 0.3 * seconds

    def retry_after_estimate(self) -> float:
        """Backoff hint: expected time until a queue slot frees up."""
        ema = self._service_ema if self._service_ema is not None else 0.1
        backlog = len(self.queue) + self._in_flight
        estimate = ema * max(1, backlog) / max(1, self.config.workers)
        return max(0.05, min(60.0, estimate))

    async def _dispatcher(self) -> None:
        """Pair idle actors with fair-order records, forever."""
        assert self._idle is not None and self._queue_event is not None
        while True:
            actor = await self._idle.get()
            if not actor.is_alive() or actor.crashed or actor.stopped:
                # A crashed actor's idle token; the supervisor already
                # enqueued its replacement.
                continue
            record = await self._next_record()
            record.attempts += 1
            record.dispatch_index = self._dispatch_count
            self._dispatch_count += 1
            record.dispatched_at = time.monotonic()
            self._apply_degradation(record)
            self._in_flight += 1
            actor.submit(record)

    async def _next_record(self) -> RequestRecord:
        assert self._queue_event is not None
        while True:
            record = self.queue.pop()
            if record is not None:
                if record.done:
                    # Timed out while queued; nothing left to run.
                    self.journal.discard(record.request.id)
                    continue
                if (
                    record.deadline_at is not None
                    and time.monotonic() >= record.deadline_at
                ):
                    # Shed before dispatch: the deadline passed while the
                    # record sat in the queue, so running it would waste
                    # an actor on an answer nobody is waiting for.
                    self._expire_record(record)
                    continue
                return record
            self._queue_event.clear()
            await self._queue_event.wait()

    def _expire_record(self, record: RequestRecord) -> None:
        """Resolve a queued record whose deadline passed (never dispatched)."""
        record.done = True
        self.metrics["deadline_exceeded"] += 1
        self._client_counter(record.request.client, "failed")
        self._kind_counter(record.request.kind, "failed")
        self.journal.discard(record.request.id)
        response = error_response(
            "deadline_exceeded",
            f"request {record.request.id} spent its deadline queued "
            "and was shed before dispatch",
            request_id=record.request.id,
        )
        self._remember_response(record, response)
        if not record.future.done():
            record.future.set_result(response)

    def _apply_degradation(self, record: RequestRecord) -> None:
        """Downshift render fidelity when the backlog is deep.

        Decided exactly once, on the record's first dispatch.  A crash-
        retried record re-enters here (the supervisor re-admits it at the
        front of the queue) with its payload already reflecting the first
        decision, so re-evaluating would halve ``resolution_scale`` a second
        time and double-count ``metrics["degraded"]``.
        """
        if record.degrade_decided:
            return
        record.degrade_decided = True
        if len(self.queue) < int(self.config.degrade_depth or 0):
            return
        payload = record.request.payload
        factor = self.config.degrade_factor
        if record.request.kind == "render":
            scale = float(payload.get("resolution_scale", 1.0))
            target = max(MIN_RESOLUTION_SCALE, scale * factor)
            if target < scale:
                payload["resolution_scale"] = target
                record.degraded = {
                    "resolution_scale": target,
                    "requested_resolution_scale": scale,
                    "queue_depth": len(self.queue),
                }
                self.metrics["degraded"] += 1
        elif record.request.kind == "sweep":
            base = dict(payload.get("base") or {})
            scale = float(base.get("resolution_scale", 1.0))
            target = max(MIN_RESOLUTION_SCALE, scale * factor)
            if target < scale:
                base["resolution_scale"] = target
                payload["base"] = base
                record.degraded = {
                    "resolution_scale": target,
                    "requested_resolution_scale": scale,
                    "queue_depth": len(self.queue),
                }
                self.metrics["degraded"] += 1
        elif record.request.kind == "trajectory":
            spec = dict(payload.get("spec") or {})
            scale = float(spec.get("resolution_scale", 1.0))
            target = max(MIN_RESOLUTION_SCALE, scale * factor)
            if target < scale:
                spec["resolution_scale"] = target
                payload["spec"] = spec
                record.degraded = {
                    "resolution_scale": target,
                    "requested_resolution_scale": scale,
                    "queue_depth": len(self.queue),
                }
                self.metrics["degraded"] += 1

    # ------------------------------------------------------------------
    # admission (event-loop context)
    # ------------------------------------------------------------------
    def admit(self, request: ServiceRequest) -> RequestRecord:
        """Admit one work request into the fair queue.

        Raises :class:`QueueFull` at capacity and :class:`RuntimeError`
        while draining; the connection handler converts both into reject
        responses.
        """
        assert self._loop is not None
        if self.draining:
            raise RuntimeError("draining")
        if not request.id:
            self._request_serial += 1
            request.id = f"{os.getpid():x}-{self._request_serial:x}"
        record = RequestRecord(
            request=request,
            future=self._loop.create_future(),
            accepted_at=now(),
        )
        if request.deadline_s is not None:
            record.deadline_at = time.monotonic() + request.deadline_s
        try:
            self.queue.push(request.client, record, cost=self._cost_of(request))
        except QueueFull:
            # Before refusing, evict dead weight: records that expired or
            # were abandoned while queued hold slots but will never run.
            if not self._shed_expired():
                raise
            self.queue.push(request.client, record, cost=self._cost_of(request))
        self._pending[request.id] = record
        self.journal.record(request, accepted_at=record.accepted_at)
        self.metrics["accepted"] += 1
        self._client_counter(request.client, "accepted")
        self._kind_counter(request.kind, "accepted")
        self._wake_dispatcher()
        return record

    def _shed_expired(self) -> int:
        """Evict expired/done records from the queue; returns the count."""
        horizon = time.monotonic()
        shed = self.queue.shed(
            lambda record: record.done
            or (record.deadline_at is not None and horizon >= record.deadline_at)
        )
        for record in shed:
            if not record.done:
                self._expire_record(record)
            else:
                self.journal.discard(record.request.id)
        return len(shed)

    @staticmethod
    def _cost_of(request: ServiceRequest) -> float:
        """Fair-share cost: sweeps charge per grid point, trajectories per frame."""
        if request.kind == "sweep":
            cost = 1.0
            for values in (request.payload.get("grid") or {}).values():
                try:
                    cost *= max(1, len(values))
                except TypeError:
                    pass
            return cost
        if request.kind == "trajectory":
            spec = request.payload.get("spec") or {}
            path = spec.get("path", "orbit")
            if not isinstance(path, str):
                try:
                    return float(max(1, len(path)))
                except TypeError:
                    return 1.0
            try:
                return float(max(1, int(spec.get("frames", 16))))
            except (TypeError, ValueError):
                return 1.0
        return 1.0

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            if line.startswith((b"GET ", b"HEAD ", b"POST ")):
                await self._serve_http(line, reader, writer)
                return
            while line:
                stop_after = await self._serve_line(line, writer)
                if stop_after:
                    break
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter) -> bool:
        """Answer one NDJSON request line; returns True to close the stream."""
        try:
            request = ServiceRequest.from_wire(decode_message(line))
        except ProtocolError as error:
            await self._write_response(writer, error_response("bad_request", str(error)))
            return False
        response = await self.handle_request(request)
        severed = await self._write_response(
            writer, response, faultable=request.kind in WORK_KINDS
        )
        return severed or request.kind == "shutdown"

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: ServiceResponse,
        faultable: bool = False,
    ) -> bool:
        """Write one response frame; returns True if the connection was
        (deliberately) severed by an injected transport fault.

        Only work responses are faultable — failing control/HTTP answers
        would test the scraper, not the retry path.
        """
        frame = encode_message(jsonify(response.to_wire()))
        if faultable:
            slow = chaos.fault("transport.slow_write")
            if slow is not None:
                await asyncio.sleep(slow.delay_s)
            if chaos.fault("transport.drop_response") is not None:
                self.log_event("chaos_drop_response", id=response.id)
                return True
            if chaos.fault("transport.partial_write") is not None:
                self.log_event("chaos_partial_write", id=response.id)
                writer.write(frame[: max(1, len(frame) // 2)])
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                    pass
                return True
        writer.write(frame)
        await writer.drain()
        return False

    async def handle_request(self, request: ServiceRequest) -> ServiceResponse:
        """Route one request: control inline, work through the queue.

        Work requests carrying a client-minted id are idempotent: a
        resend of a completed request is answered from the response
        cache, and a resend of a still-running request joins the
        existing record's future — connection loss between response and
        client never causes double execution.
        """
        if request.kind in CONTROL_KINDS:
            return self._handle_control(request)
        assert request.kind in WORK_KINDS
        if request.id:
            cached = self._responses.get(request.id)
            if cached is not None:
                self.metrics["resends_served"] += 1
                self._responses.move_to_end(request.id)
                return cached
            pending = self._pending.get(request.id)
            if pending is not None:
                self.metrics["resends_served"] += 1
                return await self._await_record(pending)
        allowed, retry_after = self.breaker.allow(request.kind)
        if not allowed:
            self.metrics["breaker_rejected"] += 1
            self._client_counter(request.client, "rejected")
            return error_response(
                "circuit_open",
                f"circuit for kind {request.kind!r} is open after repeated "
                "worker crashes; retry later",
                request_id=request.id,
                retry_after_s=retry_after,
            )
        try:
            record = self.admit(request)
        except QueueFull as full:
            retry_after = self.retry_after_estimate()
            self.metrics["rejected"] += 1
            self._client_counter(request.client, "rejected")
            return error_response(
                "queue_full",
                f"{full}; retry after {retry_after:.2f}s",
                request_id=request.id,
                retry_after_s=retry_after,
            )
        except RuntimeError:
            return error_response(
                "draining",
                "daemon is draining and not accepting new work",
                request_id=request.id,
                retry_after_s=1.0,
            )
        return await self._await_record(record)

    async def _await_record(self, record: RequestRecord) -> ServiceResponse:
        """Wait for a record's terminal response, bounded by timeout/deadline."""
        timeout = self.config.request_timeout_s
        deadline_bound = False
        if record.deadline_at is not None:
            remaining = record.deadline_at - time.monotonic()
            if remaining < timeout:
                timeout = max(0.0, remaining)
                deadline_bound = True
        try:
            return await asyncio.wait_for(
                asyncio.shield(record.future), timeout=timeout
            )
        except asyncio.TimeoutError:
            if deadline_bound:
                response = error_response(
                    "deadline_exceeded",
                    f"request {record.request.id} missed its "
                    f"{record.request.deadline_s}s deadline",
                    request_id=record.request.id,
                )
                metric = "deadline_exceeded"
            else:
                response = error_response(
                    "timeout",
                    f"request {record.request.id} exceeded "
                    f"{self.config.request_timeout_s}s",
                    request_id=record.request.id,
                )
                metric = "timeouts"
            if not record.done:
                # First awaiter to give up does the bookkeeping; a joined
                # resend arriving later just gets the same response.
                record.done = True
                self.metrics[metric] += 1
                self.journal.discard(record.request.id)
                self._remember_response(record, response)
            return response

    def _handle_control(self, request: ServiceRequest) -> ServiceResponse:
        if request.kind == "ping":
            return ServiceResponse(
                ok=True, result={"pong": True, "uptime_s": self.uptime()}, id=request.id
            )
        if request.kind == "health":
            return ServiceResponse(ok=True, result=self.healthz(), id=request.id)
        if request.kind == "metrics":
            return ServiceResponse(
                ok=True, result=self.metrics_snapshot(), id=request.id
            )
        if request.kind == "shutdown":
            drain = bool(request.payload.get("drain", True))
            self.request_stop(drain=drain)
            return ServiceResponse(
                ok=True, result={"stopping": True, "drain": drain}, id=request.id
            )
        raise AssertionError(f"unhandled control kind {request.kind!r}")

    # ------------------------------------------------------------------
    # HTTP shim
    # ------------------------------------------------------------------
    async def _serve_http(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP/1.0 answers for ``/healthz`` and ``/metrics``."""
        import json as _json

        try:
            while True:  # drain request headers
                header = await asyncio.wait_for(reader.readline(), timeout=2.0)
                if header in (b"", b"\r\n", b"\n"):
                    break
        except asyncio.TimeoutError:  # pragma: no cover - slowloris guard
            pass
        parts = first_line.decode("latin-1", "replace").split()
        path = parts[1] if len(parts) >= 2 else "/"
        path = path.split("?", 1)[0]
        if path == "/healthz":
            status, body = 200, self.healthz()
            if body["status"] == "critical":
                status = 503
        elif path == "/metrics":
            status, body = 200, self.metrics_snapshot()
        else:
            status, body = 404, {"error": f"unknown path {path!r}"}
        payload = _json.dumps(jsonify(body), indent=2).encode("utf-8")
        reason = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}[status]
        writer.write(
            f"HTTP/1.0 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def uptime(self) -> float:
        if self.started_at is None:
            return 0.0
        return round(time.monotonic() - self.started_at, 3)

    def healthz(self) -> Dict[str, Any]:
        """Liveness state machine: healthy / degraded / critical.

        * **critical** — no live actor at all: the daemon cannot serve
          work (HTTP shim answers 503).
        * **degraded** — serving, but impaired: draining for shutdown, a
          quarantined actor is still wedged, or a circuit breaker has a
          work kind open.
        * **healthy** — full capacity, all circuits closed.
        """
        alive = sum(1 for actor in self.actors if actor.is_alive())
        quarantined = sum(
            1 for actor in self.quarantined_actors if actor.is_alive()
        )
        open_kinds = self.breaker.open_kinds()
        if alive == 0 and self.actors:
            status = "critical"
        elif self.draining or quarantined or open_kinds:
            status = "degraded"
        else:
            status = "healthy"
        return {
            "status": status,
            "draining": self.draining,
            "uptime_s": self.uptime(),
            "queue_depth": len(self.queue),
            "in_flight": self._in_flight,
            "actors_alive": alive,
            "actors_total": len(self.actors),
            "quarantined": quarantined,
            "breaker_open_kinds": open_kinds,
            "restarts": self.supervisor.restarts,
        }

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The full live-telemetry document behind ``/metrics``."""
        from repro.api.shm import leaked_segments

        return {
            "uptime_s": self.uptime(),
            "address": list(self.address) if self.address else None,
            "draining": self.draining,
            "requests": dict(self.metrics),
            "in_flight": self._in_flight,
            "queue": self.queue.stats(),
            "clients": {name: dict(c) for name, c in self.per_client.items()},
            "kinds": {name: dict(c) for name, c in self.per_kind.items()},
            "retry_after_s": self.retry_after_estimate(),
            "actors": [actor.snapshot() for actor in self.actors],
            "quarantined_actors": [
                actor.snapshot() for actor in self.quarantined_actors
            ],
            "supervision": self.supervisor.stats(),
            "breaker": self.breaker.stats(),
            "response_cache": {
                "size": len(self._responses),
                "capacity": self.config.response_cache_size,
            },
            "chaos": (
                self.chaos_injector.stats()
                if self.chaos_injector is not None
                else None
            ),
            "events": list(self.events[-20:]),
            "execution": self.last_execution,
            "engine": self.service.stats(),
            "store": self.store.stats() if self.store is not None else None,
            "journal_pending": len(self.journal),
            "shm": {"leaked_segments": leaked_segments()},
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_stop(self, drain: bool = True) -> None:
        """Thread-safe shutdown request (drain first unless told not to)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return

        def _stop() -> None:
            self._drain_on_stop = drain and self._drain_on_stop
            self.draining = True
            assert self._stop_event is not None
            self._stop_event.set()

        loop.call_soon_threadsafe(_stop)

    def _resume_journal(self) -> int:
        """Re-admit journaled requests from a previous run."""
        assert self._loop is not None
        resumed = 0
        for entry in self.journal.pending():
            try:
                request = ServiceRequest.from_wire(entry)
            except ProtocolError:  # pragma: no cover - pending() pre-checks
                continue
            record = RequestRecord(
                request=request,
                future=self._loop.create_future(),
                accepted_at=float(entry.get("accepted_at") or now()),
                resumed=True,
            )
            # No client is waiting; swallow the eventual response so the
            # future never warns about an unretrieved result.
            record.future.add_done_callback(lambda future: future.exception())
            try:
                self.queue.push(request.client, record, cost=self._cost_of(request))
            except QueueFull:  # pragma: no cover - journal larger than queue
                self.journal.discard(request.id)
                continue
            # A reconnecting client resending the same id joins the
            # resumed record instead of duplicating the work.
            self._pending[request.id] = record
            resumed += 1
        if resumed:
            self.metrics["resumed"] += resumed
            self.log_event("journal_resumed", requests=resumed)
            self._wake_dispatcher()
        return resumed

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._queue_event = asyncio.Event()
        self._idle = asyncio.Queue()
        self.started_at = time.monotonic()
        if self.chaos_injector is not None:
            chaos.install(self.chaos_injector)
            self.log_event(
                "chaos_installed",
                seed=self.chaos_injector.plan.seed,
                rules=len(self.chaos_injector.plan),
                points=self.chaos_injector.plan.points(),
            )
        for _ in range(self.config.workers):
            self.spawn_actor()
        self._resume_journal()
        if self.config.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.config.unix_path,
                limit=MAX_MESSAGE_BYTES + 1024,
            )
            self.address = ("unix", self.config.unix_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_MESSAGE_BYTES + 1024,
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = ("tcp", sockname[0], int(sockname[1]))
        dispatcher = asyncio.ensure_future(self._dispatcher())
        supervision = asyncio.ensure_future(self.supervisor.run())
        self.log_event("daemon_started", address=list(self.address))
        self._ready.set()
        try:
            await self._stop_event.wait()
            self.draining = True
            if self._drain_on_stop:
                await self._drain(deadline=time.monotonic() + self.config.drain_timeout_s)
        finally:
            self.supervisor.stop()
            for task in (dispatcher, supervision):
                task.cancel()
            await asyncio.gather(dispatcher, supervision, return_exceptions=True)
            self._shutdown_actors()
            self._reject_leftovers()
            self._server.close()
            await self._server.wait_closed()
            if self.config.unix_path:
                try:
                    os.unlink(self.config.unix_path)
                except OSError:
                    pass
            if self.chaos_injector is not None:
                # Identity-guarded: never clobber a newer daemon's injector.
                chaos.uninstall(expected=self.chaos_injector)
            self.log_event("daemon_stopped", drained=self._drain_on_stop)

    async def _drain(self, deadline: float) -> None:
        """Wait for queued + in-flight work to finish (bounded)."""
        while (len(self.queue) or self._in_flight) and time.monotonic() < deadline:
            await asyncio.sleep(0.02)

    def _shutdown_actors(self) -> None:
        fleet = self.actors + self.quarantined_actors
        for actor in fleet:
            if actor.is_alive():
                actor.stop()
        for actor in fleet:
            actor.join(timeout=2.0)

    def _reject_leftovers(self) -> None:
        """Fail still-queued records at hard stop (journal entries stay:
        an undrained record is exactly what the journal resumes)."""
        for record in self.queue.drain():
            if record is None or record.done:
                continue
            record.done = True
            self._pending.pop(record.request.id, None)
            if not record.future.done():
                record.future.set_result(
                    error_response(
                        "draining",
                        "daemon stopped before this request was dispatched",
                        request_id=record.request.id,
                        retry_after_s=1.0,
                    )
                )

    def serve(self) -> None:
        """Run the daemon on the calling thread until stopped (CLI path)."""
        asyncio.run(self._main())

    def start_in_thread(self, ready_timeout: float = 30.0) -> DaemonHandle:
        """Run the daemon on a background thread; returns once listening."""
        thread = threading.Thread(
            target=self.serve, name="repro-service-daemon", daemon=True
        )
        thread.start()
        if not self._ready.wait(timeout=ready_timeout):
            raise RuntimeError("service daemon did not start listening in time")
        return DaemonHandle(self, thread)
