"""Per-work-kind circuit breaker over crash-retry failures.

A worker crash is expensive: the actor thread dies, the supervisor
respawns it (a fresh session, cold caches) and re-dispatches the record.
When one request *kind* keeps crashing workers — a poisoned payload
class, a bug in one evaluation path — retrying every arrival burns the
whole fleet on it.  :class:`CircuitBreaker` watches consecutive crash
failures per kind and, past a threshold, rejects that kind at admission
with ``circuit_open`` + a retry-after hint while the rest of the service
keeps running.

Standard three-state machine per kind:

* **closed** — normal operation; consecutive crash failures are counted,
  any success resets the count.
* **open** — admissions rejected until ``cooldown_s`` elapses.
* **half_open** — one probe request is admitted; success closes the
  circuit, another crash re-opens it for a fresh cooldown.

The breaker lives on the daemon's event loop thread (admission and the
supervisor both run there), so it needs no locking.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trips one work kind after ``threshold`` consecutive crash failures."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 5.0) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.tripped = 0
        self._kinds: Dict[str, Dict[str, float]] = {}

    def _entry(self, kind: str) -> Dict[str, float]:
        return self._kinds.setdefault(
            kind, {"state": CLOSED, "failures": 0, "opened_at": 0.0, "probing": False}
        )

    # ------------------------------------------------------------------
    def allow(self, kind: str) -> Tuple[bool, Optional[float]]:
        """Admission gate: ``(allowed, retry_after_s)``.

        An open circuit whose cooldown has elapsed admits exactly one
        probe (half-open); concurrent arrivals during the probe are still
        rejected.
        """
        entry = self._kinds.get(kind)
        if entry is None or entry["state"] == CLOSED:
            return True, None
        if entry["state"] == OPEN:
            elapsed = time.monotonic() - entry["opened_at"]
            if elapsed < self.cooldown_s:
                return False, max(0.05, self.cooldown_s - elapsed)
            entry["state"] = HALF_OPEN
            entry["probing"] = False
        if entry["state"] == HALF_OPEN:
            if entry["probing"]:
                return False, self.cooldown_s
            entry["probing"] = True
            return True, None
        return True, None  # pragma: no cover - defensive

    def record_failure(self, kind: str) -> None:
        """One worker crash executing ``kind`` (supervisor restart path)."""
        entry = self._entry(kind)
        entry["failures"] += 1
        if entry["state"] == HALF_OPEN or entry["failures"] >= self.threshold:
            if entry["state"] != OPEN:
                self.tripped += 1
            entry["state"] = OPEN
            entry["opened_at"] = time.monotonic()
            entry["probing"] = False

    def record_success(self, kind: str) -> None:
        """A live worker produced a response for ``kind`` (crash-free)."""
        entry = self._kinds.get(kind)
        if entry is None:
            return
        entry["failures"] = 0
        entry["probing"] = False
        entry["state"] = CLOSED

    # ------------------------------------------------------------------
    def state(self, kind: str) -> str:
        entry = self._kinds.get(kind)
        return entry["state"] if entry is not None else CLOSED  # type: ignore[return-value]

    def open_kinds(self) -> List[str]:
        """Kinds currently not accepting normal traffic (open/half-open)."""
        return sorted(
            kind for kind, entry in self._kinds.items() if entry["state"] != CLOSED
        )

    def stats(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "tripped": self.tripped,
            "kinds": {
                kind: {
                    "state": entry["state"],
                    "failures": int(entry["failures"]),
                }
                for kind, entry in self._kinds.items()
            },
        }
