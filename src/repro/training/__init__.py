"""Fine-tuning machinery: optimizers, losses and boundary-aware fine-tuning.

The paper fine-tunes every trained scene twice before deployment:

* 3 000 iterations of **boundary-aware fine-tuning** (Sec. III-B) that
  penalises Gaussians spanning voxel boundaries so voxel-by-voxel rendering
  preserves depth order (Fig. 6/7);
* 5 000 iterations of **quantization-aware fine-tuning** (Sec. III-C,
  implemented in :mod:`repro.compression.quantization_aware`).

PyTorch autograd is unavailable in this environment, so the boundary-aware
stage is realised with analytic gradients of the cross-boundary penalty and
a parameter-space trust region standing in for the photometric loss — see
DESIGN.md for the substitution rationale.
"""

from repro.training.optimizer import Adam, SGD
from repro.training.losses import (
    combined_photometric_loss,
    cross_boundary_penalty,
    l1_loss,
    total_loss,
)
from repro.training.boundary_finetune import (
    BoundaryFinetuneResult,
    boundary_aware_finetune,
)

__all__ = [
    "Adam",
    "SGD",
    "combined_photometric_loss",
    "cross_boundary_penalty",
    "l1_loss",
    "total_loss",
    "BoundaryFinetuneResult",
    "boundary_aware_finetune",
]
