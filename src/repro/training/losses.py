"""Loss functions: the 3DGS photometric loss and the cross-boundary penalty.

The paper's fine-tuning objective (Eq. 1) is ``L = L_origin + beta * L_CBP``
where ``L_origin`` is the original 3DGS photometric loss (L1 + D-SSIM) and
``L_CBP`` (Eq. 2) penalises the scale of Gaussians that are rendered out of
depth order, i.e. Gaussians spanning voxel boundaries.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.voxel_grid import VoxelGrid, cross_boundary_mask
from repro.gaussians.metrics import dssim
from repro.gaussians.model import GaussianModel

#: Weight of the D-SSIM term in the 3DGS photometric loss.
DSSIM_WEIGHT = 0.2

#: Default cross-boundary penalty weight (paper Sec. V-A: beta = 0.05).
DEFAULT_BETA = 0.05


def l1_loss(image_a: np.ndarray, image_b: np.ndarray) -> float:
    """Mean absolute error between two images."""
    image_a = np.asarray(image_a, dtype=np.float64)
    image_b = np.asarray(image_b, dtype=np.float64)
    if image_a.shape != image_b.shape:
        raise ValueError(f"shape mismatch: {image_a.shape} vs {image_b.shape}")
    return float(np.mean(np.abs(image_a - image_b)))


def combined_photometric_loss(
    rendered: np.ndarray, ground_truth: np.ndarray, dssim_weight: float = DSSIM_WEIGHT
) -> float:
    """The 3DGS training loss: ``(1 - w) * L1 + w * D-SSIM``."""
    if not 0.0 <= dssim_weight <= 1.0:
        raise ValueError("dssim_weight must be in [0, 1]")
    return (1.0 - dssim_weight) * l1_loss(rendered, ground_truth) + (
        dssim_weight * dssim(rendered, ground_truth)
    )


def cross_boundary_indicator(
    model: GaussianModel,
    voxel_size: float,
    origin: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The indicator ``T_i`` of Eq. 2.

    The paper defines ``T_i`` through the rendering sequence (a Gaussian is
    flagged when it is rendered after a deeper Gaussian); those out-of-order
    Gaussians are exactly the ones spanning voxel boundaries (Sec. III-B,
    "the incorrect order occurs only when a Gaussian spans across multiple
    voxels"), so the fine-tuning loop uses the geometric spanning test as
    the differentiable stand-in.
    """
    return cross_boundary_mask(model, voxel_size, origin=origin).astype(np.float64)


def cross_boundary_penalty(
    model: GaussianModel,
    voxel_size: float,
    origin: Optional[np.ndarray] = None,
    indicator: Optional[np.ndarray] = None,
) -> float:
    """``L_CBP`` of Eq. 2: mean of ``S_i * T_i`` over all Gaussians.

    ``S_i`` is the maximum scale of Gaussian ``i`` and ``T_i`` flags the
    Gaussians that can be rendered out of depth order.
    """
    if len(model) == 0:
        return 0.0
    if indicator is None:
        indicator = cross_boundary_indicator(model, voxel_size, origin=origin)
    indicator = np.asarray(indicator, dtype=np.float64).reshape(-1)
    if len(indicator) != len(model):
        raise ValueError("indicator length must equal the number of Gaussians")
    return float(np.mean(model.max_scales.astype(np.float64) * indicator))


def cross_boundary_penalty_gradient(
    model: GaussianModel,
    voxel_size: float,
    origin: Optional[np.ndarray] = None,
    indicator: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Analytic gradient of ``L_CBP`` with respect to the per-axis scales.

    ``d L_CBP / d s_{i,a} = T_i / N`` for the axis ``a`` realising the
    maximum scale of Gaussian ``i`` and 0 elsewhere (sub-gradient of the
    max).
    """
    n = len(model)
    grad = np.zeros((n, 3), dtype=np.float64)
    if n == 0:
        return grad
    if indicator is None:
        indicator = cross_boundary_indicator(model, voxel_size, origin=origin)
    argmax_axis = np.argmax(model.scales, axis=1)
    grad[np.arange(n), argmax_axis] = np.asarray(indicator, dtype=np.float64) / n
    return grad


def total_loss(
    rendered: np.ndarray,
    ground_truth: np.ndarray,
    model: GaussianModel,
    grid: VoxelGrid,
    beta: float = DEFAULT_BETA,
) -> float:
    """Eq. 1: ``L = L_origin + beta * L_CBP``."""
    if beta < 0:
        raise ValueError("beta must be non-negative")
    origin = combined_photometric_loss(rendered, ground_truth)
    penalty = cross_boundary_penalty(model, grid.voxel_size, origin=grid.origin)
    return origin + beta * penalty
