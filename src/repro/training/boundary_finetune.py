"""Boundary-aware fine-tuning (Sec. III-B, Fig. 6/7).

The goal of this stage is to make voxel-by-voxel rendering depth-correct:
Gaussians whose footprint spans a voxel boundary can be blended out of
order, so the fine-tuning shrinks them until (almost) none is rendered out
of order, while keeping image quality.

Without autograd the update per iteration is:

* an **analytic gradient step on the cross-boundary penalty** — the scale of
  every flagged Gaussian is reduced multiplicatively (the direction of
  ``d L_CBP / d S_i``), concentrated on the axis realising the maximum
  scale;
* an **opacity compensation** step standing in for the photometric term —
  shrinking a splat reduces its integrated contribution, so opacity is
  boosted by a bounded fraction of the lost area;
* a **trust region** bounding how far any Gaussian may drift from its
  pre-fine-tuning parameters, which is what keeps the tile-centric
  rendering quality from collapsing (the role ``L_origin`` plays in the
  paper).

The set of flagged Gaussians (the indicator ``T_i`` of Eq. 2) is obtained
from an *error probe*: a periodic streaming render that attributes
out-of-order blend weight to individual Gaussians
(:meth:`repro.core.pipeline.StreamingStats.error_gaussian_indices`).  When
no probe is supplied the geometric cross-boundary test is used instead,
which is the conservative superset of the render-order test.

Positions are never modified, matching the paper ("we keep each Gaussian
position fixed to retain the scene geometry").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.voxel_grid import cross_boundary_mask
from repro.gaussians.model import GaussianModel
from repro.training.losses import DEFAULT_BETA, cross_boundary_penalty

#: Largest total shrink allowed per flagged Gaussian (trust region on scale).
MAX_TOTAL_SHRINK = 0.7

#: Largest opacity boost allowed (trust region on opacity).
MAX_OPACITY_BOOST = 1.5

#: An error probe returns (flagged model indices, quality metric, error ratio).
ErrorProbe = Callable[[GaussianModel], Tuple[np.ndarray, float, float]]


@dataclass
class BoundaryFinetuneResult:
    """Fine-tuned model plus per-probe history (the data behind Fig. 7)."""

    model: GaussianModel
    iterations: List[int] = field(default_factory=list)
    error_gaussian_ratio: List[float] = field(default_factory=list)
    cross_boundary_ratio: List[float] = field(default_factory=list)
    penalty: List[float] = field(default_factory=list)
    quality: List[float] = field(default_factory=list)

    @property
    def initial_error_ratio(self) -> float:
        return self.error_gaussian_ratio[0] if self.error_gaussian_ratio else 0.0

    @property
    def final_error_ratio(self) -> float:
        return self.error_gaussian_ratio[-1] if self.error_gaussian_ratio else 0.0

    @property
    def initial_quality(self) -> float:
        return self.quality[0] if self.quality else float("nan")

    @property
    def final_quality(self) -> float:
        return self.quality[-1] if self.quality else float("nan")


def geometric_probe(voxel_size: float) -> ErrorProbe:
    """An error probe that flags every cross-boundary Gaussian.

    Cheap (no rendering) and conservative; used by unit tests and as the
    fallback when no streaming probe is available.
    """

    def probe(model: GaussianModel) -> Tuple[np.ndarray, float, float]:
        mask = cross_boundary_mask(model, voxel_size)
        ratio = float(np.mean(mask)) if len(mask) else 0.0
        return np.flatnonzero(mask), float("nan"), ratio

    return probe


def boundary_aware_finetune(
    model: GaussianModel,
    voxel_size: float,
    iterations: int = 3000,
    beta: float = DEFAULT_BETA,
    learning_rate: float = 0.02,
    error_probe: Optional[ErrorProbe] = None,
    probe_every: int = 500,
    photometric_refiner: Optional[Callable[[GaussianModel], GaussianModel]] = None,
) -> BoundaryFinetuneResult:
    """Run the boundary-aware fine-tuning loop.

    Parameters
    ----------
    model:
        The trained model (not modified; a fine-tuned copy is returned).
    voxel_size:
        Voxel edge length of the streaming configuration.
    iterations:
        Number of fine-tuning iterations (the paper uses 3 000).
    beta:
        Weight of the cross-boundary penalty (paper: 0.05).
    learning_rate:
        Step size of the multiplicative scale update; the per-iteration
        relative shrink of a flagged Gaussian is ``learning_rate * beta``
        (so the defaults shrink a persistently flagged Gaussian by ~45 %
        over the full 3 000 iterations, within the trust region).
    error_probe:
        Callable returning ``(flagged indices, quality, error ratio)`` for a
        model — typically a reduced-resolution streaming render.  Defaults
        to the geometric cross-boundary probe.
    probe_every:
        Number of iterations between probe evaluations (the flagged set is
        held fixed in between, like a mini-epoch).
    photometric_refiner:
        Optional callable applied at every probe epoch that re-optimises the
        photometric parameters (e.g. the analytic DC-colour refinement of
        :mod:`repro.training.color_refinement`).  This is the surrogate for
        the ``L_origin`` gradient: it re-absorbs the radiance removed by the
        shrinking Gaussians so image quality recovers during fine-tuning.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    if beta < 0:
        raise ValueError("beta must be non-negative")
    if probe_every <= 0:
        raise ValueError("probe_every must be positive")
    work = model.copy()
    lo, _ = work.bounding_box()
    origin = lo.astype(np.float64) - 1e-4
    original_scales = work.scales.astype(np.float64).copy()
    original_opacities = work.opacities.astype(np.float64).copy()
    probe = error_probe or geometric_probe(voxel_size)

    result = BoundaryFinetuneResult(model=work)
    shrink_per_iteration = learning_rate * beta

    def run_probe(iteration: int) -> np.ndarray:
        flagged, quality, error_ratio = probe(work)
        crossing = cross_boundary_mask(work, voxel_size, origin=origin)
        result.iterations.append(iteration)
        result.error_gaussian_ratio.append(float(error_ratio))
        result.cross_boundary_ratio.append(
            float(np.mean(crossing)) if len(crossing) else 0.0
        )
        result.penalty.append(
            cross_boundary_penalty(work, voxel_size, origin=origin, indicator=crossing)
        )
        result.quality.append(float(quality))
        # Only Gaussians that both cross a boundary and are flagged by the
        # probe are actionable: shrinking a non-crossing Gaussian cannot fix
        # an ordering error, and a crossing Gaussian that never blends out of
        # order needs no change.
        flagged = np.asarray(flagged, dtype=np.int64)
        if len(flagged) == 0:
            return flagged
        actionable = flagged[crossing[flagged]]
        return actionable

    flagged = run_probe(0)
    for iteration in range(1, iterations + 1):
        if len(flagged) > 0:
            scales = work.scales.astype(np.float64)
            argmax_axis = np.argmax(scales[flagged], axis=1)
            factors = np.full_like(scales[flagged], 1.0 - 0.5 * shrink_per_iteration)
            factors[np.arange(len(flagged)), argmax_axis] = 1.0 - shrink_per_iteration

            new_scales = scales[flagged] * factors
            floor = original_scales[flagged] * (1.0 - MAX_TOTAL_SHRINK)
            new_scales = np.maximum(new_scales, floor)
            area_ratio = np.prod(scales[flagged], axis=1) / np.clip(
                np.prod(new_scales, axis=1), 1e-18, None
            )
            work.scales[flagged] = new_scales.astype(np.float32)

            # Bounded opacity compensation for the lost footprint.
            boost = np.clip(area_ratio ** (1.0 / 4.0), 1.0, None)
            new_opacity = work.opacities[flagged].astype(np.float64) * boost
            ceiling = np.minimum(original_opacities[flagged] * MAX_OPACITY_BOOST, 0.99)
            work.opacities[flagged] = np.minimum(new_opacity, ceiling).astype(
                np.float32
            )

        if iteration % probe_every == 0 or iteration == iterations:
            if photometric_refiner is not None:
                refined = photometric_refiner(work)
                work.sh_dc = refined.sh_dc
                work.sh_rest = refined.sh_rest
                work.opacities = refined.opacities
                result.model = work
            flagged = run_probe(iteration)

    return result
