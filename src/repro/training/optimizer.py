"""Small NumPy optimizers (SGD and Adam) over named parameter groups.

Used by the fine-tuning loops; the interface mirrors the familiar
``step(params, grads)`` pattern so the surrogate gradients of the
boundary-aware fine-tuning and any future photometric gradients plug in
uniformly.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

ParamDict = Dict[str, np.ndarray]


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: ParamDict = {}

    def step(self, params: ParamDict, grads: ParamDict) -> ParamDict:
        """Return updated parameters (inputs are not modified)."""
        updated: ParamDict = {}
        for name, value in params.items():
            grad = grads.get(name)
            if grad is None:
                updated[name] = value.copy()
                continue
            grad = np.asarray(grad, dtype=np.float64)
            if self.momentum > 0.0:
                velocity = self._velocity.get(name, np.zeros_like(grad))
                velocity = self.momentum * velocity - self.learning_rate * grad
                self._velocity[name] = velocity
                updated[name] = value + velocity
            else:
                updated[name] = value - self.learning_rate * grad
        return updated


class Adam:
    """Adam optimizer (Kingma & Ba) over named parameter arrays."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: ParamDict = {}
        self._v: ParamDict = {}
        self._t = 0

    def step(self, params: ParamDict, grads: ParamDict) -> ParamDict:
        """Return updated parameters (inputs are not modified)."""
        self._t += 1
        updated: ParamDict = {}
        for name, value in params.items():
            grad = grads.get(name)
            if grad is None:
                updated[name] = value.copy()
                continue
            grad = np.asarray(grad, dtype=np.float64)
            m = self._m.get(name, np.zeros_like(grad))
            v = self._v.get(name, np.zeros_like(grad))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
            self._m[name] = m
            self._v[name] = v
            m_hat = m / (1.0 - self.beta1 ** self._t)
            v_hat = v / (1.0 - self.beta2 ** self._t)
            updated[name] = value - self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.epsilon
            )
        return updated
