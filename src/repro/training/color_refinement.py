"""Analytic photometric refinement of DC colours.

The rendered image is *linear* in the Gaussian colours once the blending
weights are fixed: ``I(x) = sum_i w_i(x) * c_i + T(x) * background``.  That
makes the colour sub-problem of the photometric loss a linear least squares
we can solve without autograd: for each Gaussian, a damped Jacobi step

``delta_c_i = -damping * sum_x w_i(x) * r(x) / sum_x w_i(x)``

with ``r = rendered - target`` moves every Gaussian's colour towards the
weighted-average residual it is responsible for; with a modest damping the
simultaneous update over all (overlapping) Gaussians reduces the L2 error
across epochs.  The boundary-aware fine-tuning uses this as the stand-in
for the ``L_origin`` term: while the cross-boundary penalty shrinks the
offending Gaussians, the colour refinement re-absorbs the lost radiance
into the surrounding Gaussians, which is how rendering quality recovers
during fine-tuning (Fig. 7).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.projection import project_gaussians
from repro.gaussians.rasterizer import ALPHA_EPSILON, ALPHA_MAX, TRANSMITTANCE_EPSILON
from repro.gaussians.sh import SH_C0
from repro.gaussians.sorting import sort_tile_gaussians
from repro.gaussians.tiles import TileGrid, bin_gaussians_to_tiles


def accumulate_color_statistics(
    model: GaussianModel,
    camera: Camera,
    target_image: np.ndarray,
    sh_degree: int = 3,
    tile_size: int = 16,
    background: Sequence[float] = (0.0, 0.0, 0.0),
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-Gaussian blending statistics against a target image.

    Returns
    -------
    (weight_residual, weight_total, rendered):
        ``(N, 3)`` sums of ``w_i(x) * (I(x) - target(x))``, ``(N,)`` sums of
        ``w_i(x)`` and the rendered image itself.
    """
    target_image = np.asarray(target_image, dtype=np.float64)
    if target_image.shape != (camera.height, camera.width, 3):
        raise ValueError(
            f"target image shape {target_image.shape} does not match camera "
            f"({camera.height}, {camera.width}, 3)"
        )
    background = np.asarray(background, dtype=np.float64).reshape(3)
    grid = TileGrid(camera.width, camera.height, tile_size)
    projected = project_gaussians(model, camera, sh_degree=sh_degree)
    binning = bin_gaussians_to_tiles(projected, grid)
    sorted_lists = sort_tile_gaussians(projected, binning)

    n = len(model)
    weight_residual = np.zeros((n, 3), dtype=np.float64)
    weight_total = np.zeros(n, dtype=np.float64)
    rendered = np.zeros((camera.height, camera.width, 3), dtype=np.float64)

    for tile_id, indices in sorted_lists.items():
        if len(indices) == 0:
            continue
        xs, ys = grid.tile_pixel_centers(tile_id)
        px = xs.astype(np.float64) + 0.5
        py = ys.astype(np.float64) + 0.5
        num_pixels = len(xs)
        transmittance = np.ones(num_pixels, dtype=np.float64)
        color = np.zeros((num_pixels, 3), dtype=np.float64)
        weights_per_gaussian: List[Tuple[int, np.ndarray]] = []
        for gid in indices:
            if not projected.valid[gid]:
                continue
            active = transmittance > TRANSMITTANCE_EPSILON
            if not np.any(active):
                break
            dx = px - projected.means2d[gid, 0]
            dy = py - projected.means2d[gid, 1]
            a, b, c = projected.conics[gid]
            power = -0.5 * (a * dx * dx + c * dy * dy) - b * dx * dy
            alpha = projected.opacities[gid] * np.exp(np.minimum(power, 0.0))
            alpha = np.minimum(alpha, ALPHA_MAX)
            contributes = active & (alpha > ALPHA_EPSILON) & (power <= 0.0)
            if not np.any(contributes):
                continue
            weight = np.where(contributes, alpha * transmittance, 0.0)
            color += weight[:, None] * projected.colors[gid][None, :]
            transmittance = np.where(
                contributes, transmittance * (1.0 - alpha), transmittance
            )
            weights_per_gaussian.append((int(gid), weight))

        final = color + transmittance[:, None] * background[None, :]
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tile_id)
        h, w = y1 - y0, x1 - x0
        rendered[y0:y1, x0:x1] = final.reshape(h, w, 3)

        residual = final - target_image[y0:y1, x0:x1].reshape(-1, 3)
        for gid, weight in weights_per_gaussian:
            weight_residual[gid] += (weight[:, None] * residual).sum(axis=0)
            weight_total[gid] += float(np.sum(weight))

    return weight_residual, weight_total, rendered


#: Largest per-step colour change (keeps simultaneous updates stable).
MAX_COLOR_STEP = 0.15


def dc_color_refinement_step(
    model: GaussianModel,
    cameras: Sequence[Camera],
    target_images: Sequence[np.ndarray],
    damping: float = 0.3,
    sh_degree: int = 3,
    tile_size: int = 16,
    background: Sequence[float] = (0.0, 0.0, 0.0),
) -> GaussianModel:
    """One damped refinement step on the DC colours against target images.

    Parameters
    ----------
    model:
        The model to refine (not modified; a refined copy is returned).
    cameras / target_images:
        Matched training views.  Statistics are accumulated over all of
        them before the single colour update, so multi-view consistency is
        preserved.
    damping:
        Fraction of the per-Gaussian weighted-mean-residual step applied.
        Small values (0.2-0.4) keep the simultaneous update of overlapping
        Gaussians stable; the loop applies one step per probe epoch.
    sh_degree, tile_size, background:
        Rendering parameters (match the evaluation configuration).
    """
    if len(cameras) != len(target_images):
        raise ValueError("cameras and target_images must have the same length")
    if not cameras:
        raise ValueError("at least one training view is required")
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")

    n = len(model)
    weight_residual = np.zeros((n, 3), dtype=np.float64)
    weight_total = np.zeros(n, dtype=np.float64)
    for camera, target in zip(cameras, target_images):
        wr, wt, _ = accumulate_color_statistics(
            model,
            camera,
            target,
            sh_degree=sh_degree,
            tile_size=tile_size,
            background=background,
        )
        weight_residual += wr
        weight_total += wt

    refined = model.copy()
    touched = weight_total > 1e-9
    delta_color = np.zeros((n, 3), dtype=np.float64)
    delta_color[touched] = (
        -damping * weight_residual[touched] / weight_total[touched, None]
    )
    delta_color = np.clip(delta_color, -MAX_COLOR_STEP, MAX_COLOR_STEP)
    # d(colour)/d(sh_dc) = SH_C0, so the colour step maps onto sh_dc divided
    # by SH_C0.
    refined.sh_dc = (refined.sh_dc.astype(np.float64) + delta_color / SH_C0).astype(
        np.float32
    )
    return refined
