"""The paper's primary contribution: memory-centric streaming rendering.

The subpackage implements the fully streaming algorithm of Sec. III:

* :mod:`repro.core.voxel_grid` — scene partition into voxels, contiguous
  per-voxel storage order and empty-voxel renaming;
* :mod:`repro.core.ray_voxel` — per-pixel ray/voxel traversal (3D-DDA) and
  the voxel ordering table of a pixel group;
* :mod:`repro.core.voxel_order` — the rendering-dependency DAG and Kahn's
  topological sort establishing the global voxel rendering order;
* :mod:`repro.core.hierarchical_filter` — the two-phase coarse/fine Gaussian
  filter with MAC and byte accounting;
* :mod:`repro.core.data_layout` — the customized two-half DRAM layout with
  vector-quantised second half;
* :mod:`repro.core.pipeline` — the streaming renderer that ties everything
  together and produces both images and the workload statistics consumed by
  the architecture model.
"""

from repro.core.config import StreamingConfig
from repro.core.voxel_grid import VoxelGrid, cross_boundary_mask
from repro.core.ray_voxel import (
    ordering_tables_for_tiles,
    traverse_ray,
    voxel_ordering_table,
)
from repro.core.voxel_order import (
    VoxelOrderResult,
    topological_orders_for_tables,
    topological_voxel_order,
    voxel_depth_map,
    voxel_depth_values,
)
from repro.core.hierarchical_filter import FilterStats, HierarchicalFilter
from repro.core.data_layout import DataLayout, LayoutTraffic
from repro.core.pipeline import StreamingRenderer, StreamingStats

__all__ = [
    "StreamingConfig",
    "VoxelGrid",
    "cross_boundary_mask",
    "ordering_tables_for_tiles",
    "traverse_ray",
    "voxel_ordering_table",
    "VoxelOrderResult",
    "topological_orders_for_tables",
    "topological_voxel_order",
    "voxel_depth_map",
    "voxel_depth_values",
    "FilterStats",
    "HierarchicalFilter",
    "DataLayout",
    "LayoutTraffic",
    "StreamingRenderer",
    "StreamingStats",
]
