"""Global voxel rendering order via DAG construction and topological sort.

Pixels within one group intersect different (but overlapping) voxel
sequences; the paper merges the per-ray orders into a dependency graph —
an edge ``u -> v`` means some ray renders voxel ``u`` before voxel ``v`` —
and establishes a single global order with Kahn's topological sort
(Sec. III-B, reference [22]).  When rays disagree (the graph has a cycle,
which can happen for voxels at nearly identical depth seen from different
pixels), the cycle is broken by releasing the voxel closest to the camera,
which is the depth-correct choice for the pixels that matter most.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

import numpy as np


@dataclass
class VoxelOrderResult:
    """Result of the global voxel ordering."""

    order: List[int]                 # global rendering order (renamed voxel ids)
    num_nodes: int
    num_edges: int
    cycles_broken: int
    in_degree_table: Dict[int, int] = field(default_factory=dict)

    @property
    def is_valid_permutation(self) -> bool:
        """True when every input voxel appears exactly once in the order."""
        return len(self.order) == self.num_nodes and len(set(self.order)) == len(
            self.order
        )


def build_dependency_graph(
    per_ray_orders: Sequence[Sequence[int]],
) -> Dict[int, Set[int]]:
    """Adjacency table (source -> set of destinations) from per-ray orders.

    Consecutive voxels of each ray contribute one edge; this is the adjacent
    table the VSU builds in hardware (Fig. 10).
    """
    arrays = [
        np.asarray(order, dtype=np.int64) for order in per_ray_orders if len(order)
    ]
    if not arrays:
        return {}
    nodes = np.unique(np.concatenate(arrays))
    adjacency: Dict[int, Set[int]] = {int(node): set() for node in nodes}
    srcs = np.concatenate([a[:-1] for a in arrays]) if len(arrays) else nodes[:0]
    if len(srcs):
        dsts = np.concatenate([a[1:] for a in arrays])
        keep = srcs != dsts
        if keep.any():
            span = int(nodes[-1]) + 1
            pairs = np.unique(srcs[keep] * span + dsts[keep])
            for src, dst in zip((pairs // span).tolist(), (pairs % span).tolist()):
                adjacency[src].add(dst)
    return adjacency


def topological_voxel_order(
    per_ray_orders: Sequence[Sequence[int]],
    voxel_depths: Optional[Union[Dict[int, float], np.ndarray]] = None,
) -> VoxelOrderResult:
    """Kahn's algorithm over the per-ray dependency graph.

    Parameters
    ----------
    per_ray_orders:
        Front-to-back voxel id sequences, one per sampled ray.
    voxel_depths:
        Optional per-voxel depth used two ways: as the tie-break priority so
        voxels whose order is unconstrained are still released front-to-back,
        and to pick the victim when a dependency cycle has to be broken.

    Returns
    -------
    :class:`VoxelOrderResult` whose ``order`` contains every voxel appearing
    in any ray exactly once.
    """
    arrays = [
        np.asarray(order, dtype=np.int64) for order in per_ray_orders if len(order)
    ]
    if not arrays:
        return VoxelOrderResult(order=[], num_nodes=0, num_edges=0, cycles_broken=0)
    nodes = np.unique(np.concatenate(arrays))
    srcs = np.concatenate([a[:-1] for a in arrays])
    span = int(nodes[-1]) + 1
    if len(srcs):
        dsts = np.concatenate([a[1:] for a in arrays])
        keep = srcs != dsts
        pairs = np.unique(srcs[keep] * span + dsts[keep])
    else:
        pairs = srcs
    num_edges = len(pairs)

    # Priorities are static, so resolve them once; the extra node tie-break
    # keys make the cycle-victim choice deterministic on values alone.
    node_list = nodes.tolist()
    if voxel_depths is None:
        priorities = nodes.astype(np.float64)
    elif isinstance(voxel_depths, np.ndarray):
        # Array form: renamed voxel ids index directly (complete coverage).
        priorities = voxel_depths[nodes].astype(np.float64)
    else:
        priorities = np.array(
            [
                float(voxel_depths[node]) if node in voxel_depths else float(node)
                for node in node_list
            ]
        )

    # Fast path: when the (priority, node)-sorted candidate order already
    # satisfies every dependency edge, Kahn's heap provably pops exactly
    # that order (the minimal remaining key always has all predecessors
    # emitted, so it is ready and is the heap minimum) with no cycle
    # breaks — so the sorted order can be returned without running the
    # per-node Python loop at all.
    perm = np.lexsort((nodes, priorities))
    position = np.empty(span, dtype=np.int64)
    position[nodes[perm]] = np.arange(len(nodes))
    if num_edges == 0 or bool(
        np.all(position[pairs // span] < position[pairs % span])
    ):
        return VoxelOrderResult(
            order=nodes[perm].tolist(),
            num_nodes=len(nodes),
            num_edges=num_edges,
            cycles_broken=0,
            in_degree_table={node: 0 for node in node_list},
        )

    adjacency: Dict[int, Set[int]] = {node: set() for node in node_list}
    for src, dst in zip((pairs // span).tolist(), (pairs % span).tolist()):
        adjacency[src].add(dst)
    in_degree: Dict[int, int] = {node: 0 for node in adjacency}
    for dsts_set in adjacency.values():
        for dst in dsts_set:
            in_degree[dst] += 1
    priority = dict(zip(node_list, priorities.tolist()))

    ready = [(priority[node], node) for node, deg in in_degree.items() if deg == 0]
    heapq.heapify(ready)
    order: List[int] = []
    remaining = set(adjacency)
    cycles_broken = 0
    heappop = heapq.heappop
    heappush = heapq.heappush

    while remaining:
        if not ready:
            # Cycle: release the shallowest remaining voxel.
            victim = min(remaining, key=lambda n: (priority[n], n))
            ready = [(priority[victim], victim)]
            in_degree[victim] = 0
            cycles_broken += 1
        _, node = heappop(ready)
        if node not in remaining:
            continue
        order.append(node)
        remaining.discard(node)
        for dst in adjacency[node]:
            if dst in remaining:
                in_degree[dst] -= 1
                if in_degree[dst] == 0:
                    heappush(ready, (priority[dst], dst))

    return VoxelOrderResult(
        order=order,
        num_nodes=len(adjacency),
        num_edges=num_edges,
        cycles_broken=cycles_broken,
        in_degree_table=in_degree,
    )


def order_violation_count(
    order: Sequence[int], per_ray_orders: Sequence[Sequence[int]]
) -> int:
    """Number of per-ray precedence constraints violated by ``order``.

    Zero when the dependency graph is acyclic; used by tests and by the
    cycle-breaking statistics.
    """
    position = {voxel: i for i, voxel in enumerate(order)}
    violations = 0
    for ray_order in per_ray_orders:
        for src, dst in zip(ray_order[:-1], ray_order[1:]):
            if src == dst:
                continue
            if src in position and dst in position and position[src] > position[dst]:
                violations += 1
    return violations


def topological_orders_for_tables(
    tables: Dict[int, "object"],
    voxel_depths: Optional[Union[Dict[int, float], np.ndarray]] = None,
) -> Dict[int, VoxelOrderResult]:
    """Global voxel orders for many tiles' ordering tables at once.

    Part of the whole-frame preparation the engine's frame cache memoizes
    alongside :func:`repro.core.ray_voxel.ordering_tables_for_tiles`.
    """
    return {
        tile_id: topological_voxel_order(
            table.per_ray_orders, voxel_depths=voxel_depths
        )
        for tile_id, table in tables.items()
    }


def voxel_depth_values(grid, camera) -> np.ndarray:
    """Camera-space depth of every voxel centre, indexed by renamed id.

    Computed in one vectorised batch over all renamed voxels; the array
    form indexes directly with renamed voxel ids and is what the frame
    preparation feeds the topological sort.
    """
    if grid.num_voxels == 0:
        return np.zeros(0, dtype=np.float64)
    raw = np.asarray(grid.renamed_to_raw, dtype=np.int64)
    x = raw % grid.dims[0]
    y = (raw // grid.dims[0]) % grid.dims[1]
    z = raw // (grid.dims[0] * grid.dims[1])
    coords = np.stack([x, y, z], axis=1)
    centers = grid.origin + (coords + 0.5) * grid.voxel_size
    cam = camera.world_to_camera(centers)
    return cam[:, 2].astype(np.float64)


def voxel_depth_map(grid, camera) -> Dict[int, float]:
    """Camera-space depth of every voxel centre (topological-sort tie-break)."""
    return dict(enumerate(voxel_depth_values(grid, camera).tolist()))
