"""Global voxel rendering order via DAG construction and topological sort.

Pixels within one group intersect different (but overlapping) voxel
sequences; the paper merges the per-ray orders into a dependency graph —
an edge ``u -> v`` means some ray renders voxel ``u`` before voxel ``v`` —
and establishes a single global order with Kahn's topological sort
(Sec. III-B, reference [22]).  When rays disagree (the graph has a cycle,
which can happen for voxels at nearly identical depth seen from different
pixels), the cycle is broken by releasing the voxel closest to the camera,
which is the depth-correct choice for the pixels that matter most.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np


@dataclass
class VoxelOrderResult:
    """Result of the global voxel ordering."""

    order: List[int]                 # global rendering order (renamed voxel ids)
    num_nodes: int
    num_edges: int
    cycles_broken: int
    in_degree_table: Dict[int, int] = field(default_factory=dict)

    @property
    def is_valid_permutation(self) -> bool:
        """True when every input voxel appears exactly once in the order."""
        return len(self.order) == self.num_nodes and len(set(self.order)) == len(
            self.order
        )


def build_dependency_graph(
    per_ray_orders: Sequence[Sequence[int]],
) -> Dict[int, Set[int]]:
    """Adjacency table (source -> set of destinations) from per-ray orders.

    Consecutive voxels of each ray contribute one edge; this is the adjacent
    table the VSU builds in hardware (Fig. 10).
    """
    adjacency: Dict[int, Set[int]] = {}
    for order in per_ray_orders:
        for src, dst in zip(order[:-1], order[1:]):
            if src == dst:
                continue
            adjacency.setdefault(src, set()).add(dst)
            adjacency.setdefault(dst, set())
        if order:
            adjacency.setdefault(order[0], set())
            adjacency.setdefault(order[-1], set())
    return adjacency


def topological_voxel_order(
    per_ray_orders: Sequence[Sequence[int]],
    voxel_depths: Optional[Dict[int, float]] = None,
) -> VoxelOrderResult:
    """Kahn's algorithm over the per-ray dependency graph.

    Parameters
    ----------
    per_ray_orders:
        Front-to-back voxel id sequences, one per sampled ray.
    voxel_depths:
        Optional per-voxel depth used two ways: as the tie-break priority so
        voxels whose order is unconstrained are still released front-to-back,
        and to pick the victim when a dependency cycle has to be broken.

    Returns
    -------
    :class:`VoxelOrderResult` whose ``order`` contains every voxel appearing
    in any ray exactly once.
    """
    adjacency = build_dependency_graph(per_ray_orders)
    if not adjacency:
        return VoxelOrderResult(order=[], num_nodes=0, num_edges=0, cycles_broken=0)

    in_degree: Dict[int, int] = {node: 0 for node in adjacency}
    num_edges = 0
    for src, dsts in adjacency.items():
        for dst in dsts:
            in_degree[dst] += 1
            num_edges += 1

    def priority(node: int) -> float:
        if voxel_depths is not None and node in voxel_depths:
            return float(voxel_depths[node])
        return float(node)

    ready = [(priority(node), node) for node, deg in in_degree.items() if deg == 0]
    heapq.heapify(ready)
    order: List[int] = []
    remaining = set(adjacency)
    cycles_broken = 0

    while remaining:
        if not ready:
            # Cycle: release the shallowest remaining voxel.
            victim = min(remaining, key=priority)
            ready = [(priority(victim), victim)]
            in_degree[victim] = 0
            cycles_broken += 1
        _, node = heapq.heappop(ready)
        if node not in remaining:
            continue
        order.append(node)
        remaining.discard(node)
        for dst in adjacency[node]:
            if dst in remaining:
                in_degree[dst] -= 1
                if in_degree[dst] == 0:
                    heapq.heappush(ready, (priority(dst), dst))

    return VoxelOrderResult(
        order=order,
        num_nodes=len(adjacency),
        num_edges=num_edges,
        cycles_broken=cycles_broken,
        in_degree_table=in_degree,
    )


def order_violation_count(
    order: Sequence[int], per_ray_orders: Sequence[Sequence[int]]
) -> int:
    """Number of per-ray precedence constraints violated by ``order``.

    Zero when the dependency graph is acyclic; used by tests and by the
    cycle-breaking statistics.
    """
    position = {voxel: i for i, voxel in enumerate(order)}
    violations = 0
    for ray_order in per_ray_orders:
        for src, dst in zip(ray_order[:-1], ray_order[1:]):
            if src == dst:
                continue
            if src in position and dst in position and position[src] > position[dst]:
                violations += 1
    return violations


def topological_orders_for_tables(
    tables: Dict[int, "object"],
    voxel_depths: Optional[Dict[int, float]] = None,
) -> Dict[int, VoxelOrderResult]:
    """Global voxel orders for many tiles' ordering tables at once.

    Part of the whole-frame preparation the engine's frame cache memoizes
    alongside :func:`repro.core.ray_voxel.ordering_tables_for_tiles`.
    """
    return {
        tile_id: topological_voxel_order(
            table.per_ray_orders, voxel_depths=voxel_depths
        )
        for tile_id, table in tables.items()
    }


def voxel_depth_map(grid, camera) -> Dict[int, float]:
    """Camera-space depth of every voxel centre (topological-sort tie-break).

    Computed in one vectorised batch over all renamed voxels.
    """
    depths: Dict[int, float] = {}
    if grid.num_voxels == 0:
        return depths
    raw = np.asarray(grid.renamed_to_raw, dtype=np.int64)
    x = raw % grid.dims[0]
    y = (raw // grid.dims[0]) % grid.dims[1]
    z = raw // (grid.dims[0] * grid.dims[1])
    coords = np.stack([x, y, z], axis=1)
    centers = grid.origin + (coords + 0.5) * grid.voxel_size
    cam = camera.world_to_camera(centers)
    for voxel_id, depth in enumerate(cam[:, 2]):
        depths[voxel_id] = float(depth)
    return depths
