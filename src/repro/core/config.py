"""Configuration of the streaming pipeline."""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Temporal-coherence modes of the streaming renderer.
TEMPORAL_MODES = ("off", "carry")


@dataclass(frozen=True)
class StreamingConfig:
    """Parameters of the memory-centric streaming renderer.

    Attributes
    ----------
    voxel_size:
        Edge length of the cubic voxels the scene is partitioned into.  The
        paper uses 2.0 for real-world scenes and 0.4 for synthetic scenes
        (Sec. V-A) and studies the sensitivity in Fig. 12.
    tile_size:
        Edge length (pixels) of the pixel groups rendered together.
    ray_stride:
        Stride (pixels) between the rays sampled inside a pixel group when
        building the voxel ordering table.  1 samples every pixel; the VSU
        hardware samples a subset, which is sufficient because neighbouring
        pixels traverse nearly identical voxel sequences.
    ray_step_fraction:
        Ray-marching step used by the voxel traversal, as a fraction of the
        voxel size (only used by the sampling-based traversal; the DDA
        traversal is exact).
    sh_degree:
        Spherical-harmonics degree used for colour.
    use_coarse_filter:
        Enable the coarse-grained filter (disabled in the "w/o CGF" and
        "w/o VQ+CGF" variants of Fig. 11).
    use_vq:
        Fetch the second half as codebook indices (disabled in the
        "w/o VQ+CGF" variant).
    max_voxels_per_ray:
        Safety bound on traversal length.
    background:
        Background colour composited behind the accumulated radiance.
    blend_kernel:
        Name of the engine blending kernel (``"vectorized"`` by default;
        ``"reference"`` selects the per-Gaussian loop — both are
        numerically equivalent, see :mod:`repro.engine.kernels`).
    streaming_kernel:
        Per-voxel render path of the streaming pipeline.  ``"vectorized"``
        (default) batches the hierarchical filter over all voxels of a
        tile, depth-sorts the survivors segment-wise, and blends the whole
        tile stream through one call of the broadcast kernel;
        ``"reference"`` is the voxel-at-a-time loop kept as an escape
        hatch.  Both produce identical :class:`StreamingStats` and images
        within 1e-9.  The fast path is built on the broadcast blend
        machinery, so selecting ``blend_kernel="reference"`` also routes
        streaming renders through the voxel-at-a-time loop.
    frame_cache_size:
        Number of prepared frames (voxel depth map, per-tile ordering
        tables, topological orders) memoized per camera pose; 0 disables
        the frame-preparation cache.
    temporal_mode:
        Frame-over-frame coherence exploitation for trajectory workloads.
        ``"off"`` (default) renders every frame cold; ``"carry"`` carries
        content-keyed per-tile state (candidate gathers, topological
        orders) from frame to frame and renders through the
        frame-restructured fast path (:mod:`repro.engine.temporal`) —
        images stay within 1e-9 of ``"off"`` and :class:`StreamingStats`
        stay exactly equal.  The carry path requires the vectorized
        streaming/blend kernels and serial tiles; other configurations
        fall back to the cold path (recorded in the telemetry).
    """

    voxel_size: float = 2.0
    tile_size: int = 16
    ray_stride: int = 4
    ray_step_fraction: float = 0.5
    sh_degree: int = 3
    use_coarse_filter: bool = True
    use_vq: bool = True
    max_voxels_per_ray: int = 512
    background: tuple = (0.0, 0.0, 0.0)
    blend_kernel: str = "vectorized"
    streaming_kernel: str = "vectorized"
    frame_cache_size: int = 8
    temporal_mode: str = "off"

    def __post_init__(self) -> None:
        if self.voxel_size <= 0:
            raise ValueError(f"voxel_size must be positive, got {self.voxel_size!r}")
        if self.tile_size <= 0:
            raise ValueError(f"tile_size must be positive, got {self.tile_size!r}")
        if self.ray_stride <= 0:
            raise ValueError(f"ray_stride must be positive, got {self.ray_stride!r}")
        if not 0 < self.ray_step_fraction <= 1.0:
            raise ValueError(
                f"ray_step_fraction must be in (0, 1], got {self.ray_step_fraction!r}"
            )
        if self.sh_degree < 0 or self.sh_degree > 3:
            raise ValueError(f"sh_degree must be in [0, 3], got {self.sh_degree!r}")
        if self.max_voxels_per_ray <= 0:
            raise ValueError(
                f"max_voxels_per_ray must be positive, got {self.max_voxels_per_ray!r}"
            )
        from repro.engine.kernels import KERNELS

        if self.blend_kernel not in KERNELS:
            raise ValueError(
                f"unknown blend_kernel {self.blend_kernel!r}; "
                f"available: {sorted(KERNELS)}"
            )
        from repro.core.pipeline import STREAMING_KERNELS

        if self.streaming_kernel not in STREAMING_KERNELS:
            raise ValueError(
                f"unknown streaming_kernel {self.streaming_kernel!r}; "
                f"available: {sorted(STREAMING_KERNELS)}"
            )
        if self.frame_cache_size < 0:
            raise ValueError(
                f"frame_cache_size must be non-negative, got {self.frame_cache_size!r}"
            )
        if self.temporal_mode not in TEMPORAL_MODES:
            raise ValueError(
                f"unknown temporal_mode {self.temporal_mode!r}; "
                f"available: {sorted(TEMPORAL_MODES)}"
            )

    def with_options(self, **kwargs) -> "StreamingConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def for_scene_category(cls, category: str, **kwargs) -> "StreamingConfig":
        """The paper's default voxel size for a scene category.

        ``real`` scenes use a voxel size of 2.0 and ``synthetic`` scenes use
        0.4 (Sec. V-A).
        """
        if category == "real":
            voxel_size = 2.0
        elif category == "synthetic":
            voxel_size = 0.4
        else:
            raise ValueError(f"unknown scene category {category!r}")
        return cls(voxel_size=voxel_size, **kwargs)
