"""The customized DRAM data layout (Sec. III-C, Fig. 8) and its byte accounting.

Gaussian features are split into two halves stored separately per voxel:

* the **first half** — position + maximum scale (4 float32 = 16 bytes),
  uncompressed, read by every coarse-grained filter test;
* the **second half** — the remaining 55 parameters, stored either raw
  (220 bytes) or as vector-quantisation codebook indices plus the raw
  opacity scalar (~10 bytes), read only for Gaussians that pass the coarse
  filter.

Gaussians of one voxel are contiguous in DRAM, so streaming a voxel is a
sequence of long sequential bursts — the memory-access regularisation the
memory-centric paradigm is built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compression.vq import VectorQuantizer
from repro.core.voxel_grid import VoxelGrid
from repro.gaussians.model import (
    COARSE_PARAMS_PER_GAUSSIAN,
    FINE_PARAMS_PER_GAUSSIAN,
    GaussianModel,
)

#: Bytes of the uncompressed first half (x, y, z, max scale as float32).
FIRST_HALF_BYTES = COARSE_PARAMS_PER_GAUSSIAN * 4

#: Bytes of the raw (un-quantised) second half.
RAW_SECOND_HALF_BYTES = FINE_PARAMS_PER_GAUSSIAN * 4

#: Bytes written back to DRAM per rendered pixel (RGB float32 + accumulated
#: alpha float32) — the only intermediate-free off-chip write of the
#: streaming pipeline.
PIXEL_WRITE_BYTES = 16

#: DRAM burst granularity used to round per-voxel reads (LPDDR3, 32-byte
#: minimum burst per channel access).
DRAM_BURST_BYTES = 32


@dataclass
class LayoutTraffic:
    """Byte-level DRAM traffic accounting for the streaming pipeline."""

    first_half_bytes: int = 0
    second_half_bytes: int = 0
    pixel_write_bytes: int = 0
    metadata_bytes: int = 0

    def merge(self, other: "LayoutTraffic") -> "LayoutTraffic":
        return LayoutTraffic(
            first_half_bytes=self.first_half_bytes + other.first_half_bytes,
            second_half_bytes=self.second_half_bytes + other.second_half_bytes,
            pixel_write_bytes=self.pixel_write_bytes + other.pixel_write_bytes,
            metadata_bytes=self.metadata_bytes + other.metadata_bytes,
        )

    @property
    def read_bytes(self) -> int:
        return self.first_half_bytes + self.second_half_bytes + self.metadata_bytes

    @property
    def write_bytes(self) -> int:
        return self.pixel_write_bytes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


def _round_burst(num_bytes: float) -> int:
    """Round a transfer up to the DRAM burst granularity."""
    if num_bytes <= 0:
        return 0
    return int(np.ceil(num_bytes / DRAM_BURST_BYTES) * DRAM_BURST_BYTES)


@dataclass
class DataLayout:
    """The per-voxel two-half DRAM layout of a Gaussian model.

    Parameters
    ----------
    grid:
        The voxel partition (defines the contiguous storage order).
    quantizer:
        A fitted :class:`VectorQuantizer`; when ``None`` (or ``use_vq`` is
        False) the second half is stored raw.
    use_vq:
        Store the second half as codebook indices.
    """

    grid: VoxelGrid
    quantizer: Optional[VectorQuantizer] = None
    use_vq: bool = True
    voxel_addresses: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.use_vq and self.quantizer is not None and not self.quantizer.is_fitted:
            raise ValueError("quantizer must be fitted before building the layout")
        self._assign_addresses()

    # ------------------------------------------------------------------
    @property
    def second_half_bytes_per_gaussian(self) -> float:
        """DRAM bytes fetched per Gaussian that passes the coarse filter."""
        if self.use_vq and self.quantizer is not None:
            return self.quantizer.compressed_bytes_per_gaussian()
        return float(RAW_SECOND_HALF_BYTES)

    @property
    def first_half_bytes_per_gaussian(self) -> float:
        """DRAM bytes fetched per Gaussian streamed with its voxel."""
        return float(FIRST_HALF_BYTES)

    def second_half_traffic_reduction(self) -> float:
        """Fraction of second-half bytes removed by VQ (paper: 92.3 %)."""
        return 1.0 - self.second_half_bytes_per_gaussian / RAW_SECOND_HALF_BYTES

    def codebook_sram_bytes(self) -> int:
        """On-chip bytes required for the codebooks (0 when VQ is disabled)."""
        if self.use_vq and self.quantizer is not None:
            return self.quantizer.codebook_storage_bytes()
        return 0

    # ------------------------------------------------------------------
    def _assign_addresses(self) -> None:
        """Assign contiguous DRAM address ranges voxel by voxel (Fig. 8)."""
        address = 0
        self.voxel_addresses.clear()
        for voxel_id in range(self.grid.num_voxels):
            count = int(self.grid.voxel_counts[voxel_id])
            first = _round_burst(count * self.first_half_bytes_per_gaussian)
            second = _round_burst(count * self.second_half_bytes_per_gaussian)
            self.voxel_addresses[voxel_id] = (address, first + second)
            address += first + second

    def total_model_bytes(self) -> int:
        """DRAM footprint of the whole model under this layout."""
        return sum(size for _, size in self.voxel_addresses.values())

    # ------------------------------------------------------------------
    # Traffic of streaming operations
    # ------------------------------------------------------------------
    def voxel_stream_traffic(
        self, voxel_id: int, coarse_passed: int
    ) -> LayoutTraffic:
        """Traffic of streaming one voxel for one tile.

        The first half of every Gaussian in the voxel is read (that is what
        "streaming the voxel" means); the second half is only read for the
        ``coarse_passed`` Gaussians that survive the coarse-grained filter.
        """
        count = int(self.grid.voxel_counts[voxel_id])
        if coarse_passed < 0 or coarse_passed > count:
            raise ValueError("coarse_passed must be in [0, voxel population]")
        return LayoutTraffic(
            first_half_bytes=_round_burst(count * self.first_half_bytes_per_gaussian),
            second_half_bytes=_round_burst(
                coarse_passed * self.second_half_bytes_per_gaussian
            ),
        )

    def voxel_stream_traffic_batch(
        self, voxel_ids: np.ndarray, coarse_passed: np.ndarray
    ) -> LayoutTraffic:
        """Aggregate traffic of streaming many voxels for one tile.

        Exactly the merge of per-voxel :meth:`voxel_stream_traffic` calls —
        the per-voxel burst rounding happens element-wise before the sum,
        so the accounting is identical to the serial loop's.
        """
        voxel_ids = np.asarray(voxel_ids, dtype=np.int64)
        coarse_passed = np.asarray(coarse_passed, dtype=np.int64)
        if len(voxel_ids) == 0:
            return LayoutTraffic()
        counts = self.grid.voxel_counts[voxel_ids]
        if np.any(coarse_passed < 0) or np.any(coarse_passed > counts):
            raise ValueError("coarse_passed must be in [0, voxel population]")
        first = (
            np.ceil(counts * self.first_half_bytes_per_gaussian / DRAM_BURST_BYTES)
            .astype(np.int64)
            * DRAM_BURST_BYTES
        )
        second = (
            np.ceil(
                coarse_passed * self.second_half_bytes_per_gaussian / DRAM_BURST_BYTES
            ).astype(np.int64)
            * DRAM_BURST_BYTES
        )
        return LayoutTraffic(
            first_half_bytes=int(first.sum()), second_half_bytes=int(second.sum())
        )

    @staticmethod
    def pixel_write_traffic(num_pixels: int) -> LayoutTraffic:
        """Traffic of writing final pixel values for ``num_pixels`` pixels."""
        return LayoutTraffic(pixel_write_bytes=num_pixels * PIXEL_WRITE_BYTES)

    @staticmethod
    def ordering_metadata_traffic(num_table_entries: int) -> LayoutTraffic:
        """Traffic of the (small) voxel ordering metadata per tile.

        Each table entry is a renamed voxel id (4 bytes); in hardware the
        table lives on-chip, but the ids of the non-empty voxels still have
        to be known, so we charge one id read per entry.
        """
        return LayoutTraffic(metadata_bytes=4 * num_table_entries)


def render_model(
    model: GaussianModel, layout: DataLayout
) -> GaussianModel:
    """The model the accelerator actually renders under this layout.

    With VQ enabled the second half is reconstructed from the codebooks
    (quantisation error included); without VQ the model is returned as is.
    """
    if layout.use_vq and layout.quantizer is not None:
        return layout.quantizer.roundtrip(model)
    return model
