"""Ray/voxel intersection and the per-tile voxel ordering table (Fig. 5).

For every pixel group the VSU samples rays through (a subset of) its pixels
and records, per ray, the front-to-back sequence of non-empty voxels the ray
passes through.  This module provides an exact amanatides-woo style 3D-DDA
traversal plus the ordering-table construction the topological sort consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.voxel_grid import VoxelGrid
from repro.gaussians.camera import Camera


def _ray_box_intersection(
    origin: np.ndarray, direction: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> Tuple[float, float]:
    """Entry/exit parameters of a ray against an AABB (slab method).

    Returns ``(t_enter, t_exit)``; the ray misses the box when
    ``t_enter > t_exit`` or ``t_exit < 0``.
    """
    inv = np.where(np.abs(direction) < 1e-12, np.inf, 1.0 / direction)
    t0 = (lo - origin) * inv
    t1 = (hi - origin) * inv
    t_near = np.minimum(t0, t1)
    t_far = np.maximum(t0, t1)
    return float(np.max(t_near)), float(np.min(t_far))


def traverse_ray(
    grid: VoxelGrid,
    origin: np.ndarray,
    direction: np.ndarray,
    max_voxels: int = 512,
    include_empty: bool = False,
) -> List[int]:
    """Front-to-back list of voxel ids a ray traverses (3D-DDA).

    Parameters
    ----------
    grid:
        The voxel grid.
    origin, direction:
        Ray origin and (not necessarily unit) direction in world space.
    max_voxels:
        Traversal length bound.
    include_empty:
        If True, raw (spatial) ids of *all* traversed voxels are returned;
        otherwise only non-empty voxels are returned, as renamed ids — this
        is what the VSU's renaming table produces.

    Returns
    -------
    List of voxel ids ordered front-to-back along the ray.
    """
    origin = np.asarray(origin, dtype=np.float64)
    direction = np.asarray(direction, dtype=np.float64)
    norm = np.linalg.norm(direction)
    if norm < 1e-12:
        raise ValueError("ray direction must be non-zero")
    direction = direction / norm

    grid_lo = grid.origin
    grid_hi = grid.origin + grid.dims * grid.voxel_size
    t_enter, t_exit = _ray_box_intersection(origin, direction, grid_lo, grid_hi)
    if t_enter > t_exit or t_exit < 0.0:
        return []
    t_current = max(t_enter, 0.0) + 1e-9

    position = origin + t_current * direction
    coords = np.floor((position - grid_lo) / grid.voxel_size).astype(np.int64)
    coords = np.clip(coords, 0, grid.dims - 1)

    step = np.where(direction > 0, 1, np.where(direction < 0, -1, 0)).astype(np.int64)
    with np.errstate(divide="ignore"):
        inv_dir = np.where(np.abs(direction) < 1e-12, np.inf, 1.0 / direction)
    next_boundary = grid_lo + (coords + (step > 0)) * grid.voxel_size
    t_max = np.where(
        step == 0, np.inf, (next_boundary - origin) * inv_dir
    )
    t_delta = np.where(step == 0, np.inf, grid.voxel_size * np.abs(inv_dir))

    visited: List[int] = []
    for _ in range(max_voxels):
        raw_id = int(
            coords[0] + grid.dims[0] * (coords[1] + grid.dims[1] * coords[2])
        )
        if include_empty:
            visited.append(raw_id)
        else:
            renamed = grid.rename(raw_id)
            if renamed >= 0:
                visited.append(renamed)
        axis = int(np.argmin(t_max))
        if t_max[axis] > t_exit:
            break
        coords[axis] += step[axis]
        if coords[axis] < 0 or coords[axis] >= grid.dims[axis]:
            break
        t_max[axis] += t_delta[axis]
    return visited


def traverse_rays(
    grid: VoxelGrid,
    origins: np.ndarray,
    directions: np.ndarray,
    max_voxels: int = 512,
) -> List[List[int]]:
    """Batched 3D-DDA: front-to-back non-empty voxel lists for many rays.

    Vectorizes :func:`traverse_ray` over the ray axis — every update
    (entry/exit slabs, axis selection, boundary stepping) runs as one NumPy
    operation across all still-active rays, and the per-ray results are
    identical to the scalar traversal (the arithmetic is element-wise the
    same).  This is the hot loop of cold frame preparation: one call
    traverses every sampled ray of a frame instead of one Python DDA per
    ray.
    """
    origins = np.asarray(origins, dtype=np.float64).reshape(-1, 3)
    directions = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    num_rays = len(origins)
    if num_rays == 0:
        return []
    norms = np.linalg.norm(directions, axis=1)
    if np.any(norms < 1e-12):
        raise ValueError("ray direction must be non-zero")
    directions = directions / norms[:, None]

    grid_lo = grid.origin
    grid_hi = grid.origin + grid.dims * grid.voxel_size
    inv = np.where(np.abs(directions) < 1e-12, np.inf, 1.0 / directions)
    t0 = (grid_lo[None, :] - origins) * inv
    t1 = (grid_hi[None, :] - origins) * inv
    t_enter = np.max(np.minimum(t0, t1), axis=1)
    t_exit = np.min(np.maximum(t0, t1), axis=1)
    active = ~((t_enter > t_exit) | (t_exit < 0.0))

    t_current = np.maximum(t_enter, 0.0) + 1e-9
    position = origins + t_current[:, None] * directions
    coords = np.floor((position - grid_lo[None, :]) / grid.voxel_size).astype(np.int64)
    coords = np.clip(coords, 0, grid.dims[None, :] - 1)

    step = np.where(
        directions > 0, 1, np.where(directions < 0, -1, 0)
    ).astype(np.int64)
    next_boundary = grid_lo[None, :] + (coords + (step > 0)) * grid.voxel_size
    t_max = np.where(step == 0, np.inf, (next_boundary - origins) * inv)
    t_delta = np.where(step == 0, np.inf, grid.voxel_size * np.abs(inv))

    # Per-step raw voxel ids; -1 marks rays that already terminated.
    visited_steps: List[np.ndarray] = []
    ray_index = np.arange(num_rays)
    for _ in range(max_voxels):
        if not np.any(active):
            break
        raw = np.where(
            active,
            coords[:, 0] + grid.dims[0] * (coords[:, 1] + grid.dims[1] * coords[:, 2]),
            -1,
        )
        visited_steps.append(raw)
        live = np.flatnonzero(active)
        axis = np.argmin(t_max[live], axis=1)
        crossing = t_max[live, axis] <= t_exit[live]
        active[live[~crossing]] = False
        live = live[crossing]
        axis = axis[crossing]
        coords[live, axis] += step[live, axis]
        inside = (coords[live, axis] >= 0) & (coords[live, axis] < grid.dims[axis])
        active[live[~inside]] = False
        live, axis = live[inside], axis[inside]
        t_max[live, axis] += t_delta[live, axis]

    if not visited_steps:
        return [[] for _ in range(num_rays)]
    raw_matrix = np.stack(visited_steps, axis=1)          # (R, S)
    # Vectorized renaming-table lookup: empty voxels are absent from
    # ``renamed_to_raw`` and resolve to -1, exactly like ``grid.rename``.
    raw_flat = raw_matrix.reshape(-1)
    lookup = np.searchsorted(grid.renamed_to_raw, raw_flat)
    lookup = np.clip(lookup, 0, len(grid.renamed_to_raw) - 1)
    renamed = np.where(
        (raw_flat >= 0) & (grid.renamed_to_raw[lookup] == raw_flat), lookup, -1
    ).reshape(raw_matrix.shape)
    # Per-ray int64 arrays (cheaper than Python int lists for the graph
    # build); callers treat them as front-to-back id sequences either way.
    return [row[row >= 0] for row in renamed]


@dataclass
class VoxelOrderingTable:
    """The per-ray voxel rendering orders of one pixel group (Fig. 5).

    Attributes
    ----------
    per_ray_orders:
        One front-to-back renamed-voxel-id sequence per sampled ray
        (int64 arrays from the batched traversal, plain lists accepted).
    rays_sampled:
        Number of rays that were traced.
    unique_voxels:
        Sorted array of all voxels that appear in any ray's order.
    """

    per_ray_orders: List[Sequence[int]]
    rays_sampled: int

    @property
    def unique_voxels(self) -> np.ndarray:
        seen = set()
        for order in self.per_ray_orders:
            seen.update(order)
        return np.array(sorted(seen), dtype=np.int64)

    @property
    def total_entries(self) -> int:
        """Total number of (ray, voxel) entries — the VSU's table size."""
        return sum(len(order) for order in self.per_ray_orders)


def _tile_ray_pixels(
    tile_bounds: Tuple[int, int, int, int], ray_stride: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Pixel coordinates of the rays sampled inside one tile.

    A regular grid with ``ray_stride`` spacing; the tile's corner pixels
    are always included so the traversed voxel set covers the tile's whole
    frustum footprint.
    """
    x0, y0, x1, y1 = tile_bounds
    if x1 <= x0 or y1 <= y0:
        raise ValueError("empty tile bounds")
    xs = list(range(x0, x1, ray_stride))
    ys = list(range(y0, y1, ray_stride))
    if (x1 - 1) not in xs:
        xs.append(x1 - 1)
    if (y1 - 1) not in ys:
        ys.append(y1 - 1)
    pixel_x, pixel_y = np.meshgrid(np.array(xs), np.array(ys))
    return pixel_x.reshape(-1), pixel_y.reshape(-1)


def voxel_ordering_table(
    grid: VoxelGrid,
    camera: Camera,
    tile_bounds: Tuple[int, int, int, int],
    ray_stride: int = 4,
    max_voxels_per_ray: int = 512,
) -> VoxelOrderingTable:
    """Build the voxel ordering table for one pixel group (image tile)."""
    pixel_x, pixel_y = _tile_ray_pixels(tile_bounds, ray_stride)
    origins, directions = camera.pixel_rays(pixel_x, pixel_y)
    orders = traverse_rays(
        grid, origins, directions, max_voxels=max_voxels_per_ray
    )
    return VoxelOrderingTable(
        per_ray_orders=[order for order in orders if len(order)],
        rays_sampled=len(origins),
    )


def ordering_tables_for_tiles(
    grid: VoxelGrid,
    camera: Camera,
    tile_bounds: Dict[int, Tuple[int, int, int, int]],
    ray_stride: int = 4,
    max_voxels_per_ray: int = 512,
) -> Dict[int, VoxelOrderingTable]:
    """Voxel ordering tables for many pixel groups of one camera pose.

    The whole-frame preparation the engine's frame cache memoizes: the
    tables depend only on the grid geometry, the camera pose and the
    traversal parameters, so repeated renders of the same view reuse them.
    Every sampled ray of every tile is traversed in one batched 3D-DDA
    call (:func:`traverse_rays`); the per-tile tables are identical to
    building each tile on its own.
    """
    tile_pixels = {
        tile_id: _tile_ray_pixels(bounds, ray_stride)
        for tile_id, bounds in tile_bounds.items()
    }
    if not tile_pixels:
        return {}
    all_x = np.concatenate([px for px, _ in tile_pixels.values()])
    all_y = np.concatenate([py for _, py in tile_pixels.values()])
    origins, directions = camera.pixel_rays(all_x, all_y)
    orders = traverse_rays(
        grid, origins, directions, max_voxels=max_voxels_per_ray
    )
    tables: Dict[int, VoxelOrderingTable] = {}
    offset = 0
    for tile_id, (px, _) in tile_pixels.items():
        tile_orders = orders[offset : offset + len(px)]
        offset += len(px)
        tables[tile_id] = VoxelOrderingTable(
            per_ray_orders=[order for order in tile_orders if len(order)],
            rays_sampled=len(px),
        )
    return tables
