"""Ray/voxel intersection and the per-tile voxel ordering table (Fig. 5).

For every pixel group the VSU samples rays through (a subset of) its pixels
and records, per ray, the front-to-back sequence of non-empty voxels the ray
passes through.  This module provides an exact amanatides-woo style 3D-DDA
traversal plus the ordering-table construction the topological sort consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.voxel_grid import VoxelGrid
from repro.gaussians.camera import Camera


def _ray_box_intersection(
    origin: np.ndarray, direction: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> Tuple[float, float]:
    """Entry/exit parameters of a ray against an AABB (slab method).

    Returns ``(t_enter, t_exit)``; the ray misses the box when
    ``t_enter > t_exit`` or ``t_exit < 0``.
    """
    inv = np.where(np.abs(direction) < 1e-12, np.inf, 1.0 / direction)
    t0 = (lo - origin) * inv
    t1 = (hi - origin) * inv
    t_near = np.minimum(t0, t1)
    t_far = np.maximum(t0, t1)
    return float(np.max(t_near)), float(np.min(t_far))


def traverse_ray(
    grid: VoxelGrid,
    origin: np.ndarray,
    direction: np.ndarray,
    max_voxels: int = 512,
    include_empty: bool = False,
) -> List[int]:
    """Front-to-back list of voxel ids a ray traverses (3D-DDA).

    Parameters
    ----------
    grid:
        The voxel grid.
    origin, direction:
        Ray origin and (not necessarily unit) direction in world space.
    max_voxels:
        Traversal length bound.
    include_empty:
        If True, raw (spatial) ids of *all* traversed voxels are returned;
        otherwise only non-empty voxels are returned, as renamed ids — this
        is what the VSU's renaming table produces.

    Returns
    -------
    List of voxel ids ordered front-to-back along the ray.
    """
    origin = np.asarray(origin, dtype=np.float64)
    direction = np.asarray(direction, dtype=np.float64)
    norm = np.linalg.norm(direction)
    if norm < 1e-12:
        raise ValueError("ray direction must be non-zero")
    direction = direction / norm

    grid_lo = grid.origin
    grid_hi = grid.origin + grid.dims * grid.voxel_size
    t_enter, t_exit = _ray_box_intersection(origin, direction, grid_lo, grid_hi)
    if t_enter > t_exit or t_exit < 0.0:
        return []
    t_current = max(t_enter, 0.0) + 1e-9

    position = origin + t_current * direction
    coords = np.floor((position - grid_lo) / grid.voxel_size).astype(np.int64)
    coords = np.clip(coords, 0, grid.dims - 1)

    step = np.where(direction > 0, 1, np.where(direction < 0, -1, 0)).astype(np.int64)
    with np.errstate(divide="ignore"):
        inv_dir = np.where(np.abs(direction) < 1e-12, np.inf, 1.0 / direction)
    next_boundary = grid_lo + (coords + (step > 0)) * grid.voxel_size
    t_max = np.where(
        step == 0, np.inf, (next_boundary - origin) * inv_dir
    )
    t_delta = np.where(step == 0, np.inf, grid.voxel_size * np.abs(inv_dir))

    visited: List[int] = []
    for _ in range(max_voxels):
        raw_id = int(
            coords[0] + grid.dims[0] * (coords[1] + grid.dims[1] * coords[2])
        )
        if include_empty:
            visited.append(raw_id)
        else:
            renamed = grid.rename(raw_id)
            if renamed >= 0:
                visited.append(renamed)
        axis = int(np.argmin(t_max))
        if t_max[axis] > t_exit:
            break
        coords[axis] += step[axis]
        if coords[axis] < 0 or coords[axis] >= grid.dims[axis]:
            break
        t_max[axis] += t_delta[axis]
    return visited


@dataclass
class VoxelOrderingTable:
    """The per-ray voxel rendering orders of one pixel group (Fig. 5).

    Attributes
    ----------
    per_ray_orders:
        One front-to-back renamed-voxel-id list per sampled ray.
    rays_sampled:
        Number of rays that were traced.
    unique_voxels:
        Sorted array of all voxels that appear in any ray's order.
    """

    per_ray_orders: List[List[int]]
    rays_sampled: int

    @property
    def unique_voxels(self) -> np.ndarray:
        seen = set()
        for order in self.per_ray_orders:
            seen.update(order)
        return np.array(sorted(seen), dtype=np.int64)

    @property
    def total_entries(self) -> int:
        """Total number of (ray, voxel) entries — the VSU's table size."""
        return sum(len(order) for order in self.per_ray_orders)


def voxel_ordering_table(
    grid: VoxelGrid,
    camera: Camera,
    tile_bounds: Tuple[int, int, int, int],
    ray_stride: int = 4,
    max_voxels_per_ray: int = 512,
) -> VoxelOrderingTable:
    """Build the voxel ordering table for one pixel group (image tile).

    Rays are sampled on a regular grid with ``ray_stride`` spacing inside the
    tile; the tile's corner pixels are always included so the traversed voxel
    set covers the tile's whole frustum footprint.
    """
    x0, y0, x1, y1 = tile_bounds
    if x1 <= x0 or y1 <= y0:
        raise ValueError("empty tile bounds")
    xs = list(range(x0, x1, ray_stride))
    ys = list(range(y0, y1, ray_stride))
    if (x1 - 1) not in xs:
        xs.append(x1 - 1)
    if (y1 - 1) not in ys:
        ys.append(y1 - 1)
    pixel_x, pixel_y = np.meshgrid(np.array(xs), np.array(ys))
    origins, directions = camera.pixel_rays(pixel_x.reshape(-1), pixel_y.reshape(-1))

    per_ray_orders: List[List[int]] = []
    for origin, direction in zip(origins, directions):
        order = traverse_ray(
            grid, origin, direction, max_voxels=max_voxels_per_ray
        )
        if order:
            per_ray_orders.append(order)
    return VoxelOrderingTable(
        per_ray_orders=per_ray_orders, rays_sampled=len(origins)
    )


def ordering_tables_for_tiles(
    grid: VoxelGrid,
    camera: Camera,
    tile_bounds: Dict[int, Tuple[int, int, int, int]],
    ray_stride: int = 4,
    max_voxels_per_ray: int = 512,
) -> Dict[int, VoxelOrderingTable]:
    """Voxel ordering tables for many pixel groups of one camera pose.

    The whole-frame preparation the engine's frame cache memoizes: the
    tables depend only on the grid geometry, the camera pose and the
    traversal parameters, so repeated renders of the same view reuse them.
    """
    return {
        tile_id: voxel_ordering_table(
            grid,
            camera,
            bounds,
            ray_stride=ray_stride,
            max_voxels_per_ray=max_voxels_per_ray,
        )
        for tile_id, bounds in tile_bounds.items()
    }
