"""Two-phase hierarchical Gaussian filtering (Sec. III-B, Fig. 5).

Loading a whole voxel unavoidably brings Gaussians on-chip that do not
intersect the current image tile.  The hierarchical filter removes them in
two phases:

* **coarse-grained filter** — uses only the 4 uncompressed parameters
  (position + maximum scale, ~55 MACs per Gaussian) to conservatively test
  tile intersection; Gaussians that fail are dropped before their remaining
  55 parameters are ever fetched;
* **fine-grained filter** — for survivors, fetches (and de-quantises) the
  second half, computes the exact 2D covariance/conic/radius (~427 MACs) and
  performs the precise tile-intersection test; survivors proceed to sorting
  and rendering.

The filter also records the MAC and byte accounting used by the HFU energy
and traffic models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.projection import (
    ProjectedGaussians,
    coarse_project_centers,
    project_gaussians,
)

#: MACs per Gaussian in the coarse-grained filter (paper, Sec. IV-C).
COARSE_FILTER_MACS = 55

#: MACs per Gaussian in the fine-grained filter (paper, Sec. IV-C).
FINE_FILTER_MACS = 427


@dataclass
class FilterStats:
    """Accounting of one hierarchical-filter invocation (or an accumulation)."""

    gaussians_in: int = 0
    coarse_tested: int = 0
    coarse_passed: int = 0
    fine_tested: int = 0
    fine_passed: int = 0
    coarse_macs: int = 0
    fine_macs: int = 0

    def merge(self, other: "FilterStats") -> "FilterStats":
        """Element-wise sum (accumulate over voxels / tiles / frames)."""
        return FilterStats(
            gaussians_in=self.gaussians_in + other.gaussians_in,
            coarse_tested=self.coarse_tested + other.coarse_tested,
            coarse_passed=self.coarse_passed + other.coarse_passed,
            fine_tested=self.fine_tested + other.fine_tested,
            fine_passed=self.fine_passed + other.fine_passed,
            coarse_macs=self.coarse_macs + other.coarse_macs,
            fine_macs=self.fine_macs + other.fine_macs,
        )

    @property
    def coarse_reject_rate(self) -> float:
        """Fraction of tested Gaussians rejected by the coarse filter."""
        if self.coarse_tested == 0:
            return 0.0
        return 1.0 - self.coarse_passed / self.coarse_tested

    @property
    def overall_reduction(self) -> float:
        """Fraction of loaded Gaussians removed before sorting/rendering.

        The paper reports 76.3 % for the combined coarse + fine filtering.
        """
        if self.gaussians_in == 0:
            return 0.0
        return 1.0 - self.fine_passed / self.gaussians_in

    @property
    def total_macs(self) -> int:
        return self.coarse_macs + self.fine_macs


def _overlaps_tile(
    means2d: np.ndarray,
    radii: np.ndarray,
    depths: np.ndarray,
    tile_bounds: Tuple[int, int, int, int],
    near: float,
) -> np.ndarray:
    """AABB test of Gaussian footprints against a pixel-tile rectangle."""
    x0, y0, x1, y1 = tile_bounds
    in_front = depths > near
    overlap_x = (means2d[:, 0] + radii >= x0) & (means2d[:, 0] - radii < x1)
    overlap_y = (means2d[:, 1] + radii >= y0) & (means2d[:, 1] - radii < y1)
    return in_front & overlap_x & overlap_y


@dataclass
class FilterResult:
    """Outcome of filtering one voxel's Gaussians against one tile."""

    indices: np.ndarray                    # model indices that passed both phases
    projected: ProjectedGaussians          # precise projection of the survivors
    stats: FilterStats = field(default_factory=FilterStats)


@dataclass
class BatchedFilterResult:
    """Outcome of filtering *all* voxels of one tile in one batched pass.

    Survivors of every voxel are concatenated in voxel-stream order
    (``segment_ids`` maps each survivor row to its position in the input
    voxel list); the per-voxel accounting is held as parallel arrays so the
    pipeline can accumulate statistics for exactly the voxel prefix the
    reference loop would have processed before early termination.
    """

    #: (S,) model indices of the survivors, concatenated voxel by voxel.
    indices: np.ndarray
    #: Precise projection of the survivors (rows parallel to ``indices``).
    projected: ProjectedGaussians
    #: (S,) position of each survivor's voxel in the input voxel list.
    segment_ids: np.ndarray
    #: (V,) per-voxel accounting, parallel to the input voxel list.
    gaussians_in: np.ndarray
    coarse_tested: np.ndarray
    coarse_passed: np.ndarray
    fine_tested: np.ndarray
    fine_passed: np.ndarray

    @property
    def num_voxels(self) -> int:
        return len(self.gaussians_in)

    @property
    def survivor_counts(self) -> np.ndarray:
        """Alias of ``fine_passed``: survivors per voxel."""
        return self.fine_passed

    def prefix_stats(self, num_voxels: int) -> FilterStats:
        """Accumulated :class:`FilterStats` of the first ``num_voxels`` voxels.

        Identical to merging the serial loop's per-voxel stats over the
        same prefix — every field is an integer sum, so the accumulation is
        exact and associative.
        """
        k = num_voxels
        coarse_tested = int(self.coarse_tested[:k].sum())
        fine_tested = int(self.fine_tested[:k].sum())
        return FilterStats(
            gaussians_in=int(self.gaussians_in[:k].sum()),
            coarse_tested=coarse_tested,
            coarse_passed=int(self.coarse_passed[:k].sum()),
            fine_tested=fine_tested,
            fine_passed=int(self.fine_passed[:k].sum()),
            coarse_macs=COARSE_FILTER_MACS * coarse_tested,
            fine_macs=FINE_FILTER_MACS * fine_tested,
        )

    def voxel_stats(self, voxel: int) -> FilterStats:
        """The :class:`FilterStats` one serial ``filter_voxel`` call would report."""
        return FilterStats(
            gaussians_in=int(self.gaussians_in[voxel]),
            coarse_tested=int(self.coarse_tested[voxel]),
            coarse_passed=int(self.coarse_passed[voxel]),
            fine_tested=int(self.fine_tested[voxel]),
            fine_passed=int(self.fine_passed[voxel]),
            coarse_macs=COARSE_FILTER_MACS * int(self.coarse_tested[voxel]),
            fine_macs=FINE_FILTER_MACS * int(self.fine_tested[voxel]),
        )


class HierarchicalFilter:
    """The coarse + fine filtering pipeline of the HFU.

    Parameters
    ----------
    use_coarse_filter:
        When False (the paper's "w/o CGF" variants), every Gaussian of the
        voxel goes straight to the fine-grained phase, paying the full
        427-MAC projection and the full second-half fetch.
    sh_degree:
        SH degree used when the fine phase computes RGB values.
    """

    def __init__(self, use_coarse_filter: bool = True, sh_degree: int = 3) -> None:
        self.use_coarse_filter = use_coarse_filter
        self.sh_degree = sh_degree

    def filter_voxel(
        self,
        model: GaussianModel,
        voxel_indices: np.ndarray,
        camera: Camera,
        tile_bounds: Tuple[int, int, int, int],
    ) -> FilterResult:
        """Filter the Gaussians of one voxel against one image tile.

        Parameters
        ----------
        model:
            The full scene model (the voxel's Gaussians are selected from it).
        voxel_indices:
            Model indices of the Gaussians stored in the streamed voxel.
        camera:
            The rendering camera.
        tile_bounds:
            Pixel rectangle ``(x0, y0, x1, y1)`` of the current tile.
        """
        voxel_indices = np.asarray(voxel_indices, dtype=np.int64)
        stats = FilterStats(gaussians_in=len(voxel_indices))
        if len(voxel_indices) == 0:
            return FilterResult(
                indices=voxel_indices,
                projected=project_gaussians(model, camera, indices=voxel_indices),
                stats=stats,
            )

        candidates = voxel_indices
        if self.use_coarse_filter:
            means2d, depths, coarse_radii = coarse_project_centers(
                model.positions[voxel_indices],
                model.max_scales[voxel_indices],
                camera,
            )
            passed = _overlaps_tile(
                means2d, coarse_radii, depths, tile_bounds, camera.near
            )
            stats.coarse_tested = len(voxel_indices)
            stats.coarse_macs = COARSE_FILTER_MACS * len(voxel_indices)
            stats.coarse_passed = int(np.count_nonzero(passed))
            candidates = voxel_indices[passed]

        stats.fine_tested = len(candidates)
        stats.fine_macs = FINE_FILTER_MACS * len(candidates)
        projected = project_gaussians(
            model, camera, sh_degree=self.sh_degree, indices=candidates
        )
        fine_pass = projected.valid & _overlaps_tile(
            projected.means2d,
            projected.radii,
            projected.depths,
            tile_bounds,
            camera.near,
        )
        stats.fine_passed = int(np.count_nonzero(fine_pass))

        survivor_mask = fine_pass
        survivors = candidates[survivor_mask]
        projected_survivors = ProjectedGaussians(
            means2d=projected.means2d[survivor_mask],
            depths=projected.depths[survivor_mask],
            conics=projected.conics[survivor_mask],
            radii=projected.radii[survivor_mask],
            colors=projected.colors[survivor_mask],
            opacities=projected.opacities[survivor_mask],
            valid=projected.valid[survivor_mask],
        )
        return FilterResult(
            indices=survivors, projected=projected_survivors, stats=stats
        )

    # ------------------------------------------------------------------
    def filter_voxel_batch(
        self,
        model: GaussianModel,
        voxel_lists: Sequence[np.ndarray],
        camera: Camera,
        tile_bounds: Tuple[int, int, int, int],
    ) -> BatchedFilterResult:
        """Filter many voxels' Gaussians against one tile in one pass.

        Equivalent to calling :meth:`filter_voxel` once per entry of
        ``voxel_lists`` (the per-voxel survivor sets, projections and
        statistics are identical), but the coarse AABB rejection runs over
        the concatenation of every voxel's candidates in a single NumPy
        pass and the fine phase projects only the compacted coarse
        survivors in one call — the per-voxel Python and small-array
        overhead of the serial loop is gone.
        """
        num_voxels = len(voxel_lists)
        counts = np.array([len(voxel) for voxel in voxel_lists], dtype=np.int64)
        if num_voxels and counts.sum():
            candidates = np.concatenate(
                [np.asarray(voxel, dtype=np.int64) for voxel in voxel_lists]
            )
        else:
            candidates = np.zeros(0, dtype=np.int64)
        segments = np.repeat(np.arange(num_voxels, dtype=np.int64), counts)

        if self.use_coarse_filter and len(candidates):
            means2d, depths, coarse_radii = coarse_project_centers(
                model.positions[candidates],
                model.max_scales[candidates],
                camera,
            )
            passed = _overlaps_tile(
                means2d, coarse_radii, depths, tile_bounds, camera.near
            )
            coarse_tested = counts.copy()
            coarse_passed = np.bincount(
                segments[passed], minlength=num_voxels
            ).astype(np.int64)
            candidates = candidates[passed]
            segments = segments[passed]
        elif self.use_coarse_filter:
            coarse_tested = counts.copy()
            coarse_passed = np.zeros(num_voxels, dtype=np.int64)
        else:
            # Matches the serial path: with the coarse phase disabled both
            # coarse counters stay zero and every candidate goes fine.
            coarse_tested = np.zeros(num_voxels, dtype=np.int64)
            coarse_passed = np.zeros(num_voxels, dtype=np.int64)

        fine_tested = np.bincount(segments, minlength=num_voxels).astype(np.int64)
        projected = project_gaussians(
            model, camera, sh_degree=self.sh_degree, indices=candidates
        )
        fine_pass = projected.valid & _overlaps_tile(
            projected.means2d,
            projected.radii,
            projected.depths,
            tile_bounds,
            camera.near,
        )
        fine_passed = np.bincount(
            segments[fine_pass], minlength=num_voxels
        ).astype(np.int64)

        survivors = ProjectedGaussians(
            means2d=projected.means2d[fine_pass],
            depths=projected.depths[fine_pass],
            conics=projected.conics[fine_pass],
            radii=projected.radii[fine_pass],
            colors=projected.colors[fine_pass],
            opacities=projected.opacities[fine_pass],
            valid=projected.valid[fine_pass],
        )
        return BatchedFilterResult(
            indices=candidates[fine_pass],
            projected=survivors,
            segment_ids=segments[fine_pass],
            gaussians_in=counts,
            coarse_tested=coarse_tested,
            coarse_passed=coarse_passed,
            fine_tested=fine_tested,
            fine_passed=fine_passed,
        )

    # ------------------------------------------------------------------
    def coarse_filter_soundness_check(
        self,
        model: GaussianModel,
        voxel_indices: np.ndarray,
        camera: Camera,
        tile_bounds: Tuple[int, int, int, int],
    ) -> bool:
        """True when no Gaussian rejected by the coarse phase would pass the fine phase.

        Used by the property-based tests: the coarse radius is a conservative
        over-approximation, so coarse rejection must imply fine rejection.
        """
        voxel_indices = np.asarray(voxel_indices, dtype=np.int64)
        if len(voxel_indices) == 0:
            return True
        means2d, depths, coarse_radii = coarse_project_centers(
            model.positions[voxel_indices], model.max_scales[voxel_indices], camera
        )
        coarse_pass = _overlaps_tile(
            means2d, coarse_radii, depths, tile_bounds, camera.near
        )
        rejected = voxel_indices[~coarse_pass]
        if len(rejected) == 0:
            return True
        projected = project_gaussians(
            model, camera, sh_degree=0, indices=rejected
        )
        fine_pass = projected.valid & _overlaps_tile(
            projected.means2d,
            projected.radii,
            projected.depths,
            tile_bounds,
            camera.near,
        )
        return not bool(np.any(fine_pass))
