"""The memory-centric streaming renderer (Sec. III, Fig. 5).

For every pixel group (image tile) the renderer:

1. samples rays through the tile and builds the voxel ordering table
   (:mod:`repro.core.ray_voxel`);
2. establishes the global voxel rendering order with a topological sort of
   the per-ray dependency DAG (:mod:`repro.core.voxel_order`);
3. streams the ordered voxels one at a time: hierarchical filtering
   (:mod:`repro.core.hierarchical_filter`), per-voxel depth sort and
   alpha blending of *partial* pixel values that stay on-chip;
4. writes only the final pixel values back to DRAM.

Steps 1 and 2 are pure view geometry, so the renderer memoizes them per
camera pose in an engine :class:`~repro.engine.cache.FrameCache`; repeated
renders of the same view (benchmark sweeps, fine-tuning probes, batched
service requests) skip the traversal and topological sort entirely while
producing identical statistics.

Besides the image, the renderer produces :class:`StreamingStats` — the
complete workload description (Gaussians streamed, filter pass rates, DRAM
bytes by category, per-voxel sort lengths, depth-order violations) that the
architecture model consumes.  Per-Gaussian blend/violation weights are held
in dense NumPy arrays indexed by model Gaussian id and accumulated in place
by the blending kernels.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.compression.vq import VectorQuantizer
from repro.core.config import StreamingConfig
from repro.core.data_layout import DataLayout, LayoutTraffic, render_model
from repro.core.hierarchical_filter import FilterStats, HierarchicalFilter
from repro.core.ray_voxel import ordering_tables_for_tiles
from repro.core.voxel_grid import VoxelGrid
from repro.core.voxel_order import (
    topological_orders_for_tables,
    voxel_depth_values,
)
from repro.engine.cache import FrameCache, FramePreparation, frame_key
from repro.engine.kernels import (
    TRANSMITTANCE_EPSILON,
    blend_streaming,
    get_kernel,
)
from repro.engine.state import BlendState
from repro.engine.temporal import TemporalContext, render_frame_carry
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import RenderOutput
from repro.gaussians.tiles import TileGrid

#: Registered streaming per-voxel render paths (``StreamingConfig.streaming_kernel``).
STREAMING_KERNELS = ("reference", "vectorized")

#: How parallel tiles execute: ``auto`` picks processes (zero-copy shared
#: memory, real core scaling) and degrades to threads when processes are
#: unusable; the explicit modes force one path.
TILE_MODES = ("auto", "process", "thread")


@dataclass
class StreamingStats:
    """Per-frame workload statistics of the streaming pipeline."""

    num_tiles: int = 0
    num_tile_voxel_pairs: int = 0
    rays_sampled: int = 0
    ordering_table_entries: int = 0
    dag_edges: int = 0
    dag_nodes: int = 0
    cycles_broken: int = 0
    gaussians_streamed: int = 0
    filter: FilterStats = field(default_factory=FilterStats)
    traffic: LayoutTraffic = field(default_factory=LayoutTraffic)
    blended_fragments: int = 0
    blended_fragment_slots: int = 0
    sorted_gaussians: int = 0
    max_voxel_list_length: int = 0
    rendered_gaussian_slots: int = 0
    depth_order_errors: int = 0
    sort_list_lengths: List[int] = field(default_factory=list)
    #: (N,) per-Gaussian blended weight and out-of-order blended weight
    #: (indexed by model Gaussian id) — the data Fig. 7's "error Gaussian
    #: ratio" and the boundary-aware fine-tuning target selection are
    #: computed from.  Allocated by the renderer and accumulated in place
    #: by the blending kernels (no per-voxel copying).
    gaussian_blend_weight: Optional[np.ndarray] = None
    gaussian_violation_weight: Optional[np.ndarray] = None

    #: Fraction of a Gaussian's blended weight that must be out of order for
    #: the Gaussian to count as an "error Gaussian" (T_i = 1).
    ERROR_WEIGHT_THRESHOLD = 0.05

    def ensure_weight_arrays(self, num_gaussians: int) -> None:
        """Allocate the per-Gaussian attribution arrays."""
        if self.gaussian_blend_weight is None:
            self.gaussian_blend_weight = np.zeros(num_gaussians, dtype=np.float64)
            self.gaussian_violation_weight = np.zeros(num_gaussians, dtype=np.float64)

    def absorb(self, tile: "StreamingStats") -> None:
        """Accumulate one tile's statistics into this frame-level record.

        Used by the parallel tile path: every worker renders into a private
        per-tile :class:`StreamingStats` and the frame merges them in tile
        id order, so the result is deterministic regardless of thread
        scheduling.  All integer fields are exact sums; the per-Gaussian
        weight arrays are added tile by tile (within 1e-9 of the serial
        in-place accumulation).
        """
        self.num_tile_voxel_pairs += tile.num_tile_voxel_pairs
        self.rays_sampled += tile.rays_sampled
        self.ordering_table_entries += tile.ordering_table_entries
        self.dag_edges += tile.dag_edges
        self.dag_nodes += tile.dag_nodes
        self.cycles_broken += tile.cycles_broken
        self.gaussians_streamed += tile.gaussians_streamed
        self.filter = self.filter.merge(tile.filter)
        self.traffic = self.traffic.merge(tile.traffic)
        self.blended_fragments += tile.blended_fragments
        self.blended_fragment_slots += tile.blended_fragment_slots
        self.sorted_gaussians += tile.sorted_gaussians
        self.max_voxel_list_length = max(
            self.max_voxel_list_length, tile.max_voxel_list_length
        )
        self.rendered_gaussian_slots += tile.rendered_gaussian_slots
        self.depth_order_errors += tile.depth_order_errors
        self.sort_list_lengths.extend(tile.sort_list_lengths)
        if tile.gaussian_blend_weight is not None:
            self.ensure_weight_arrays(len(tile.gaussian_blend_weight))
            self.gaussian_blend_weight += tile.gaussian_blend_weight
            self.gaussian_violation_weight += tile.gaussian_violation_weight

    @property
    def mean_voxels_per_tile(self) -> float:
        if self.num_tiles == 0:
            return 0.0
        return self.num_tile_voxel_pairs / self.num_tiles

    @property
    def fragment_violation_ratio(self) -> float:
        """Fraction of blended contributions that arrive out of depth order."""
        if self.blended_fragment_slots == 0:
            return 0.0
        return self.depth_order_errors / self.blended_fragment_slots

    def error_gaussian_indices(
        self, threshold: float = ERROR_WEIGHT_THRESHOLD
    ) -> np.ndarray:
        """Model indices of Gaussians rendered significantly out of depth order.

        A Gaussian is flagged (``T_i = 1`` in Eq. 2) when more than
        ``threshold`` of its total blended weight was contributed to pixels
        that had already blended a deeper Gaussian.
        """
        if self.gaussian_violation_weight is None:
            return np.array([], dtype=np.int64)
        total = self.gaussian_blend_weight
        violation = self.gaussian_violation_weight
        flagged = (total > 0.0) & (violation > threshold * total)
        return np.flatnonzero(flagged).astype(np.int64)

    def top_violating_gaussians(self, coverage: float = 0.9) -> np.ndarray:
        """Model indices of the Gaussians carrying most out-of-order weight.

        Returns the smallest set of Gaussians whose summed violation weight
        covers ``coverage`` of the frame's total violation weight.  The
        boundary-aware fine-tuning targets this set: a handful of large
        cross-boundary Gaussians typically causes the bulk of the ordering
        error.
        """
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        violation = self.gaussian_violation_weight
        if violation is None or not np.any(violation > 0.0):
            return np.array([], dtype=np.int64)
        order = np.argsort(-violation, kind="stable")
        order = order[violation[order] > 0.0]
        cumulative = np.cumsum(violation[order])
        count = int(np.searchsorted(cumulative, coverage * cumulative[-1])) + 1
        return np.sort(order[:count]).astype(np.int64)

    @property
    def rendered_gaussian_count(self) -> int:
        """Number of distinct Gaussians that contributed to the frame."""
        if self.gaussian_blend_weight is None:
            return 0
        return int(np.count_nonzero(self.gaussian_blend_weight > 0.0))

    @property
    def error_gaussian_ratio(self) -> float:
        """Fraction of contributing Gaussians rendered out of depth order.

        The quantity plotted in Fig. 7 (the paper reports 2.3 % before and
        0.4 % after boundary-aware fine-tuning).
        """
        rendered = self.rendered_gaussian_count
        if rendered == 0:
            return 0.0
        return len(self.error_gaussian_indices()) / rendered

    @property
    def filtering_reduction(self) -> float:
        """Fraction of streamed Gaussians removed by hierarchical filtering."""
        return self.filter.overall_reduction


@dataclass
class StreamingRenderOutput:
    """Image plus streaming workload statistics.

    ``telemetry`` carries per-frame execution metadata (wall time, the
    streaming kernel used, tile worker count) — deliberately outside
    :class:`StreamingStats` so workload statistics stay comparable across
    render paths.
    """

    image: np.ndarray
    alpha: np.ndarray
    stats: StreamingStats
    telemetry: Dict[str, object] = field(default_factory=dict)

    @property
    def height(self) -> int:
        return int(self.image.shape[0])

    @property
    def width(self) -> int:
        return int(self.image.shape[1])


class StreamingRenderer:
    """Voxel-by-voxel memory-centric renderer.

    Parameters
    ----------
    model:
        The trained (and optionally boundary-fine-tuned) Gaussian model.
    config:
        Streaming configuration; ``StreamingConfig()`` by default.  Selects
        the blending kernel (``config.blend_kernel``) and the size of the
        frame-preparation cache (``config.frame_cache_size``).
    quantizer:
        Optional pre-fitted :class:`VectorQuantizer`.  When ``config.use_vq``
        is True and no quantizer is given, one is fitted on ``model``.
    """

    def __init__(
        self,
        model: GaussianModel,
        config: Optional[StreamingConfig] = None,
        quantizer: Optional[VectorQuantizer] = None,
    ) -> None:
        if len(model) == 0:
            raise ValueError("cannot build a streaming renderer over an empty model")
        self.config = config or StreamingConfig()
        self.source_model = model
        self.grid = VoxelGrid.build(model, self.config.voxel_size)
        if self.config.use_vq:
            self.quantizer = quantizer or VectorQuantizer(seed=0).fit(model)
        else:
            self.quantizer = quantizer
        self.layout = DataLayout(
            grid=self.grid, quantizer=self.quantizer, use_vq=self.config.use_vq
        )
        self.render_model = render_model(model, self.layout)
        self.filter = HierarchicalFilter(
            use_coarse_filter=self.config.use_coarse_filter,
            sh_degree=self.config.sh_degree,
        )
        self.background = np.asarray(self.config.background, dtype=np.float64)
        self.kernel = get_kernel(self.config.blend_kernel)
        self.frame_cache = FrameCache(capacity=self.config.frame_cache_size)
        # Carried trajectory state (content-keyed caches, pose tracking) of
        # the temporal-coherence path; idle unless ``temporal_mode="carry"``.
        self.temporal = TemporalContext()

    # ------------------------------------------------------------------
    def prepare_frame(self, camera: Camera) -> FramePreparation:
        """View geometry of one camera pose, memoized in the frame cache.

        Builds (or reuses) the per-voxel depth map, the per-tile voxel
        ordering tables and the topologically sorted global voxel orders.
        The preparation depends only on the voxel grid and the camera, never
        on the Gaussian parameters, so it is safe to share across renders.
        """
        config = self.config
        key = frame_key(
            camera,
            tile_size=config.tile_size,
            ray_stride=config.ray_stride,
            max_voxels_per_ray=config.max_voxels_per_ray,
        )
        cached = self.frame_cache.get(key)
        if cached is not None:
            return cached
        tile_grid = TileGrid(camera.width, camera.height, config.tile_size)
        depth_map = voxel_depth_values(self.grid, camera)
        tile_bounds = {
            tile_id: tile_grid.tile_pixel_bounds(tile_id)
            for tile_id in range(tile_grid.num_tiles)
        }
        tables = ordering_tables_for_tiles(
            self.grid,
            camera,
            tile_bounds,
            ray_stride=config.ray_stride,
            max_voxels_per_ray=config.max_voxels_per_ray,
        )
        orders = topological_orders_for_tables(tables, voxel_depths=depth_map)
        preparation = FramePreparation(
            depth_map=depth_map, tile_tables=tables, tile_orders=orders
        )
        self.frame_cache.put(key, preparation)
        return preparation

    # ------------------------------------------------------------------
    def render(
        self,
        camera: Camera,
        tile_workers: int = 1,
        tile_mode: str = "auto",
    ) -> StreamingRenderOutput:
        """Render one frame voxel-by-voxel.

        Parameters
        ----------
        camera:
            The rendering camera.
        tile_workers:
            Number of workers rendering independent tiles concurrently.
            ``1`` (default) renders tiles in order on the calling thread.
            With more workers each tile accumulates into a private
            statistics record and the frame merges them in tile id order,
            so images are identical and statistics deterministic
            regardless of worker scheduling.
        tile_mode:
            How parallel tiles execute (ignored with one worker).
            ``"auto"`` (default) uses a process pool over shared memory —
            the path that actually scales with cores — and silently
            degrades to threads when processes are unusable (daemonic
            caller, no shared memory, pool failure); the telemetry records
            the mode taken and the degradation reason.  ``"process"`` and
            ``"thread"`` force the respective path (a forced process path
            still degrades rather than failing the render).
        """
        if tile_workers < 1:
            raise ValueError(f"tile_workers must be >= 1, got {tile_workers}")
        if tile_mode not in TILE_MODES:
            raise ValueError(
                f"tile_mode must be one of {TILE_MODES}, got {tile_mode!r}"
            )
        config = self.config
        started = time.perf_counter()
        tile_grid = TileGrid(camera.width, camera.height, config.tile_size)
        image = np.zeros((camera.height, camera.width, 3), dtype=np.float64)
        alpha_img = np.zeros((camera.height, camera.width), dtype=np.float64)
        stats = StreamingStats(num_tiles=tile_grid.num_tiles)
        stats.ensure_weight_arrays(len(self.source_model))
        # The fast path is built on the broadcast blend machinery; a
        # reference *blend* kernel selection is honoured by falling back to
        # the per-voxel loop (which blends through ``self.kernel``), so
        # ``blend_kernel="reference"`` keeps validating the blend
        # recurrence end to end instead of being silently ignored.
        vectorized_path = (
            config.streaming_kernel == "vectorized"
            and config.blend_kernel == "vectorized"
        )
        workers = min(tile_workers, tile_grid.num_tiles)
        # The temporal carry path is built on the vectorized serial-tile
        # machinery; other configurations fall back to the cold path and
        # record why in the telemetry.
        carry_path = (
            config.temporal_mode == "carry" and vectorized_path and workers == 1
        )
        if carry_path:
            parallel_telemetry = render_frame_carry(
                self, camera, image, alpha_img, stats
            )
            stats.traffic = stats.traffic.merge(
                DataLayout.pixel_write_traffic(camera.num_pixels)
            )
            return StreamingRenderOutput(
                image=np.clip(image, 0.0, 1.0),
                alpha=alpha_img,
                stats=stats,
                telemetry={
                    "streaming_kernel": "vectorized",
                    "tile_workers": workers,
                    "tiles": tile_grid.num_tiles,
                    **parallel_telemetry,
                    "seconds": time.perf_counter() - started,
                },
            )

        preparation = self.prepare_frame(camera)
        render_tile = (
            self._render_tile_vectorized
            if vectorized_path
            else self._render_tile_reference
        )

        parallel_telemetry: Dict[str, object] = {"tile_mode": "serial"}
        if workers > 1:
            mode = "process" if tile_mode == "auto" else tile_mode
            if mode == "process":
                from repro.engine.tile_parallel import (
                    TileParallelUnavailable,
                    render_tiles_process,
                )

                try:
                    parallel_telemetry = render_tiles_process(
                        self, camera, tile_grid, image, alpha_img, stats,
                        render_tile.__name__, workers,
                    )
                except TileParallelUnavailable as error:
                    # The process attempt mutates nothing until every
                    # worker has returned, so the thread path starts from
                    # pristine buffers and statistics.
                    parallel_telemetry = {
                        "tile_mode": "thread",
                        "tile_mode_degraded": str(error),
                    }
                    self._render_tiles_parallel(
                        camera, tile_grid, preparation, image, alpha_img, stats,
                        render_tile, workers,
                    )
            else:
                parallel_telemetry = {"tile_mode": "thread"}
                self._render_tiles_parallel(
                    camera, tile_grid, preparation, image, alpha_img, stats,
                    render_tile, workers,
                )
        else:
            for tile_id in range(tile_grid.num_tiles):
                bounds = tile_grid.tile_pixel_bounds(tile_id)
                render_tile(
                    camera, tile_id, bounds, preparation, image, alpha_img, stats
                )

        if config.temporal_mode == "carry":
            # A requested carry that could not run (reference kernels,
            # parallel tiles) renders cold; the telemetry records why.
            parallel_telemetry = {
                **parallel_telemetry,
                "temporal_mode": "off",
                "temporal_fallback": (
                    "reference-kernel" if not vectorized_path else "tile-workers"
                ),
            }
        # Final pixel writes are the only off-chip writes of the pipeline.
        stats.traffic = stats.traffic.merge(
            DataLayout.pixel_write_traffic(camera.num_pixels)
        )
        return StreamingRenderOutput(
            image=np.clip(image, 0.0, 1.0),
            alpha=alpha_img,
            stats=stats,
            telemetry={
                # The path actually taken (a reference blend-kernel
                # selection routes through the reference loop).
                "streaming_kernel": "vectorized" if vectorized_path else "reference",
                "tile_workers": workers,
                "tiles": tile_grid.num_tiles,
                **parallel_telemetry,
                "seconds": time.perf_counter() - started,
            },
        )

    def _render_tiles_parallel(
        self,
        camera: Camera,
        tile_grid: TileGrid,
        preparation: FramePreparation,
        image: np.ndarray,
        alpha_img: np.ndarray,
        stats: StreamingStats,
        render_tile,
        workers: int,
    ) -> None:
        """Fan independent tiles over a thread pool, merging in tile order.

        Tiles write disjoint image regions directly; statistics go into
        private per-tile records merged deterministically afterwards.  The
        shared renderer state read by workers (grid, layout, filter,
        prepared frame) is immutable during a render.
        """
        num_gaussians = len(self.source_model)

        def run(tile_id: int) -> StreamingStats:
            local = StreamingStats()
            local.ensure_weight_arrays(num_gaussians)
            render_tile(
                camera,
                tile_id,
                tile_grid.tile_pixel_bounds(tile_id),
                preparation,
                image,
                alpha_img,
                local,
            )
            return local

        with ThreadPoolExecutor(max_workers=workers) as pool:
            # ``map`` yields in tile id order; absorbing as results arrive
            # keeps the merge deterministic while holding only the
            # in-flight tiles' private weight arrays alive.
            for local in pool.map(run, range(tile_grid.num_tiles)):
                stats.absorb(local)

    # ------------------------------------------------------------------
    def _tile_header_stats(
        self,
        tile_id: int,
        bounds,
        preparation: FramePreparation,
        image: np.ndarray,
        stats: StreamingStats,
    ):
        """Record per-tile table/DAG accounting; returns the voxel order.

        Returns ``None`` (after painting the background) when the tile has
        no voxels to stream — shared prologue of both render paths.
        """
        x0, y0, x1, y1 = bounds
        table = preparation.tile_tables[tile_id]
        stats.rays_sampled += table.rays_sampled
        stats.ordering_table_entries += table.total_entries
        stats.traffic = stats.traffic.merge(
            DataLayout.ordering_metadata_traffic(table.total_entries)
        )
        order_result = preparation.tile_orders[tile_id]
        stats.dag_edges += order_result.num_edges
        stats.dag_nodes += order_result.num_nodes
        stats.cycles_broken += order_result.cycles_broken
        if not order_result.order:
            image[y0:y1, x0:x1] = self.background
            return None
        return order_result.order

    def _render_tile_reference(
        self,
        camera: Camera,
        tile_id: int,
        bounds,
        preparation: FramePreparation,
        image: np.ndarray,
        alpha_img: np.ndarray,
        stats: StreamingStats,
    ) -> None:
        """Render one pixel group voxel by voxel (the reference loop)."""
        x0, y0, x1, y1 = bounds
        order = self._tile_header_stats(tile_id, bounds, preparation, image, stats)
        if order is None:
            return

        xs, ys = np.meshgrid(np.arange(x0, x1), np.arange(y0, y1))
        xs = xs.reshape(-1)
        ys = ys.reshape(-1)
        state = BlendState.fresh(len(xs))
        # Kernels accumulate per-Gaussian attribution (keyed by model id)
        # directly into the frame-level statistics arrays.
        state.bind_weight_arrays(
            stats.gaussian_blend_weight, stats.gaussian_violation_weight
        )

        for voxel_id in order:
            voxel_indices = self.grid.gaussians_in_voxel(voxel_id)
            stats.num_tile_voxel_pairs += 1
            stats.gaussians_streamed += len(voxel_indices)

            result = self.filter.filter_voxel(
                self.render_model, voxel_indices, camera, bounds
            )
            stats.filter = stats.filter.merge(result.stats)
            coarse_passed = (
                result.stats.coarse_passed
                if self.config.use_coarse_filter
                else len(voxel_indices)
            )
            stats.traffic = stats.traffic.merge(
                self.layout.voxel_stream_traffic(voxel_id, coarse_passed)
            )
            if len(result.indices) == 0:
                continue

            # Per-voxel depth sort (the simplified bitonic sorting unit).
            depth_order = np.argsort(result.projected.depths, kind="stable")
            stats.sorted_gaussians += len(depth_order)
            stats.sort_list_lengths.append(len(depth_order))
            stats.max_voxel_list_length = max(
                stats.max_voxel_list_length, len(depth_order)
            )
            stats.rendered_gaussian_slots += len(depth_order)

            fragments_before = state.blended_fragments
            state = self.kernel(
                xs,
                ys,
                result.projected,
                depth_order,
                state,
                model_indices=np.asarray(result.indices, dtype=np.int64),
                track_depth_order=True,
            )
            stats.blended_fragments += state.blended_fragments - fragments_before
            if not np.any(state.transmittance > TRANSMITTANCE_EPSILON):
                break

        stats.depth_order_errors += state.depth_violations
        stats.blended_fragment_slots += state.blended_fragments
        final = state.color + state.transmittance[:, None] * self.background[None, :]
        h, w = y1 - y0, x1 - x0
        image[y0:y1, x0:x1] = final.reshape(h, w, 3)
        alpha_img[y0:y1, x0:x1] = (1.0 - state.transmittance).reshape(h, w)

    def _render_tile_vectorized(
        self,
        camera: Camera,
        tile_id: int,
        bounds,
        preparation: FramePreparation,
        image: np.ndarray,
        alpha_img: np.ndarray,
        stats: StreamingStats,
    ) -> None:
        """Render one pixel group through the batched streaming fast path.

        The hierarchical filter runs over *all* voxels of the tile in one
        pass, the survivors are depth-sorted segment-wise (one stable
        lexsort replaces the per-voxel argsorts) and the whole voxel
        stream is blended through a single call of the broadcast kernel.
        The reference loop's voxel-granular early termination is
        reproduced exactly in the statistics from the kernel's per-pixel
        saturation positions: voxels past the last pixel's saturation
        contribute nothing to the blend (their contribution gate is
        closed), so only the accounting has to be truncated.
        """
        x0, y0, x1, y1 = bounds
        order = self._tile_header_stats(tile_id, bounds, preparation, image, stats)
        if order is None:
            return
        order = np.asarray(order, dtype=np.int64)
        batch = self.filter.filter_voxel_batch(
            self.render_model,
            [self.grid.gaussians_in_voxel(voxel_id) for voxel_id in order],
            camera,
            bounds,
        )

        xs, ys = np.meshgrid(np.arange(x0, x1), np.arange(y0, y1))
        xs = xs.reshape(-1)
        ys = ys.reshape(-1)
        state = BlendState.fresh(len(xs))
        state.bind_weight_arrays(
            stats.gaussian_blend_weight, stats.gaussian_violation_weight
        )

        # Segment-wise stable depth sort: identical to the per-voxel
        # ``argsort(..., kind="stable")`` of the reference loop.
        stream_order = np.lexsort((batch.projected.depths, batch.segment_ids))
        state, saturation = blend_streaming(
            xs,
            ys,
            batch.projected,
            stream_order,
            state,
            model_indices=batch.indices,
            track_depth_order=True,
        )

        # The voxel prefix the reference loop would have processed: it
        # breaks after the first voxel that saturates every pixel.
        segment_ends = np.cumsum(batch.survivor_counts)
        total = len(stream_order)
        if total and len(saturation) and int(saturation.max()) < total:
            last_saturating = int(saturation.max())
            processed = int(np.searchsorted(segment_ends, last_saturating, side="right")) + 1
        else:
            processed = len(order)

        stats.num_tile_voxel_pairs += processed
        stats.gaussians_streamed += int(batch.gaussians_in[:processed].sum())
        stats.filter = stats.filter.merge(batch.prefix_stats(processed))
        coarse_passed = (
            batch.coarse_passed
            if self.config.use_coarse_filter
            else batch.gaussians_in
        )
        stats.traffic = stats.traffic.merge(
            self.layout.voxel_stream_traffic_batch(
                order[:processed], coarse_passed[:processed]
            )
        )
        survivors = batch.survivor_counts[:processed]
        survivors = survivors[survivors > 0]
        stats.sorted_gaussians += int(survivors.sum())
        stats.sort_list_lengths.extend(int(n) for n in survivors)
        if len(survivors):
            stats.max_voxel_list_length = max(
                stats.max_voxel_list_length, int(survivors.max())
            )
        stats.rendered_gaussian_slots += int(survivors.sum())
        stats.blended_fragments += state.blended_fragments
        stats.depth_order_errors += state.depth_violations
        stats.blended_fragment_slots += state.blended_fragments
        final = state.color + state.transmittance[:, None] * self.background[None, :]
        h, w = y1 - y0, x1 - x0
        image[y0:y1, x0:x1] = final.reshape(h, w, 3)
        alpha_img[y0:y1, x0:x1] = (1.0 - state.transmittance).reshape(h, w)


def tile_centric_reference(
    model: GaussianModel, camera: Camera, config: Optional[StreamingConfig] = None
) -> RenderOutput:
    """Convenience wrapper: the tile-centric reference render of ``model``.

    Uses the same tile size, SH degree, background and blending kernel as
    the streaming configuration so streaming-vs-reference comparisons are
    apples to apples.
    """
    from repro.engine.service import RenderService

    return RenderService.tile_rasterizer(config).render(model, camera)
