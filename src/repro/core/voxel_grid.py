"""Scene partition into voxels (Sec. III-A) and the cross-boundary test.

The voxel grid is built offline: every Gaussian is assigned to the voxel
containing its centre, Gaussians of a voxel are stored contiguously (the
DRAM layout of Fig. 8 relies on this), and empty voxels are removed through
the renaming table that the VSU also uses in hardware (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gaussians.model import GaussianModel

#: Number of standard deviations considered part of a Gaussian's extent when
#: deciding whether it crosses a voxel boundary (matches the rasterizer's
#: 3-sigma footprint).
CROSS_BOUNDARY_SIGMA = 3.0


def cross_boundary_mask(
    model: GaussianModel,
    voxel_size: float,
    origin: Optional[np.ndarray] = None,
    sigma: float = CROSS_BOUNDARY_SIGMA,
) -> np.ndarray:
    """Boolean mask of Gaussians whose extent crosses a voxel boundary.

    A Gaussian crosses a boundary when the axis-aligned box of half-width
    ``sigma * max_scale`` around its centre does not fit inside the voxel
    containing the centre.  These are theAussians the boundary-aware
    fine-tuning (Sec. III-B) penalises, because they are the only ones that
    can be rendered out of depth order by voxel-by-voxel processing.
    """
    if voxel_size <= 0:
        raise ValueError("voxel_size must be positive")
    if len(model) == 0:
        return np.zeros(0, dtype=bool)
    origin = (
        np.zeros(3) if origin is None else np.asarray(origin, dtype=np.float64)
    )
    positions = model.positions.astype(np.float64) - origin[None, :]
    half_extent = sigma * model.max_scales.astype(np.float64)
    local = np.mod(positions, voxel_size)
    distance_to_lower = local
    distance_to_upper = voxel_size - local
    min_distance = np.minimum(distance_to_lower, distance_to_upper).min(axis=1)
    return half_extent > min_distance


@dataclass
class VoxelGrid:
    """A dense-index voxel partition of a Gaussian model.

    Attributes
    ----------
    voxel_size:
        Cubic voxel edge length.
    origin:
        World-space position of the grid's minimum corner.
    dims:
        ``(3,)`` number of voxels along each axis.
    voxel_ids:
        ``(N,)`` renamed (dense) voxel id per Gaussian.
    gaussian_order:
        ``(N,)`` permutation sorting Gaussians by voxel id — the contiguous
        DRAM storage order of Fig. 8.
    voxel_starts / voxel_counts:
        CSR-style index into ``gaussian_order`` per renamed voxel.
    raw_to_renamed:
        Mapping from raw (spatial) voxel id to renamed id; empty voxels are
        absent — this is the VSU renaming table.
    """

    voxel_size: float
    origin: np.ndarray
    dims: np.ndarray
    voxel_ids: np.ndarray
    gaussian_order: np.ndarray
    voxel_starts: np.ndarray
    voxel_counts: np.ndarray
    raw_to_renamed: Dict[int, int]
    renamed_to_raw: np.ndarray

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        model: GaussianModel,
        voxel_size: float,
        padding: float = 1e-4,
    ) -> "VoxelGrid":
        """Partition ``model`` into cubic voxels of edge ``voxel_size``."""
        if voxel_size <= 0:
            raise ValueError("voxel_size must be positive")
        if len(model) == 0:
            raise ValueError("cannot build a voxel grid over an empty model")
        lo, hi = model.bounding_box()
        origin = lo.astype(np.float64) - padding
        extent = hi.astype(np.float64) - origin + padding
        dims = np.maximum(np.ceil(extent / voxel_size).astype(np.int64), 1)

        coords = np.floor(
            (model.positions.astype(np.float64) - origin[None, :]) / voxel_size
        ).astype(np.int64)
        coords = np.clip(coords, 0, dims[None, :] - 1)
        raw_ids = (
            coords[:, 0] + dims[0] * (coords[:, 1] + dims[1] * coords[:, 2])
        )

        unique_raw, renamed = np.unique(raw_ids, return_inverse=True)
        raw_to_renamed = {int(raw): int(i) for i, raw in enumerate(unique_raw)}

        order = np.argsort(renamed, kind="stable")
        sorted_ids = renamed[order]
        counts = np.bincount(sorted_ids, minlength=len(unique_raw))
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])

        return cls(
            voxel_size=float(voxel_size),
            origin=origin,
            dims=dims,
            voxel_ids=renamed.astype(np.int64),
            gaussian_order=order.astype(np.int64),
            voxel_starts=starts.astype(np.int64),
            voxel_counts=counts.astype(np.int64),
            raw_to_renamed=raw_to_renamed,
            renamed_to_raw=unique_raw.astype(np.int64),
        )

    # ------------------------------------------------------------------
    @property
    def num_voxels(self) -> int:
        """Number of non-empty (renamed) voxels."""
        return len(self.voxel_counts)

    @property
    def num_raw_voxels(self) -> int:
        """Number of voxels in the full (possibly empty) spatial grid."""
        return int(np.prod(self.dims))

    @property
    def occupancy(self) -> float:
        """Fraction of spatial voxels that contain at least one Gaussian."""
        return self.num_voxels / max(self.num_raw_voxels, 1)

    def gaussians_in_voxel(self, renamed_id: int) -> np.ndarray:
        """Indices (into the model) of the Gaussians stored in a voxel."""
        if renamed_id < 0 or renamed_id >= self.num_voxels:
            raise IndexError(f"voxel id {renamed_id} out of range")
        start = self.voxel_starts[renamed_id]
        count = self.voxel_counts[renamed_id]
        return self.gaussian_order[start : start + count]

    def voxel_coords(self, renamed_id: int) -> np.ndarray:
        """Integer grid coordinates of a renamed voxel."""
        raw = int(self.renamed_to_raw[renamed_id])
        x = raw % self.dims[0]
        y = (raw // self.dims[0]) % self.dims[1]
        z = raw // (self.dims[0] * self.dims[1])
        return np.array([x, y, z], dtype=np.int64)

    def voxel_center(self, renamed_id: int) -> np.ndarray:
        """World-space centre of a renamed voxel."""
        return self.origin + (self.voxel_coords(renamed_id) + 0.5) * self.voxel_size

    def voxel_bounds(self, renamed_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """World-space AABB ``(lo, hi)`` of a renamed voxel."""
        lo = self.origin + self.voxel_coords(renamed_id) * self.voxel_size
        return lo, lo + self.voxel_size

    def raw_id_of_point(self, point: np.ndarray) -> int:
        """Raw (spatial) voxel id containing a world-space point, or -1 if outside."""
        point = np.asarray(point, dtype=np.float64)
        coords = np.floor((point - self.origin) / self.voxel_size).astype(np.int64)
        if np.any(coords < 0) or np.any(coords >= self.dims):
            return -1
        return int(
            coords[0] + self.dims[0] * (coords[1] + self.dims[1] * coords[2])
        )

    def rename(self, raw_id: int) -> int:
        """Renamed id of a raw voxel id, or -1 if the voxel is empty/out of range."""
        return self.raw_to_renamed.get(int(raw_id), -1)

    # ------------------------------------------------------------------
    def voxel_sizes_histogram(self) -> Dict[int, int]:
        """Histogram of Gaussians-per-voxel (used by workload characterisation)."""
        histogram: Dict[int, int] = {}
        for count in self.voxel_counts:
            histogram[int(count)] = histogram.get(int(count), 0) + 1
        return histogram

    def mean_gaussians_per_voxel(self) -> float:
        """Mean number of Gaussians per non-empty voxel."""
        if self.num_voxels == 0:
            return 0.0
        return float(self.voxel_counts.mean())

    def cross_boundary_gaussians(
        self, model: GaussianModel, sigma: float = CROSS_BOUNDARY_SIGMA
    ) -> np.ndarray:
        """Indices of Gaussians whose extent crosses a voxel boundary."""
        mask = cross_boundary_mask(
            model, self.voxel_size, origin=self.origin, sigma=sigma
        )
        return np.flatnonzero(mask)


def contiguous_storage_order(grid: VoxelGrid) -> List[np.ndarray]:
    """Per-voxel Gaussian index lists in DRAM storage order (Fig. 8)."""
    return [grid.gaussians_in_voxel(v) for v in range(grid.num_voxels)]
