"""Batched render front-end shared by the analysis harness and benchmarks.

:class:`RenderService` accepts many (model, camera, config) requests,
shares prepared state across them — streaming renderers (voxel grid, DRAM
layout, quantizer) are memoised per (model, config) and each renderer's
frame-preparation cache is reused across requests for the same view — and
returns images plus the workload statistics the architecture models consume.

The service is the single entry point the experiment harness renders
through; a process-wide default instance is available via
:func:`get_default_service` so independent experiments share renderers
within one run.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer, StreamingRenderOutput
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import RenderOutput, TileRasterizer

#: Renderers kept alive by the service (each owns a voxel grid + layout).
DEFAULT_RENDERER_CACHE_SIZE = 8


@dataclass
class RenderRequest:
    """One render to perform.

    ``mode`` selects the pipeline: ``"streaming"`` (memory-centric,
    Fig. 1b) or ``"tile"`` (tile-centric reference, Fig. 1a).
    """

    model: GaussianModel
    camera: Camera
    config: Optional[StreamingConfig] = None
    mode: str = "streaming"
    tag: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("streaming", "tile"):
            raise ValueError(f"unknown render mode {self.mode!r}")


@dataclass
class RenderResponse:
    """Image, alpha and workload statistics of one completed request."""

    request: RenderRequest
    output: Union[RenderOutput, StreamingRenderOutput]

    @property
    def image(self) -> np.ndarray:
        return self.output.image

    @property
    def alpha(self) -> np.ndarray:
        return self.output.alpha

    @property
    def stats(self):
        return self.output.stats

    @property
    def tag(self) -> str:
        return self.request.tag


class RenderService:
    """Shared-state batched renderer front-end.

    Parameters
    ----------
    max_renderers:
        Number of streaming renderers kept alive; building one is the
        expensive part (voxel grid, layout, optional VQ fit), so requests
        that revisit a (model, config) pair reuse it.
    """

    def __init__(self, max_renderers: int = DEFAULT_RENDERER_CACHE_SIZE) -> None:
        if max_renderers <= 0:
            raise ValueError("max_renderers must be positive")
        self.max_renderers = max_renderers
        self._renderers: "OrderedDict[Tuple[str, StreamingConfig], StreamingRenderer]" = (
            OrderedDict()
        )
        # The service daemon shares one RenderService across worker-actor
        # threads; the renderer-cache LRU bookkeeping (get + move_to_end +
        # evict) must be atomic under that concurrency.
        self._lock = threading.RLock()
        self.requests_served = 0
        self.renderer_hits = 0
        self.renderer_misses = 0
        self.peak_renderers = 0
        self.parallel_tile_frames = 0
        #: Telemetry of the most recent streaming render (kernel, tile
        #: worker count, tiles, wall seconds) — per-frame observability for
        #: the runner's ``--telemetry-json`` dump.
        self.last_frame: Optional[dict] = None

    # ------------------------------------------------------------------
    def streaming_renderer(
        self,
        model: GaussianModel,
        config: Optional[StreamingConfig] = None,
        fingerprint: Optional[str] = None,
    ) -> StreamingRenderer:
        """The shared streaming renderer of a (model, config) pair.

        Keyed by the model's :meth:`~repro.gaussians.model.GaussianModel.content_fingerprint`,
        so models with equal parameters share one renderer while in-place
        parameter edits (e.g. a fine-tuning loop mutating the same object)
        miss the cache and get a renderer built from the current values.
        ``fingerprint`` lets batch callers that already hashed the model
        skip recomputing it (hashing covers every parameter array).
        """
        config = config or StreamingConfig()
        key = (fingerprint if fingerprint is not None else model.content_fingerprint(), config)
        with self._lock:
            renderer = self._renderers.get(key)
            if renderer is not None:
                self._renderers.move_to_end(key)
                self.renderer_hits += 1
                return renderer
            self.renderer_misses += 1
        # Building a renderer is the expensive part (voxel grid, layout,
        # optional VQ fit); do it unlocked so concurrent misses on other
        # keys are not serialized.  A racing duplicate build of the same
        # key is rare and harmless: last writer wins.
        renderer = StreamingRenderer(model, config)
        with self._lock:
            self._renderers[key] = renderer
            self.peak_renderers = max(self.peak_renderers, len(self._renderers))
            while len(self._renderers) > self.max_renderers:
                self._renderers.popitem(last=False)
        return renderer

    @staticmethod
    def tile_rasterizer(config: Optional[StreamingConfig] = None) -> TileRasterizer:
        """A tile-centric rasterizer matching the streaming configuration."""
        config = config or StreamingConfig()
        return TileRasterizer(
            tile_size=config.tile_size,
            background=config.background,
            sh_degree=config.sh_degree,
            kernel=config.blend_kernel,
        )

    # ------------------------------------------------------------------
    def render(
        self,
        request: RenderRequest,
        _fingerprint: Optional[str] = None,
        tile_workers: int = 1,
        tile_mode: str = "auto",
    ) -> RenderResponse:
        """Serve one request.

        ``tile_workers`` fans the streaming render's independent tiles over
        parallel workers (:meth:`StreamingRenderer.render`); ``tile_mode``
        picks the path (``"auto"`` = shared-memory processes, degrading to
        threads).  Images are identical and statistics deterministic
        regardless of scheduling, with the per-frame telemetry (including
        the mode actually taken) recorded in :attr:`last_frame`.
        ``_fingerprint`` is internal: :meth:`render_batch` passes the model
        hash it already computed for grouping, so a batch hashes each model
        once instead of once per request.
        """
        config = request.config or StreamingConfig()
        if request.mode == "tile":
            output: Union[RenderOutput, StreamingRenderOutput] = self.tile_rasterizer(
                config
            ).render(request.model, request.camera)
        else:
            output = self.streaming_renderer(
                request.model, config, fingerprint=_fingerprint
            ).render(request.camera, tile_workers=tile_workers, tile_mode=tile_mode)
            self.last_frame = dict(output.telemetry)
            if output.telemetry.get("tile_workers", 1) > 1:
                self.parallel_tile_frames += 1
        self.requests_served += 1
        return RenderResponse(request=request, output=output)

    def render_batch(
        self,
        requests: Iterable[RenderRequest],
        tile_workers: int = 1,
        tile_mode: str = "auto",
    ) -> List[RenderResponse]:
        """Serve many requests, sharing renderers and prepared frames.

        Requests are grouped by (model, config) so each streaming renderer
        is built once and its frame-preparation cache sees every camera of
        the group back to back.  ``tile_workers`` is forwarded to every
        streaming render (see :meth:`render`).
        """
        indexed = list(enumerate(requests))
        responses: List[Optional[RenderResponse]] = [None] * len(indexed)
        streaming = [(i, r) for i, r in indexed if r.mode == "streaming"]
        # Group streaming requests by shared renderer state; the key matches
        # the renderer cache's (content fingerprint, config), so equal-content
        # model objects land in one group.  Fingerprints hash every parameter
        # array, so compute them once per model object, not per request.
        groups: "OrderedDict[Tuple[str, StreamingConfig], List[Tuple[int, RenderRequest]]]" = (
            OrderedDict()
        )
        fingerprints: dict = {}
        for i, request in streaming:
            fingerprint = fingerprints.get(id(request.model))
            if fingerprint is None:
                fingerprint = request.model.content_fingerprint()
                fingerprints[id(request.model)] = fingerprint
            groups.setdefault(
                (fingerprint, request.config or StreamingConfig()), []
            ).append((i, request))
        for (fingerprint, _), group in groups.items():
            for i, request in group:
                responses[i] = self.render(
                    request,
                    _fingerprint=fingerprint,
                    tile_workers=tile_workers,
                    tile_mode=tile_mode,
                )
        for i, request in indexed:
            if request.mode != "streaming":
                responses[i] = self.render(request)
        return list(responses)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def render_pair(
        self,
        model: GaussianModel,
        camera: Camera,
        config: Optional[StreamingConfig] = None,
    ) -> Tuple[RenderOutput, StreamingRenderOutput]:
        """Tile-centric reference and streaming render of the same scene."""
        tile, streaming = self.render_batch(
            [
                RenderRequest(model=model, camera=camera, config=config, mode="tile"),
                RenderRequest(
                    model=model, camera=camera, config=config, mode="streaming"
                ),
            ]
        )
        return tile.output, streaming.output  # type: ignore[return-value]

    def stats(self) -> dict:
        """Counter snapshot (requests served, renderer cache behaviour)."""
        with self._lock:
            return {
                "requests_served": self.requests_served,
                "renderer_hits": self.renderer_hits,
                "renderer_misses": self.renderer_misses,
                "renderers_alive": len(self._renderers),
                "peak_renderers": self.peak_renderers,
                "parallel_tile_frames": self.parallel_tile_frames,
                "last_frame": dict(self.last_frame) if self.last_frame else None,
            }

    def clear(self) -> None:
        """Drop every cached renderer (counters are kept)."""
        with self._lock:
            self._renderers.clear()

    def close(self) -> None:
        """Release held state; alias of :meth:`clear` for lifecycle symmetry.

        :meth:`Session.close` calls this so shutting a session down frees
        renderer memory (voxel grids, layouts, codebooks) along with the
        worker pool.
        """
        self.clear()


_DEFAULT_SERVICE: Optional[RenderService] = None


def get_default_service() -> RenderService:
    """The process-wide shared :class:`RenderService`."""
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        _DEFAULT_SERVICE = RenderService()
    return _DEFAULT_SERVICE


def reset_default_service() -> None:
    """Replace the process-wide service (used by tests)."""
    global _DEFAULT_SERVICE
    _DEFAULT_SERVICE = None
