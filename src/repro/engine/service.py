"""Batched render front-end shared by the analysis harness and benchmarks.

:class:`RenderService` accepts many (model, camera, config) requests,
shares prepared state across them — streaming renderers (voxel grid, DRAM
layout, quantizer) are memoised per (model, config) and each renderer's
frame-preparation cache is reused across requests for the same view — and
returns images plus the workload statistics the architecture models consume.

The service is the single entry point the experiment harness renders
through; a process-wide default instance is available via
:func:`get_default_service` so independent experiments share renderers
within one run.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import TEMPORAL_MODES, StreamingConfig
from repro.core.pipeline import (
    STREAMING_KERNELS,
    TILE_MODES,
    StreamingRenderer,
    StreamingRenderOutput,
)
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import RenderOutput, TileRasterizer

#: Renderers kept alive by the service (each owns a voxel grid + layout).
DEFAULT_RENDERER_CACHE_SIZE = 8


@dataclass
class RenderRequest:
    """One render to perform.

    ``mode`` selects the pipeline: ``"streaming"`` (memory-centric,
    Fig. 1b) or ``"tile"`` (tile-centric reference, Fig. 1a).
    """

    model: GaussianModel
    camera: Camera
    config: Optional[StreamingConfig] = None
    mode: str = "streaming"
    tag: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("streaming", "tile"):
            raise ValueError(f"unknown render mode {self.mode!r}")


@dataclass
class RenderResponse:
    """Image, alpha and workload statistics of one completed request."""

    request: RenderRequest
    output: Union[RenderOutput, StreamingRenderOutput]

    @property
    def image(self) -> np.ndarray:
        return self.output.image

    @property
    def alpha(self) -> np.ndarray:
        return self.output.alpha

    @property
    def stats(self):
        return self.output.stats

    @property
    def tag(self) -> str:
        return self.request.tag


@dataclass(frozen=True)
class RenderOptions:
    """How a render request executes — scheduling and kernel knobs.

    The first-class replacement for the loose ``tile_workers=`` /
    ``tile_mode=`` keywords :meth:`RenderService.render` used to take:
    everything about *how* a frame renders (as opposed to *what* renders,
    which stays on :class:`RenderRequest`) lives here, so new execution
    knobs never widen the service signatures again.

    Attributes
    ----------
    tile_workers:
        Workers rendering independent tiles concurrently (``1`` = serial).
    tile_mode:
        Parallel-tile path: ``"auto"`` (processes, degrading to threads),
        ``"process"`` or ``"thread"``; ignored with one worker.
    streaming_kernel:
        Override of :attr:`StreamingConfig.streaming_kernel` for this call
        (``None`` keeps the config's kernel).
    temporal_mode:
        Override of :attr:`StreamingConfig.temporal_mode` for this call
        (``None`` keeps the config's mode) — ``"carry"`` turns the
        temporal-coherence fast path on for trajectory renders.
    resolution_scale:
        Scale factor applied to the request camera's resolution (and
        focal lengths); ``1.0`` renders at the camera's native size.
    """

    tile_workers: int = 1
    tile_mode: str = "auto"
    streaming_kernel: Optional[str] = None
    temporal_mode: Optional[str] = None
    resolution_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.tile_workers < 1:
            raise ValueError(f"tile_workers must be >= 1, got {self.tile_workers}")
        if self.tile_mode not in TILE_MODES:
            raise ValueError(
                f"tile_mode must be one of {TILE_MODES}, got {self.tile_mode!r}"
            )
        if (
            self.streaming_kernel is not None
            and self.streaming_kernel not in STREAMING_KERNELS
        ):
            raise ValueError(
                f"unknown streaming_kernel {self.streaming_kernel!r}; "
                f"available: {sorted(STREAMING_KERNELS)}"
            )
        if self.temporal_mode is not None and self.temporal_mode not in TEMPORAL_MODES:
            raise ValueError(
                f"unknown temporal_mode {self.temporal_mode!r}; "
                f"available: {sorted(TEMPORAL_MODES)}"
            )
        if not self.resolution_scale > 0:
            raise ValueError(
                f"resolution_scale must be positive, got {self.resolution_scale!r}"
            )

    # ------------------------------------------------------------------
    def resolved_config(self, config: StreamingConfig) -> StreamingConfig:
        """``config`` with this call's kernel/temporal overrides applied."""
        overrides: Dict[str, Any] = {}
        if self.streaming_kernel is not None:
            overrides["streaming_kernel"] = self.streaming_kernel
        if self.temporal_mode is not None:
            overrides["temporal_mode"] = self.temporal_mode
        return config.with_options(**overrides) if overrides else config

    def resolved_camera(self, camera: Camera) -> Camera:
        """``camera`` scaled to this call's resolution."""
        if self.resolution_scale == 1.0:
            return camera
        return camera.scaled(self.resolution_scale)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (wire/JSON-expressible; inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RenderOptions":
        """Rebuild options from :meth:`to_dict` output, rejecting unknown keys."""
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RenderOptions fields {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**dict(data))


#: One-shot flag of the deprecated-keyword shim: the first caller still
#: passing ``tile_workers=``/``tile_mode=`` gets a DeprecationWarning, the
#: rest of the process stays quiet.
_DEPRECATED_KWARGS_WARNED = False


def _resolve_options(
    options: Optional[RenderOptions],
    tile_workers: Optional[int],
    tile_mode: Optional[str],
) -> RenderOptions:
    """Fold the deprecated loose keywords into a :class:`RenderOptions`.

    Warns (once per process) when the old keywords are used; mixing them
    with ``options`` is an error because the intent is ambiguous.
    """
    global _DEPRECATED_KWARGS_WARNED
    if tile_workers is None and tile_mode is None:
        return options if options is not None else RenderOptions()
    if options is not None:
        raise TypeError(
            "pass options=RenderOptions(...) or the deprecated "
            "tile_workers=/tile_mode= keywords, not both"
        )
    if not _DEPRECATED_KWARGS_WARNED:
        _DEPRECATED_KWARGS_WARNED = True
        warnings.warn(
            "the tile_workers=/tile_mode= keywords of RenderService.render and "
            "render_batch are deprecated; pass "
            "options=RenderOptions(tile_workers=..., tile_mode=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return RenderOptions(
        tile_workers=1 if tile_workers is None else tile_workers,
        tile_mode="auto" if tile_mode is None else tile_mode,
    )


class RenderService:
    """Shared-state batched renderer front-end.

    Parameters
    ----------
    max_renderers:
        Number of streaming renderers kept alive; building one is the
        expensive part (voxel grid, layout, optional VQ fit), so requests
        that revisit a (model, config) pair reuse it.
    """

    def __init__(self, max_renderers: int = DEFAULT_RENDERER_CACHE_SIZE) -> None:
        if max_renderers <= 0:
            raise ValueError("max_renderers must be positive")
        self.max_renderers = max_renderers
        self._renderers: "OrderedDict[Tuple[str, StreamingConfig], StreamingRenderer]" = (
            OrderedDict()
        )
        # The service daemon shares one RenderService across worker-actor
        # threads; the renderer-cache LRU bookkeeping (get + move_to_end +
        # evict) must be atomic under that concurrency.
        self._lock = threading.RLock()
        self.requests_served = 0
        self.renderer_hits = 0
        self.renderer_misses = 0
        self.peak_renderers = 0
        self.parallel_tile_frames = 0
        #: Telemetry of the most recent streaming render (kernel, tile
        #: worker count, tiles, wall seconds) — per-frame observability for
        #: the runner's ``--telemetry-json`` dump.
        self.last_frame: Optional[dict] = None
        #: Aggregated telemetry of the most recent :meth:`render_trajectory`
        #: (frame counts, carried/revalidated voxels, coherence hit rate).
        self.last_trajectory: Optional[dict] = None

    # ------------------------------------------------------------------
    def streaming_renderer(
        self,
        model: GaussianModel,
        config: Optional[StreamingConfig] = None,
        fingerprint: Optional[str] = None,
    ) -> StreamingRenderer:
        """The shared streaming renderer of a (model, config) pair.

        Keyed by the model's :meth:`~repro.gaussians.model.GaussianModel.content_fingerprint`,
        so models with equal parameters share one renderer while in-place
        parameter edits (e.g. a fine-tuning loop mutating the same object)
        miss the cache and get a renderer built from the current values.
        ``fingerprint`` lets batch callers that already hashed the model
        skip recomputing it (hashing covers every parameter array).
        """
        config = config or StreamingConfig()
        key = (fingerprint if fingerprint is not None else model.content_fingerprint(), config)
        with self._lock:
            renderer = self._renderers.get(key)
            if renderer is not None:
                self._renderers.move_to_end(key)
                self.renderer_hits += 1
                return renderer
            self.renderer_misses += 1
        # Building a renderer is the expensive part (voxel grid, layout,
        # optional VQ fit); do it unlocked so concurrent misses on other
        # keys are not serialized.  A racing duplicate build of the same
        # key is rare and harmless: last writer wins.
        renderer = StreamingRenderer(model, config)
        with self._lock:
            self._renderers[key] = renderer
            self.peak_renderers = max(self.peak_renderers, len(self._renderers))
            while len(self._renderers) > self.max_renderers:
                self._renderers.popitem(last=False)
        return renderer

    @staticmethod
    def tile_rasterizer(config: Optional[StreamingConfig] = None) -> TileRasterizer:
        """A tile-centric rasterizer matching the streaming configuration."""
        config = config or StreamingConfig()
        return TileRasterizer(
            tile_size=config.tile_size,
            background=config.background,
            sh_degree=config.sh_degree,
            kernel=config.blend_kernel,
        )

    # ------------------------------------------------------------------
    def render(
        self,
        request: RenderRequest,
        options: Optional[RenderOptions] = None,
        _fingerprint: Optional[str] = None,
        tile_workers: Optional[int] = None,
        tile_mode: Optional[str] = None,
    ) -> RenderResponse:
        """Serve one request.

        ``options`` (:class:`RenderOptions`) says how the frame executes:
        tile workers and their mode, per-call streaming-kernel / temporal
        overrides, and the resolution scale.  Images are identical and
        statistics deterministic regardless of scheduling, with the
        per-frame telemetry (including the mode actually taken) recorded
        in :attr:`last_frame`.

        ``tile_workers=`` / ``tile_mode=`` remain accepted as deprecated
        keywords (one DeprecationWarning per process) and fold into an
        equivalent :class:`RenderOptions`.  ``_fingerprint`` is internal:
        :meth:`render_batch` passes the model hash it already computed for
        grouping, so a batch hashes each model once instead of once per
        request.
        """
        options = _resolve_options(options, tile_workers, tile_mode)
        config = options.resolved_config(request.config or StreamingConfig())
        camera = options.resolved_camera(request.camera)
        if request.mode == "tile":
            output: Union[RenderOutput, StreamingRenderOutput] = self.tile_rasterizer(
                config
            ).render(request.model, camera)
        else:
            output = self.streaming_renderer(
                request.model, config, fingerprint=_fingerprint
            ).render(
                camera,
                tile_workers=options.tile_workers,
                tile_mode=options.tile_mode,
            )
            self.last_frame = dict(output.telemetry)
            if output.telemetry.get("tile_workers", 1) > 1:
                self.parallel_tile_frames += 1
        self.requests_served += 1
        return RenderResponse(request=request, output=output)

    def render_batch(
        self,
        requests: Iterable[RenderRequest],
        options: Optional[RenderOptions] = None,
        tile_workers: Optional[int] = None,
        tile_mode: Optional[str] = None,
    ) -> List[RenderResponse]:
        """Serve many requests, sharing renderers and prepared frames.

        Requests are grouped by (model, config) so each streaming renderer
        is built once and its frame-preparation cache sees every camera of
        the group back to back.  ``options`` applies to every streaming
        render of the batch (see :meth:`render`; the loose keywords are the
        same deprecated shim).
        """
        options = _resolve_options(options, tile_workers, tile_mode)
        indexed = list(enumerate(requests))
        responses: List[Optional[RenderResponse]] = [None] * len(indexed)
        streaming = [(i, r) for i, r in indexed if r.mode == "streaming"]
        # Group streaming requests by shared renderer state; the key matches
        # the renderer cache's (content fingerprint, config), so equal-content
        # model objects land in one group.  Fingerprints hash every parameter
        # array, so compute them once per model object, not per request.
        groups: "OrderedDict[Tuple[str, StreamingConfig], List[Tuple[int, RenderRequest]]]" = (
            OrderedDict()
        )
        fingerprints: dict = {}
        for i, request in streaming:
            fingerprint = fingerprints.get(id(request.model))
            if fingerprint is None:
                fingerprint = request.model.content_fingerprint()
                fingerprints[id(request.model)] = fingerprint
            groups.setdefault(
                (fingerprint, request.config or StreamingConfig()), []
            ).append((i, request))
        for (fingerprint, _), group in groups.items():
            for i, request in group:
                responses[i] = self.render(
                    request, options=options, _fingerprint=fingerprint
                )
        for i, request in indexed:
            if request.mode != "streaming":
                responses[i] = self.render(request)
        return list(responses)  # type: ignore[arg-type]

    def render_trajectory(
        self,
        model: GaussianModel,
        cameras: Sequence[Camera],
        config: Optional[StreamingConfig] = None,
        options: Optional[RenderOptions] = None,
        tag: str = "",
    ) -> List[RenderResponse]:
        """Render a camera trajectory frame by frame through one renderer.

        The frames share a single streaming renderer (the model is hashed
        once) and run in trajectory order, which is what the temporal
        carry path needs: with ``options.temporal_mode="carry"`` (or a
        config whose ``temporal_mode`` is already ``"carry"``) each frame
        revalidates the previous frame's carried per-tile state instead of
        rebuilding it.  Per-frame telemetry is aggregated into
        :attr:`last_trajectory` (frame counts, carried/revalidated voxel
        totals, overall coherence hit rate).
        """
        options = options if options is not None else RenderOptions()
        fingerprint = model.content_fingerprint()
        responses: List[RenderResponse] = []
        frames: List[dict] = []
        for index, camera in enumerate(cameras):
            request = RenderRequest(
                model=model,
                camera=camera,
                config=config,
                mode="streaming",
                tag=tag or f"frame{index}",
            )
            responses.append(
                self.render(request, options=options, _fingerprint=fingerprint)
            )
            frames.append(dict(self.last_frame or {}))
        carried = sum(int(f.get("carried_voxels", 0)) for f in frames)
        revalidated = sum(int(f.get("revalidated", 0)) for f in frames)
        reused = carried + revalidated
        self.last_trajectory = {
            "frames": len(frames),
            "warm_frames": sum(
                1
                for f in frames
                if f.get("temporal_mode") == "carry" and not f.get("cold_frame")
            ),
            "cold_frames": sum(1 for f in frames if f.get("cold_frame", True)),
            "carried_voxels": carried,
            "revalidated": revalidated,
            "coherence_hit_rate": carried / reused if reused else 0.0,
            "per_frame": frames,
        }
        return responses

    # ------------------------------------------------------------------
    def render_pair(
        self,
        model: GaussianModel,
        camera: Camera,
        config: Optional[StreamingConfig] = None,
    ) -> Tuple[RenderOutput, StreamingRenderOutput]:
        """Tile-centric reference and streaming render of the same scene."""
        tile, streaming = self.render_batch(
            [
                RenderRequest(model=model, camera=camera, config=config, mode="tile"),
                RenderRequest(
                    model=model, camera=camera, config=config, mode="streaming"
                ),
            ]
        )
        return tile.output, streaming.output  # type: ignore[return-value]

    def stats(self) -> dict:
        """Counter snapshot (requests served, renderer cache, temporal reuse).

        The ``temporal`` block aggregates every live renderer's
        :class:`~repro.engine.temporal.TemporalContext` counters, so the
        service daemon's ``/metrics`` endpoint exposes trajectory-coherence
        behaviour without reaching into individual renderers.
        """
        with self._lock:
            temporal = {
                "frames": 0,
                "cold_frames": 0,
                "teleports": 0,
                "carried_voxels": 0,
                "revalidated_voxels": 0,
                "orders_carried": 0,
                "orders_computed": 0,
            }
            for renderer in self._renderers.values():
                snap = renderer.temporal.snapshot()
                for key in temporal:
                    temporal[key] += int(snap.get(key, 0))
            reused = temporal["carried_voxels"] + temporal["revalidated_voxels"]
            temporal["coherence_hit_rate"] = (
                temporal["carried_voxels"] / reused if reused else 0.0
            )
            return {
                "requests_served": self.requests_served,
                "renderer_hits": self.renderer_hits,
                "renderer_misses": self.renderer_misses,
                "renderers_alive": len(self._renderers),
                "peak_renderers": self.peak_renderers,
                "parallel_tile_frames": self.parallel_tile_frames,
                "temporal": temporal,
                "last_frame": dict(self.last_frame) if self.last_frame else None,
                "last_trajectory": (
                    dict(self.last_trajectory) if self.last_trajectory else None
                ),
            }

    def clear(self) -> None:
        """Drop every cached renderer (counters are kept)."""
        with self._lock:
            self._renderers.clear()

    def close(self) -> None:
        """Release held state; alias of :meth:`clear` for lifecycle symmetry.

        :meth:`Session.close` calls this so shutting a session down frees
        renderer memory (voxel grids, layouts, codebooks) along with the
        worker pool.
        """
        self.clear()


_DEFAULT_SERVICE: Optional[RenderService] = None


def get_default_service() -> RenderService:
    """The process-wide shared :class:`RenderService`."""
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        _DEFAULT_SERVICE = RenderService()
    return _DEFAULT_SERVICE


def reset_default_service() -> None:
    """Replace the process-wide service (used by tests)."""
    global _DEFAULT_SERVICE
    _DEFAULT_SERVICE = None
