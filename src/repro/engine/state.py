"""Per-pixel blending state with array-based per-Gaussian statistics.

:class:`BlendState` is the resumable accumulator both renderers blend into:
the tile-centric rasterizer blends one tile's full sorted list into a fresh
state, while the memory-centric streaming pipeline resumes the same state
voxel by voxel (the partial pixel values that stay on-chip in Fig. 1b).

The per-Gaussian weight bookkeeping is held in dense NumPy arrays indexed by
*model* Gaussian id rather than dictionaries.  The streaming renderer binds
the frame-level statistics arrays of :class:`repro.core.pipeline.StreamingStats`
directly into the state, so kernels accumulate attribution in place and the
O(voxels x gaussians) dict copies of the old per-voxel diffing are gone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class BlendState:
    """Per-pixel accumulators of (partial) alpha blending.

    ``max_depth`` tracks, per pixel, the largest camera-space depth among
    the Gaussians that have already contributed to that pixel.  The
    streaming pipeline uses it to count depth-order violations (the ``T_i``
    indicator of the cross-boundary penalty, Eq. 2) at per-pixel
    granularity, and ``gaussian_weights`` / ``gaussian_violation_weights``
    attribute the blended weight (and the out-of-order part of it) to the
    individual Gaussians so the boundary-aware fine-tuning can target the
    actual offenders.
    """

    color: np.ndarray          # (P, 3) accumulated premultiplied colour
    transmittance: np.ndarray  # (P,) remaining transmittance
    max_depth: np.ndarray      # (P,) largest depth blended so far
    blended_fragments: int = 0
    depth_violations: int = 0
    #: (G,) blended weight per Gaussian id; allocated lazily when depth-order
    #: tracking is requested, or bound to an external (frame-level) array.
    gaussian_weights: Optional[np.ndarray] = None
    #: (G,) out-of-order blended weight per Gaussian id.
    gaussian_violation_weights: Optional[np.ndarray] = None
    #: True when the weight arrays alias external storage; they must then
    #: never be reallocated, or the owner would stop seeing contributions.
    weights_bound: bool = False

    @classmethod
    def fresh(cls, num_pixels: int, num_gaussians: Optional[int] = None) -> "BlendState":
        state = cls(
            color=np.zeros((num_pixels, 3), dtype=np.float64),
            transmittance=np.ones(num_pixels, dtype=np.float64),
            max_depth=np.full(num_pixels, -np.inf, dtype=np.float64),
        )
        if num_gaussians is not None:
            state.ensure_weight_arrays(num_gaussians)
        return state

    def bind_weight_arrays(
        self, weights: np.ndarray, violation_weights: np.ndarray
    ) -> None:
        """Share external accumulator arrays (e.g. frame-level statistics).

        Kernels add per-Gaussian weight attribution in place, so the owner of
        the arrays sees every contribution without any copying.
        """
        self.gaussian_weights = weights
        self.gaussian_violation_weights = violation_weights
        self.weights_bound = True

    def ensure_weight_arrays(self, num_gaussians: int) -> None:
        """Allocate (or grow) the per-Gaussian weight accumulators.

        Raises
        ------
        ValueError
            When bound external arrays would have to grow — reallocating
            them would silently sever the aliasing, so the owner must
            provide arrays large enough up front.
        """
        if self.gaussian_weights is None:
            self.gaussian_weights = np.zeros(num_gaussians, dtype=np.float64)
            self.gaussian_violation_weights = np.zeros(num_gaussians, dtype=np.float64)
            return
        if len(self.gaussian_weights) < num_gaussians:
            if self.weights_bound:
                raise ValueError(
                    f"bound weight arrays of size {len(self.gaussian_weights)} "
                    f"cannot be grown to {num_gaussians}; bind larger arrays"
                )
            grown = np.zeros(num_gaussians, dtype=np.float64)
            grown[: len(self.gaussian_weights)] = self.gaussian_weights
            self.gaussian_weights = grown
            grown_v = np.zeros(num_gaussians, dtype=np.float64)
            grown_v[: len(self.gaussian_violation_weights)] = self.gaussian_violation_weights
            self.gaussian_violation_weights = grown_v
