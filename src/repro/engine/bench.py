"""Micro-benchmarks of the blending kernels and the streaming render path.

:func:`run_kernel_benchmark` times the tile-centric render of a seeded
synthetic scene under each registered blending kernel, verifies the outputs
agree, and reports the speedup of the vectorized kernel over the reference
loop (``benchmarks/bench_engine.py`` → ``BENCH_engine.json``; the runner's
``engine`` experiment).

:func:`run_streaming_benchmark` does the same for the memory-centric
streaming pipeline's per-voxel render paths: the voxel-at-a-time reference
loop against the batched/vectorized fast path
(``StreamingConfig.streaming_kernel``), checking that images agree within
1e-9 and that every workload statistic — fragments, filter reductions,
depth-order violation sets — is exactly equal
(``benchmarks/bench_streaming.py`` → ``BENCH_streaming.json``).

:func:`run_trajectory_benchmark` times a registered camera trajectory
under the temporal-coherence carry path (``temporal_mode="carry"``)
against cold per-frame rendering (``"off"``), with the same parity
contract — images within 1e-9, statistics exactly equal, frame by frame
(``benchmarks/bench_trajectory.py`` → ``BENCH_trajectory.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer, StreamingStats
from repro.engine.kernels import DEFAULT_KERNEL, available_kernels
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import TileRasterizer
from repro.gaussians.sh import rgb_to_sh_dc


def benchmark_scene(
    num_gaussians: int = 6000, extent: float = 4.0, seed: int = 7
) -> GaussianModel:
    """A seeded synthetic Gaussian cloud for kernel timing."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-extent / 2, extent / 2, size=(num_gaussians, 3))
    scales = rng.lognormal(np.log(0.08), 0.3, size=(num_gaussians, 3))
    rotations = rng.normal(size=(num_gaussians, 4))
    opacities = np.clip(rng.normal(0.8, 0.1, size=num_gaussians), 0.05, 0.99)
    colors = rng.uniform(0.1, 0.9, size=(num_gaussians, 3))
    sh_rest = rng.normal(0.0, 0.02, size=(num_gaussians, 15, 3))
    return GaussianModel(
        positions=positions,
        scales=scales,
        rotations=rotations,
        opacities=opacities,
        sh_dc=rgb_to_sh_dc(colors),
        sh_rest=sh_rest,
    )


def benchmark_camera(width: int = 160, height: int = 120) -> Camera:
    """The evaluation view of the benchmark scene."""
    return Camera.from_lookat(
        eye=(6.0, 0.5, 1.0),
        target=(0.0, 0.0, 0.0),
        width=width,
        height=height,
        fov_deg=60.0,
    )


@dataclass
class KernelBenchResult:
    """Timings and equivalence check of one kernel-comparison run."""

    num_gaussians: int
    resolution: tuple
    repeats: int
    seconds: Dict[str, float] = field(default_factory=dict)
    max_image_delta: float = 0.0
    blended_fragments: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Reference-kernel time over vectorized-kernel time."""
        reference = self.seconds.get("reference", 0.0)
        vectorized = self.seconds.get("vectorized", 0.0)
        return reference / vectorized if vectorized else 0.0

    def as_dict(self) -> dict:
        return {
            "num_gaussians": self.num_gaussians,
            "resolution": list(self.resolution),
            "repeats": self.repeats,
            "seconds": dict(self.seconds),
            "speedup": self.speedup,
            "max_image_delta": self.max_image_delta,
            "blended_fragments": dict(self.blended_fragments),
            "default_kernel": DEFAULT_KERNEL,
        }

    def format(self) -> str:
        lines = [
            "engine kernel micro-benchmark "
            f"({self.num_gaussians} Gaussians, {self.resolution[0]}x{self.resolution[1]}, "
            f"{self.repeats} repeat(s))"
        ]
        for name in sorted(self.seconds):
            lines.append(
                f"  {name:<12} {self.seconds[name] * 1e3:9.1f} ms  "
                f"fragments={self.blended_fragments[name]}"
            )
        lines.append(
            f"  speedup (reference / vectorized): {self.speedup:.2f}x; "
            f"max |image delta| = {self.max_image_delta:.3g}"
        )
        return "\n".join(lines)


def run_kernel_benchmark(
    num_gaussians: int = 6000,
    width: int = 160,
    height: int = 120,
    repeats: int = 3,
    seed: int = 7,
) -> KernelBenchResult:
    """Time every registered kernel on the tile-centric render of one scene."""
    model = benchmark_scene(num_gaussians=num_gaussians, seed=seed)
    camera = benchmark_camera(width=width, height=height)
    result = KernelBenchResult(
        num_gaussians=num_gaussians, resolution=(width, height), repeats=repeats
    )
    images: Dict[str, np.ndarray] = {}
    rasterizers = {name: TileRasterizer(kernel=name) for name in available_kernels()}
    best: Dict[str, float] = {name: float("inf") for name in rasterizers}
    # Rounds are interleaved across kernels so machine-load drift during the
    # benchmark biases neither side of the speedup ratio.
    for _ in range(repeats):
        for name, rasterizer in rasterizers.items():
            start = time.perf_counter()
            output = rasterizer.render(model, camera)
            best[name] = min(best[name], time.perf_counter() - start)
            result.blended_fragments[name] = output.stats.num_blended_fragments
            images[name] = output.image
    result.seconds = dict(best)
    deltas: List[float] = [
        float(np.max(np.abs(images[name] - images["reference"])))
        for name in images
    ]
    result.max_image_delta = max(deltas)
    return result


# ----------------------------------------------------------------------
# Streaming render-path benchmark.
# ----------------------------------------------------------------------
def streaming_stats_equal(
    a: StreamingStats, b: StreamingStats, weight_atol: float = 1e-9
) -> Tuple[bool, str]:
    """Whether two streaming runs produced the same workload description.

    Integer accounting (fragments, filter counts, traffic bytes, sort
    lists, violation counts) must be *exactly* equal; the float
    per-Gaussian weight arrays within ``weight_atol``; the derived
    error-Gaussian (violation) sets identical.  Returns ``(ok, detail)``
    with ``detail`` naming the first mismatching field.
    """
    exact_fields = (
        "num_tiles",
        "num_tile_voxel_pairs",
        "rays_sampled",
        "ordering_table_entries",
        "dag_edges",
        "dag_nodes",
        "cycles_broken",
        "gaussians_streamed",
        "filter",
        "traffic",
        "blended_fragments",
        "blended_fragment_slots",
        "sorted_gaussians",
        "max_voxel_list_length",
        "rendered_gaussian_slots",
        "depth_order_errors",
        "sort_list_lengths",
    )
    for name in exact_fields:
        if getattr(a, name) != getattr(b, name):
            return False, f"{name}: {getattr(a, name)!r} != {getattr(b, name)!r}"
    for name in ("gaussian_blend_weight", "gaussian_violation_weight"):
        left, right = getattr(a, name), getattr(b, name)
        if (left is None) != (right is None):
            return False, f"{name}: one side is None"
        if left is not None and not np.allclose(left, right, atol=weight_atol):
            return False, f"{name}: max delta {np.max(np.abs(left - right)):.3g}"
    if not np.array_equal(a.error_gaussian_indices(), b.error_gaussian_indices()):
        return False, "error_gaussian_indices differ"
    return True, ""


@dataclass
class StreamingBenchResult:
    """Timings and equivalence check of one streaming-path comparison run."""

    num_gaussians: int
    resolution: tuple
    voxel_size: float
    repeats: int
    tile_workers: int
    seconds: Dict[str, float] = field(default_factory=dict)
    max_image_delta: float = 0.0
    stats_equal: bool = False
    stats_detail: str = ""
    gaussians_streamed: int = 0
    blended_fragments: int = 0
    filtering_reduction: float = 0.0
    #: Parallel-path execution record (populated when ``tile_workers > 1``):
    #: the mode that actually ran (process / thread after degradation), the
    #: parity of the parallel frame against the serial vectorized one, and
    #: the zero-copy accounting of the process path.
    tile_mode: str = ""
    parallel_image_delta: float = 0.0
    parallel_stats_equal: bool = True
    parallel_stats_detail: str = ""
    shm_segments: int = 0
    pickled_bytes: int = 0

    @property
    def speedup(self) -> float:
        """Reference-path time over vectorized-path time."""
        reference = self.seconds.get("reference", 0.0)
        vectorized = self.seconds.get("vectorized", 0.0)
        return reference / vectorized if vectorized else 0.0

    @property
    def parallel_speedup(self) -> float:
        """Vectorized serial-tile time over parallel-tile time (0 when unmeasured)."""
        vectorized = self.seconds.get("vectorized", 0.0)
        parallel = self.seconds.get("vectorized_parallel", 0.0)
        return vectorized / parallel if parallel else 0.0

    def as_dict(self) -> dict:
        return {
            "num_gaussians": self.num_gaussians,
            "resolution": list(self.resolution),
            "voxel_size": self.voxel_size,
            "repeats": self.repeats,
            "tile_workers": self.tile_workers,
            "seconds": dict(self.seconds),
            "speedup": self.speedup,
            "parallel_speedup": self.parallel_speedup,
            "max_image_delta": self.max_image_delta,
            "stats_equal": self.stats_equal,
            "stats_detail": self.stats_detail,
            "gaussians_streamed": self.gaussians_streamed,
            "blended_fragments": self.blended_fragments,
            "filtering_reduction": self.filtering_reduction,
            "tile_mode": self.tile_mode,
            "parallel_image_delta": self.parallel_image_delta,
            "parallel_stats_equal": self.parallel_stats_equal,
            "parallel_stats_detail": self.parallel_stats_detail,
            "shm_segments": self.shm_segments,
            "pickled_bytes": self.pickled_bytes,
        }

    def format(self) -> str:
        lines = [
            "streaming render-path micro-benchmark "
            f"({self.num_gaussians} Gaussians, {self.resolution[0]}x{self.resolution[1]}, "
            f"voxel {self.voxel_size}, {self.repeats} repeat(s))"
        ]
        for name in sorted(self.seconds):
            lines.append(f"  {name:<20} {self.seconds[name] * 1e3:9.1f} ms")
        lines.append(
            f"  speedup (reference / vectorized): {self.speedup:.2f}x; "
            f"max |image delta| = {self.max_image_delta:.3g}; "
            f"stats {'EQUAL' if self.stats_equal else 'DIFFER: ' + self.stats_detail}"
        )
        if self.tile_workers > 1:
            lines.append(
                f"  parallel tiles ({self.tile_workers} workers, "
                f"{self.tile_mode or 'unmeasured'} mode): "
                f"{self.parallel_speedup:.2f}x over serial tiles; "
                f"max |image delta| = {self.parallel_image_delta:.3g}; "
                f"stats {'EQUAL' if self.parallel_stats_equal else 'DIFFER: ' + self.parallel_stats_detail}"
            )
            if self.tile_mode == "process":
                lines.append(
                    f"  zero-copy transport: {self.shm_segments} shm segment(s), "
                    f"{self.pickled_bytes} pickled bytes per dispatch"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trajectory (temporal-coherence) benchmark.
# ----------------------------------------------------------------------
@dataclass
class TrajectoryBenchResult:
    """Timings and parity check of one carry-vs-off trajectory comparison.

    ``seconds`` holds the best full-trajectory wall time of each temporal
    mode; the *warm ratio* is the amortized carry-path time over the cold
    path's.  Parity (images within 1e-9, statistics exactly equal, frame
    by frame) is recorded from a dedicated untimed pass.
    """

    scene: str
    path: str
    frames: int
    resolution_scale: float
    repeats: int
    voxel_size: float = 0.0
    seconds: Dict[str, float] = field(default_factory=dict)
    max_image_delta: float = 0.0
    stats_equal: bool = False
    stats_detail: str = ""
    temporal: Dict[str, object] = field(default_factory=dict)

    @property
    def warm_ratio(self) -> float:
        """Amortized carry-trajectory time over the cold trajectory's."""
        off = self.seconds.get("off", 0.0)
        carry = self.seconds.get("carry", 0.0)
        return carry / off if off else 0.0

    def as_dict(self) -> dict:
        return {
            "scene": self.scene,
            "path": self.path,
            "frames": self.frames,
            "resolution_scale": self.resolution_scale,
            "repeats": self.repeats,
            "voxel_size": self.voxel_size,
            "seconds": dict(self.seconds),
            "warm_ratio": self.warm_ratio,
            "max_image_delta": self.max_image_delta,
            "stats_equal": self.stats_equal,
            "stats_detail": self.stats_detail,
            "temporal": dict(self.temporal),
        }

    def format(self) -> str:
        lines = [
            "trajectory temporal-coherence benchmark "
            f"({self.scene}/{self.path}, {self.frames} frames @ "
            f"{self.resolution_scale:g}x, voxel {self.voxel_size:g}, "
            f"{self.repeats} repeat(s))"
        ]
        for name in sorted(self.seconds):
            per_frame = self.seconds[name] / max(1, self.frames)
            lines.append(
                f"  temporal_mode={name:<6} {self.seconds[name] * 1e3:9.1f} ms "
                f"({per_frame * 1e3:7.1f} ms/frame)"
            )
        lines.append(
            f"  warm ratio (carry / off): {self.warm_ratio:.3f}; "
            f"max |image delta| = {self.max_image_delta:.3g}; "
            f"stats {'EQUAL' if self.stats_equal else 'DIFFER: ' + self.stats_detail}"
        )
        if self.temporal:
            lines.append(
                "  carry telemetry: "
                f"{self.temporal.get('cold_frames', 0)} cold / "
                f"{self.temporal.get('frames', 0)} frames, "
                f"hit rate {float(self.temporal.get('coherence_hit_rate', 0.0)):.3f}, "
                f"orders carried {self.temporal.get('orders_carried', 0)}"
            )
        return "\n".join(lines)


def run_trajectory_benchmark(
    scene: str = "train",
    path: str = "orbit",
    frames: int = 24,
    resolution_scale: float = 1.5,
    repeats: int = 3,
    config: Optional[StreamingConfig] = None,
) -> TrajectoryBenchResult:
    """Time a trajectory under ``temporal_mode="carry"`` against ``"off"``.

    Both paths render the identical camera path on fresh renderers with
    the frame-preparation cache disabled (it would replay whole frames and
    hide the comparison).  An untimed first pass checks frame-by-frame
    parity — images within 1e-9, statistics exactly equal — and warms the
    carry context's content-keyed caches; the timed passes then measure
    the amortized steady-state trajectory, interleaving the two modes so
    machine-load drift biases neither side of the ratio.
    """
    from repro.scenes.registry import SCENE_REGISTRY, build_scene, trajectory_cameras

    model = build_scene(scene)
    base = config or StreamingConfig(
        voxel_size=SCENE_REGISTRY[scene].default_voxel_size
    )
    if base.frame_cache_size:
        base = base.with_options(frame_cache_size=0)
    renderers = {
        mode: StreamingRenderer(model, base.with_options(temporal_mode=mode))
        for mode in ("off", "carry")
    }
    cameras = trajectory_cameras(
        scene, path, frames, resolution_scale=resolution_scale
    )

    result = TrajectoryBenchResult(
        scene=scene,
        path=path,
        frames=len(cameras),
        resolution_scale=resolution_scale,
        repeats=repeats,
        voxel_size=base.voxel_size,
    )
    result.stats_equal = True
    for index, camera in enumerate(cameras):
        off_out = renderers["off"].render(camera)
        carry_out = renderers["carry"].render(camera)
        result.max_image_delta = max(
            result.max_image_delta,
            float(np.max(np.abs(carry_out.image - off_out.image))),
        )
        ok, detail = streaming_stats_equal(off_out.stats, carry_out.stats)
        if not ok and result.stats_equal:
            result.stats_equal = False
            result.stats_detail = f"frame {index}: {detail}"
    best = {mode: float("inf") for mode in renderers}
    for _ in range(repeats):
        for mode, renderer in renderers.items():
            start = time.perf_counter()
            for camera in cameras:
                renderer.render(camera)
            best[mode] = min(best[mode], time.perf_counter() - start)
    result.seconds = dict(best)
    result.temporal = dict(renderers["carry"].temporal.snapshot())
    return result


def run_streaming_benchmark(
    num_gaussians: int = 6000,
    width: int = 160,
    height: int = 120,
    repeats: int = 3,
    seed: int = 7,
    voxel_size: float = 0.5,
    tile_workers: int = 0,
    tile_mode: str = "auto",
    config: Optional[StreamingConfig] = None,
) -> StreamingBenchResult:
    """Time the streaming reference loop against the vectorized fast path.

    Frame preparation (ray traversal, topological sort) is warmed first so
    the timings isolate the per-voxel render path the two kernels differ
    in.  ``tile_workers > 1`` additionally times the vectorized path with
    parallel tile rendering (process-based over shared memory by default;
    ``tile_mode`` selects the path) and records the parallel frame's
    parity against the serial one plus the zero-copy transport accounting.
    A warm-up parallel render runs untimed first so pool start-up and the
    one-time frame publication do not bias the steady-state timing.
    """
    model = benchmark_scene(num_gaussians=num_gaussians, seed=seed)
    camera = benchmark_camera(width=width, height=height)
    # ``voxel_size`` shapes the default configuration only; an explicit
    # ``config`` is benchmarked exactly as given (and its voxel size is
    # what the trajectory records).
    base = config or StreamingConfig(voxel_size=voxel_size, use_vq=False)
    voxel_size = base.voxel_size
    renderers = {
        name: StreamingRenderer(model, base.with_options(streaming_kernel=name))
        for name in ("reference", "vectorized")
    }
    for renderer in renderers.values():
        renderer.prepare_frame(camera)

    result = StreamingBenchResult(
        num_gaussians=num_gaussians,
        resolution=(width, height),
        voxel_size=voxel_size,
        repeats=repeats,
        tile_workers=tile_workers,
    )
    outputs: Dict[str, object] = {}
    best: Dict[str, float] = {name: float("inf") for name in renderers}
    # Rounds are interleaved across paths so machine-load drift during the
    # benchmark biases neither side of the speedup ratio.
    for _ in range(repeats):
        for name, renderer in renderers.items():
            start = time.perf_counter()
            outputs[name] = renderer.render(camera)
            best[name] = min(best[name], time.perf_counter() - start)
    if tile_workers > 1:
        parallel_output = renderers["vectorized"].render(
            camera, tile_workers=tile_workers, tile_mode=tile_mode
        )
        result.tile_mode = str(parallel_output.telemetry.get("tile_mode", ""))
        result.shm_segments = int(parallel_output.telemetry.get("shm_segments", 0))
        result.pickled_bytes = int(parallel_output.telemetry.get("pickled_bytes", 0))
        best["vectorized_parallel"] = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            renderers["vectorized"].render(
                camera, tile_workers=tile_workers, tile_mode=tile_mode
            )
            best["vectorized_parallel"] = min(
                best["vectorized_parallel"], time.perf_counter() - start
            )
        serial_vectorized = outputs["vectorized"]
        result.parallel_image_delta = float(
            np.max(np.abs(parallel_output.image - serial_vectorized.image))
        )
        result.parallel_stats_equal, result.parallel_stats_detail = (
            streaming_stats_equal(serial_vectorized.stats, parallel_output.stats)
        )
    result.seconds = dict(best)

    reference, vectorized = outputs["reference"], outputs["vectorized"]
    result.max_image_delta = float(
        np.max(np.abs(vectorized.image - reference.image))
    )
    result.stats_equal, result.stats_detail = streaming_stats_equal(
        reference.stats, vectorized.stats
    )
    result.gaussians_streamed = vectorized.stats.gaussians_streamed
    result.blended_fragments = vectorized.stats.blended_fragments
    result.filtering_reduction = vectorized.stats.filtering_reduction
    return result
