"""Micro-benchmark of the blending kernels.

Times the tile-centric render of a seeded synthetic scene under each
registered blending kernel, verifies the outputs agree, and reports the
speedup of the vectorized kernel over the reference loop.  The benchmark
script ``benchmarks/bench_engine.py`` appends the result to the
``BENCH_engine.json`` trajectory, and the analysis runner exposes it as the
``engine`` experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.engine.kernels import DEFAULT_KERNEL, available_kernels
from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.rasterizer import TileRasterizer
from repro.gaussians.sh import rgb_to_sh_dc


def benchmark_scene(
    num_gaussians: int = 6000, extent: float = 4.0, seed: int = 7
) -> GaussianModel:
    """A seeded synthetic Gaussian cloud for kernel timing."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-extent / 2, extent / 2, size=(num_gaussians, 3))
    scales = rng.lognormal(np.log(0.08), 0.3, size=(num_gaussians, 3))
    rotations = rng.normal(size=(num_gaussians, 4))
    opacities = np.clip(rng.normal(0.8, 0.1, size=num_gaussians), 0.05, 0.99)
    colors = rng.uniform(0.1, 0.9, size=(num_gaussians, 3))
    sh_rest = rng.normal(0.0, 0.02, size=(num_gaussians, 15, 3))
    return GaussianModel(
        positions=positions,
        scales=scales,
        rotations=rotations,
        opacities=opacities,
        sh_dc=rgb_to_sh_dc(colors),
        sh_rest=sh_rest,
    )


def benchmark_camera(width: int = 160, height: int = 120) -> Camera:
    """The evaluation view of the benchmark scene."""
    return Camera.from_lookat(
        eye=(6.0, 0.5, 1.0),
        target=(0.0, 0.0, 0.0),
        width=width,
        height=height,
        fov_deg=60.0,
    )


@dataclass
class KernelBenchResult:
    """Timings and equivalence check of one kernel-comparison run."""

    num_gaussians: int
    resolution: tuple
    repeats: int
    seconds: Dict[str, float] = field(default_factory=dict)
    max_image_delta: float = 0.0
    blended_fragments: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Reference-kernel time over vectorized-kernel time."""
        reference = self.seconds.get("reference", 0.0)
        vectorized = self.seconds.get("vectorized", 0.0)
        return reference / vectorized if vectorized else 0.0

    def as_dict(self) -> dict:
        return {
            "num_gaussians": self.num_gaussians,
            "resolution": list(self.resolution),
            "repeats": self.repeats,
            "seconds": dict(self.seconds),
            "speedup": self.speedup,
            "max_image_delta": self.max_image_delta,
            "blended_fragments": dict(self.blended_fragments),
            "default_kernel": DEFAULT_KERNEL,
        }

    def format(self) -> str:
        lines = [
            "engine kernel micro-benchmark "
            f"({self.num_gaussians} Gaussians, {self.resolution[0]}x{self.resolution[1]}, "
            f"{self.repeats} repeat(s))"
        ]
        for name in sorted(self.seconds):
            lines.append(
                f"  {name:<12} {self.seconds[name] * 1e3:9.1f} ms  "
                f"fragments={self.blended_fragments[name]}"
            )
        lines.append(
            f"  speedup (reference / vectorized): {self.speedup:.2f}x; "
            f"max |image delta| = {self.max_image_delta:.3g}"
        )
        return "\n".join(lines)


def run_kernel_benchmark(
    num_gaussians: int = 6000,
    width: int = 160,
    height: int = 120,
    repeats: int = 3,
    seed: int = 7,
) -> KernelBenchResult:
    """Time every registered kernel on the tile-centric render of one scene."""
    model = benchmark_scene(num_gaussians=num_gaussians, seed=seed)
    camera = benchmark_camera(width=width, height=height)
    result = KernelBenchResult(
        num_gaussians=num_gaussians, resolution=(width, height), repeats=repeats
    )
    images: Dict[str, np.ndarray] = {}
    rasterizers = {name: TileRasterizer(kernel=name) for name in available_kernels()}
    best: Dict[str, float] = {name: float("inf") for name in rasterizers}
    # Rounds are interleaved across kernels so machine-load drift during the
    # benchmark biases neither side of the speedup ratio.
    for _ in range(repeats):
        for name, rasterizer in rasterizers.items():
            start = time.perf_counter()
            output = rasterizer.render(model, camera)
            best[name] = min(best[name], time.perf_counter() - start)
            result.blended_fragments[name] = output.stats.num_blended_fragments
            images[name] = output.image
    result.seconds = dict(best)
    deltas: List[float] = [
        float(np.max(np.abs(images[name] - images["reference"])))
        for name in images
    ]
    result.max_image_delta = max(deltas)
    return result
