"""Unified render-engine layer shared by both rendering paradigms.

The paper compares two renderers — the tile-centric 3DGS baseline
(Fig. 1a) and the memory-centric streaming pipeline (Fig. 1b).  Both sit on
top of this subsystem:

* :mod:`repro.engine.kernels` — interchangeable alpha-blending kernels: the
  per-Gaussian reference loop and a fully vectorized broadcast kernel that
  derives transmittance via exclusive cumulative products (numerically
  equivalent, selected through ``StreamingConfig.blend_kernel`` /
  ``TileRasterizer(kernel=...)``; vectorized is the default);
* :mod:`repro.engine.state` — the resumable :class:`BlendState` with dense
  array-based per-Gaussian weight/violation accumulators;
* :mod:`repro.engine.cache` — the frame-preparation cache memoizing voxel
  depth maps, per-tile ordering tables and topological orders per camera
  pose;
* :mod:`repro.engine.service` — :class:`RenderService`, the batched
  front-end that shares renderers and prepared frames across many
  (model, camera, config) requests;
* :mod:`repro.engine.bench` — the kernel micro-benchmark behind the
  ``engine`` analysis experiment and ``benchmarks/bench_engine.py``.
"""

from repro.engine.state import BlendState
from repro.engine.kernels import (
    ALPHA_EPSILON,
    ALPHA_MAX,
    DEFAULT_KERNEL,
    KERNELS,
    TRANSMITTANCE_EPSILON,
    available_kernels,
    blend_reference,
    blend_vectorized,
    get_kernel,
)
from repro.engine.cache import FrameCache, FramePreparation, frame_key

#: Symbols that sit on top of ``repro.core`` / the rasterizer and would
#: close an import cycle if loaded eagerly (the kernel/state layer is a
#: dependency of both renderers); resolved lazily via PEP 562.
_LAZY = {
    "RenderRequest": "repro.engine.service",
    "RenderResponse": "repro.engine.service",
    "RenderService": "repro.engine.service",
    "get_default_service": "repro.engine.service",
    "reset_default_service": "repro.engine.service",
    "KernelBenchResult": "repro.engine.bench",
    "run_kernel_benchmark": "repro.engine.bench",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BlendState",
    "ALPHA_EPSILON",
    "ALPHA_MAX",
    "DEFAULT_KERNEL",
    "KERNELS",
    "TRANSMITTANCE_EPSILON",
    "available_kernels",
    "blend_reference",
    "blend_vectorized",
    "get_kernel",
    "FrameCache",
    "FramePreparation",
    "frame_key",
    "RenderRequest",
    "RenderResponse",
    "RenderService",
    "get_default_service",
    "reset_default_service",
    "KernelBenchResult",
    "run_kernel_benchmark",
]
