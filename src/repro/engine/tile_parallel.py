"""Process-based parallel tile rendering over shared memory.

The PR 5 tile pool fanned tiles over *threads*; the per-tile work is pure
NumPy/Python, so the GIL serialised it (~0.97x).  This module renders the
same disjoint tiles in *processes* while keeping every byte-parity
guarantee, by making all large transfers zero-copy:

* the renderer, camera and prepared frame (3D-DDA ordering tables,
  topological voxel orders) are packaged **once per render** with
  :class:`~repro.api.shm.ShmPackage` — model and frame arrays go into
  shared-memory segments, workers attach them read-only;
* the image, alpha and per-Gaussian weight accumulators are **writable
  shared buffers**: workers write their disjoint tile regions (and their
  private weight rows) in place, so no render output is ever pickled;
* per-tile :class:`~repro.core.pipeline.StreamingStats` come back as
  compact int64 arrays (one row of scalar counters plus the ragged
  sort-length lists) and the frame absorbs them **in tile id order** —
  bit-identical integer statistics and deterministic float accumulation
  regardless of worker scheduling.

Tiles are assigned round-robin (worker ``w`` renders tiles ``w, w+N,
w+2N, ...``) so adjacent expensive tiles spread across workers.  The
worker pool is a lazily created, process-wide ``ProcessPoolExecutor``
(fork start method when the platform offers it — the cheap path; spawn
works too since everything a worker needs arrives via the package),
grown on demand and shut down at interpreter exit.  Anything that stops
the process path — no usable shared memory, daemonic caller, pool
creation failure, worker death — raises :class:`TileParallelUnavailable`
and the renderer degrades to the thread path, recording the reason in
the frame telemetry.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import multiprocessing
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.api.shm import (
    SharedArrayHandle,
    SharedMemoryUnavailable,
    ShmPackage,
    ShmRegistry,
    shm_available,
)
from repro.core.hierarchical_filter import FilterStats
from repro.core.data_layout import LayoutTraffic

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle)
    from repro.core.pipeline import StreamingRenderer, StreamingStats

#: Scalar int64 columns of one tile's statistics row, in absorb order:
#: the plain counters of ``StreamingStats`` followed by the fields of its
#: nested ``FilterStats`` and ``LayoutTraffic`` records.
STAT_COLUMNS: Tuple[str, ...] = (
    "num_tile_voxel_pairs",
    "rays_sampled",
    "ordering_table_entries",
    "dag_edges",
    "dag_nodes",
    "cycles_broken",
    "gaussians_streamed",
    "blended_fragments",
    "blended_fragment_slots",
    "sorted_gaussians",
    "max_voxel_list_length",
    "rendered_gaussian_slots",
    "depth_order_errors",
)
FILTER_COLUMNS: Tuple[str, ...] = (
    "gaussians_in",
    "coarse_tested",
    "coarse_passed",
    "fine_tested",
    "fine_passed",
    "coarse_macs",
    "fine_macs",
)
TRAFFIC_COLUMNS: Tuple[str, ...] = (
    "first_half_bytes",
    "second_half_bytes",
    "pixel_write_bytes",
    "metadata_bytes",
)
ROW_WIDTH = len(STAT_COLUMNS) + len(FILTER_COLUMNS) + len(TRAFFIC_COLUMNS)


class TileParallelUnavailable(RuntimeError):
    """The process tile path cannot run here; degrade to threads."""


def stats_to_row(stats: "StreamingStats") -> np.ndarray:
    """Flatten one tile's scalar statistics into an int64 row."""
    values = [getattr(stats, name) for name in STAT_COLUMNS]
    values.extend(getattr(stats.filter, name) for name in FILTER_COLUMNS)
    values.extend(getattr(stats.traffic, name) for name in TRAFFIC_COLUMNS)
    return np.asarray(values, dtype=np.int64)


def row_to_stats(row: np.ndarray, sort_lengths: np.ndarray) -> "StreamingStats":
    """Rebuild a (weight-array-free) per-tile ``StreamingStats`` record."""
    from repro.core.pipeline import StreamingStats

    stats = StreamingStats()
    offset = 0
    for name in STAT_COLUMNS:
        setattr(stats, name, int(row[offset]))
        offset += 1
    stats.filter = FilterStats(
        **{name: int(row[offset + i]) for i, name in enumerate(FILTER_COLUMNS)}
    )
    offset += len(FILTER_COLUMNS)
    stats.traffic = LayoutTraffic(
        **{name: int(row[offset + i]) for i, name in enumerate(TRAFFIC_COLUMNS)}
    )
    stats.sort_list_lengths = [int(n) for n in sort_lengths]
    return stats


# ----------------------------------------------------------------------
# Worker side.
# ----------------------------------------------------------------------
def _render_tile_block(
    package: ShmPackage,
    image_handle: SharedArrayHandle,
    alpha_handle: SharedArrayHandle,
    blend_handle: SharedArrayHandle,
    violation_handle: SharedArrayHandle,
    worker_index: int,
    num_workers: int,
    render_path: str,
) -> Dict[str, np.ndarray]:
    """Render this worker's round-robin tile subset into the shared buffers.

    Returns only compact arrays: one scalar row and one sort-length list
    per rendered tile (plus the tile ids).  Images, alpha and per-Gaussian
    weights were already written into shared memory in place.
    """
    from repro.core.pipeline import StreamingStats
    from repro.gaussians.tiles import TileGrid

    renderer, camera = package.unpack()
    render_tile = getattr(renderer, render_path)
    preparation = renderer.prepare_frame(camera)
    tile_grid = TileGrid(camera.width, camera.height, renderer.config.tile_size)

    image = image_handle.array(writable=True)
    alpha = alpha_handle.array(writable=True)
    # Private accumulator rows: every tile of this worker adds into the
    # same pair of arrays, mirroring the serial frame-level accumulation.
    blend_row = blend_handle.array(writable=True)[worker_index]
    violation_row = violation_handle.array(writable=True)[worker_index]

    tile_ids = list(range(worker_index, tile_grid.num_tiles, num_workers))
    rows = np.zeros((len(tile_ids), ROW_WIDTH), dtype=np.int64)
    lengths: List[int] = []
    counts = np.zeros(len(tile_ids), dtype=np.int64)
    for position, tile_id in enumerate(tile_ids):
        local = StreamingStats()
        local.gaussian_blend_weight = blend_row
        local.gaussian_violation_weight = violation_row
        render_tile(
            camera,
            tile_id,
            tile_grid.tile_pixel_bounds(tile_id),
            preparation,
            image,
            alpha,
            local,
        )
        rows[position] = stats_to_row(local)
        counts[position] = len(local.sort_list_lengths)
        lengths.extend(local.sort_list_lengths)
    return {
        "tile_ids": np.asarray(tile_ids, dtype=np.int64),
        "rows": rows,
        "sort_lengths": np.asarray(lengths, dtype=np.int64),
        "sort_counts": counts,
    }


# ----------------------------------------------------------------------
# Pool lifecycle (process-wide, grown on demand).
# ----------------------------------------------------------------------
_POOL: Optional[concurrent.futures.ProcessPoolExecutor] = None
_POOL_WORKERS = 0
_POOL_PID = 0

#: Pool-level failures that degrade the render to the thread path.
_PROCESS_FAILURES = (
    BrokenProcessPool,
    OSError,
    ValueError,
    NotImplementedError,
    RuntimeError,
    SharedMemoryUnavailable,
)


def _mp_context():
    """Fork when available (cheap, copy-on-write), platform default otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _tile_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """The shared tile pool, (re)created to hold at least ``workers``."""
    global _POOL, _POOL_WORKERS, _POOL_PID
    if _POOL is not None and _POOL_PID == os.getpid() and _POOL_WORKERS >= workers:
        return _POOL
    if _POOL is not None and _POOL_PID == os.getpid():
        _POOL.shutdown(wait=False)
    _POOL = concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, mp_context=_mp_context()
    )
    _POOL_WORKERS = workers
    _POOL_PID = os.getpid()
    return _POOL


def shutdown_tile_pool() -> None:
    """Shut the shared tile pool down (tests; also runs at exit)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_PID == os.getpid():
        _POOL.shutdown(wait=False)
    _POOL = None
    _POOL_WORKERS = 0


def _discard_tile_pool() -> None:
    """Drop a broken pool so the next render builds a fresh one."""
    shutdown_tile_pool()


atexit.register(shutdown_tile_pool)


# ----------------------------------------------------------------------
# Caller side.
# ----------------------------------------------------------------------
def render_tiles_process(
    renderer: "StreamingRenderer",
    camera,
    tile_grid,
    image: np.ndarray,
    alpha_img: np.ndarray,
    stats: "StreamingStats",
    render_path: str,
    workers: int,
) -> Dict[str, object]:
    """Render every tile of the frame across a process pool.

    Mutates ``image`` / ``alpha_img`` / ``stats`` exactly like the serial
    tile loop and returns the telemetry of the parallel execution.  Raises
    :class:`TileParallelUnavailable` when processes cannot be used; the
    caller degrades to threads.  ``KeyboardInterrupt`` propagates — the
    shared segments are unlinked on the way out either way.
    """
    if multiprocessing.current_process().daemon:
        raise TileParallelUnavailable("daemonic process cannot fork tile workers")
    if not shm_available():
        raise TileParallelUnavailable("no usable shared memory on this host")

    num_gaussians = len(renderer.source_model)
    started = time.perf_counter()
    registry = ShmRegistry(fallback_inline=False)
    try:
        try:
            image_handle = registry.allocate(image.shape, image.dtype)
            alpha_handle = registry.allocate(alpha_img.shape, alpha_img.dtype)
            blend_handle = registry.allocate((workers, num_gaussians), np.float64)
            violation_handle = registry.allocate((workers, num_gaussians), np.float64)
            # The renderer's frame cache was warmed by ``prepare_frame``
            # just before dispatch, so the package carries the prepared
            # frame (ordering tables, topological orders) — published
            # once, attached by every worker.
            package = ShmPackage.pack((renderer, camera), registry)
        except (
            SharedMemoryUnavailable,
            OSError,
            ValueError,
            TypeError,
            AttributeError,
            pickle.PickleError,
        ) as error:
            raise TileParallelUnavailable(f"shm publish failed: {error}") from error
        publish_s = time.perf_counter() - started

        try:
            pool = _tile_pool(workers)
            futures = [
                pool.submit(
                    _render_tile_block,
                    package,
                    image_handle,
                    alpha_handle,
                    blend_handle,
                    violation_handle,
                    worker_index,
                    workers,
                    render_path,
                )
                for worker_index in range(workers)
            ]
            payloads = [future.result() for future in futures]
        except (KeyboardInterrupt, SystemExit):
            raise
        except _PROCESS_FAILURES as error:
            _discard_tile_pool()
            raise TileParallelUnavailable(
                f"tile worker pool failed: {type(error).__name__}: {error}"
            ) from error

        # Merge in tile id order: rebuild each tile's compact stats row and
        # absorb exactly as the serial loop would have.
        per_tile: Dict[int, "StreamingStats"] = {}
        for payload in payloads:
            offsets = np.concatenate(([0], np.cumsum(payload["sort_counts"])))
            for position, tile_id in enumerate(payload["tile_ids"]):
                lengths = payload["sort_lengths"][
                    offsets[position] : offsets[position + 1]
                ]
                per_tile[int(tile_id)] = row_to_stats(payload["rows"][position], lengths)
        for tile_id in range(tile_grid.num_tiles):
            stats.absorb(per_tile[tile_id])

        # Weight rows summed in worker order: deterministic for a fixed
        # worker count, within 1e-9 of the serial in-place accumulation.
        stats.ensure_weight_arrays(num_gaussians)
        blend_rows = blend_handle.array()
        violation_rows = violation_handle.array()
        for worker_index in range(workers):
            stats.gaussian_blend_weight += blend_rows[worker_index]
            stats.gaussian_violation_weight += violation_rows[worker_index]

        image[...] = image_handle.array()
        alpha_img[...] = alpha_handle.array()
        shm_stats = registry.stats()
        return {
            "tile_mode": "process",
            "shm_segments": shm_stats["segments_created"],
            "shm_bytes": shm_stats["bytes_published"],
            "pickled_bytes": package.pickled_bytes,
            "publish_seconds": publish_s,
        }
    finally:
        registry.close()
