"""Frame-preparation cache keyed by camera pose.

Preparing a frame for the streaming renderer is pure geometry: the per-voxel
depth map, the per-tile voxel ordering tables (ray/voxel 3D-DDA traversal)
and the topologically sorted global voxel orders depend only on the voxel
grid, the camera pose and the traversal configuration — not on the Gaussian
parameters being blended.  Repeated renders of the same view (benchmark
sweeps, fine-tuning probes, batched service requests) can therefore reuse
one :class:`FramePreparation`.

The cache is a small LRU keyed by ``(camera pose, traversal parameters)``;
the owning renderer holds one cache per voxel grid, so grid changes can
never alias.  Statistics recorded from cached preparations are identical to
freshly computed ones — the cache memoizes work, not accounting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Tuple

if TYPE_CHECKING:  # circular at runtime: repro.core sits on top of the engine
    from repro.core.ray_voxel import VoxelOrderingTable
    from repro.core.voxel_order import VoxelOrderResult

#: Default number of prepared frames kept per renderer.
DEFAULT_FRAME_CACHE_SIZE = 8


@dataclass
class FramePreparation:
    """Camera-dependent, model-independent state of one prepared frame."""

    # Per-voxel camera depth, indexed by renamed voxel id (ndarray form
    # from ``voxel_depth_values``; legacy dict form also accepted).
    depth_map: object
    tile_tables: Dict[int, "VoxelOrderingTable"]
    tile_orders: Dict[int, "VoxelOrderResult"]

    @property
    def num_tiles(self) -> int:
        return len(self.tile_tables)


@dataclass
class FrameCache:
    """LRU cache of :class:`FramePreparation` objects.

    Attributes
    ----------
    capacity:
        Maximum number of prepared frames retained; 0 disables caching.
    hits / misses:
        Lookup counters (exposed so tests and the service can assert reuse).
    """

    capacity: int = DEFAULT_FRAME_CACHE_SIZE
    hits: int = 0
    misses: int = 0
    _entries: "OrderedDict[Hashable, FramePreparation]" = field(
        default_factory=OrderedDict, repr=False
    )
    # Renderers (and their frame caches) are shared across the service
    # daemon's worker-actor threads; LRU reads mutate recency order, so
    # even ``get`` needs the lock (move_to_end racing a concurrent evict
    # raises KeyError on an unlocked OrderedDict).
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")

    # Renderers travel inside pickled scene contexts (worker broadcast);
    # locks are not picklable, so rebuild one on the receiving side.
    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[FramePreparation]:
        """The cached preparation for ``key``, refreshing its LRU position."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, preparation: FramePreparation) -> None:
        """Insert ``preparation``, evicting the least recently used entry."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = preparation
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True when it was present."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every cached preparation (counters are kept)."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def frame_key(camera, *, tile_size: int, ray_stride: int, max_voxels_per_ray: int) -> Tuple:
    """Cache key of a prepared frame: camera pose plus traversal parameters."""
    return (
        camera.pose_key(),
        int(tile_size),
        int(ray_stride),
        int(max_voxels_per_ray),
    )
